#!/usr/bin/env python3
"""Quickstart: a FUSEE key-value store in five minutes.

Builds a fully memory-disaggregated deployment (2 memory nodes, 2-way
replication), then runs the four KV operations through the synchronous
façade.  Every byte lives in the simulated memory pool: the index is
replicated RACE hashing, writes go through the SNAPSHOT protocol, and
allocation uses the two-level scheme — exactly the paper's data path.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, FuseeKV


def main() -> None:
    kv = FuseeKV(ClusterConfig(n_memory_nodes=2, replication_factor=2))

    print("== basic operations ==")
    assert kv.insert(b"user:1001", b'{"name": "ada", "plan": "pro"}')
    print("insert user:1001     ->", kv.search(b"user:1001").decode())

    assert kv.update(b"user:1001", b'{"name": "ada", "plan": "enterprise"}')
    print("after update         ->", kv.search(b"user:1001").decode())

    print("insert duplicate     ->", kv.insert(b"user:1001", b"nope"))
    print("search missing key   ->", kv.search(b"user:9999"))

    assert kv.delete(b"user:1001")
    print("after delete         ->", kv.search(b"user:1001"))

    print("\n== a few hundred keys ==")
    for i in range(300):
        assert kv.insert(f"item:{i}".encode(), f"value-{i}".encode())
    assert kv.search(b"item:123") == b"value-123"
    print("300 keys stored; item:123 =", kv.search(b"item:123").decode())

    print("\n== where did the time go? (simulated microseconds) ==")
    print(f"simulated clock: {kv.now_us:.1f} us")
    stats = kv.cluster.fabric.stats
    print(f"one-sided verbs: {stats.reads} reads, {stats.writes} writes, "
          f"{stats.atomics} atomics in {stats.batches} doorbell batches")
    print(f"memory-node RPCs (coarse-grained ALLOCs only): {stats.rpcs}")

    print("\n== background reclamation (two-level memory management) ==")
    for i in range(50):
        kv.update(b"item:0", f"new-{i}".encode())
    reclaimed = kv.maintenance()
    print(f"updates produced garbage; background cycle reclaimed "
          f"{reclaimed} objects")
    assert kv.search(b"item:0") == b"new-49"
    print("item:0 still reads correctly:", kv.search(b"item:0").decode())


if __name__ == "__main__":
    main()
