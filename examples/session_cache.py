#!/usr/bin/env python3
"""A web session store on disaggregated memory — the paper's motivating
deployment (in-memory KV stores embracing DM for resource efficiency, §1).

A pool of front-end workers shares one FUSEE cluster:

* most sessions are read-mostly (page views touch the session), a few are
  write-hot (active shopping carts) — the adaptive index cache (§4.6)
  learns the difference per key;
* workers come and go (elasticity): we add a batch of workers mid-run and
  watch throughput scale.

Run:  python examples/session_cache.py
"""

import random

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig


def main() -> None:
    cluster = FuseeCluster(ClusterConfig(
        n_memory_nodes=2,
        replication_factor=2,
        regions_per_mn=8,
        region=RegionConfig(region_size=1 << 21, block_size=1 << 15),
        race=RaceConfig(n_subtables=8, n_groups=64),
    ))
    env = cluster.env
    rng = random.Random(7)

    n_sessions = 400
    hot_carts = [f"session-{i:04d}".encode() for i in range(8)]
    sessions = [f"session-{i:04d}".encode() for i in range(n_sessions)]

    seeder = cluster.new_client()
    for key in sessions:
        assert cluster.run_op(seeder.insert(key, b'{"cart": []}')).ok
    print(f"seeded {n_sessions} sessions ({len(hot_carts)} write-hot carts)")

    completed = {"reads": 0, "writes": 0}

    def worker(client, until):
        while env.now < until:
            if rng.random() < 0.10:  # an active cart gets an item
                key = rng.choice(hot_carts)
                payload = b'{"cart": ["item-%d"]}' % rng.randrange(1000)
                result = yield from client.update(key, payload)
                completed["writes"] += int(result.ok)
            else:  # a page view reads a random session
                key = rng.choice(sessions)
                result = yield from client.search(key)
                completed["reads"] += int(result.ok)

    # phase 1: 8 workers
    horizon = env.now + 3_000.0
    workers = []
    for _ in range(8):
        client = cluster.new_client()
        client.start_background(500.0)
        workers.append(client)
        env.process(worker(client, horizon + 3_000.0))
    env.run(until=horizon)
    phase1 = dict(completed)
    print(f"phase 1 (8 workers):  {phase1['reads']} reads, "
          f"{phase1['writes']} cart writes in 3 simulated ms")

    # phase 2: traffic spike -> add 8 more workers (elasticity, Fig. 21)
    for _ in range(8):
        client = cluster.new_client()
        client.start_background(500.0)
        workers.append(client)
        env.process(worker(client, horizon + 3_000.0))
    env.run(until=horizon + 3_000.0)
    reads2 = completed["reads"] - phase1["reads"]
    writes2 = completed["writes"] - phase1["writes"]
    print(f"phase 2 (16 workers): {reads2} reads, {writes2} cart writes "
          "in the next 3 ms")
    print(f"scale-out speedup: {reads2 / max(1, phase1['reads']):.2f}x reads")

    # what did the adaptive cache learn?
    probe = workers[0]
    hot_ratios = [probe.cache.peek(k).invalid_ratio
                  for k in hot_carts if probe.cache.peek(k)]
    cold = [k for k in sessions if k not in hot_carts][:50]
    cold_ratios = [probe.cache.peek(k).invalid_ratio
                   for k in cold if probe.cache.peek(k)]
    if hot_ratios and cold_ratios:
        print(f"\nadaptive cache on worker {probe.cid}: "
              f"hot-cart invalid ratio ~{max(hot_ratios):.2f}, "
              f"cold-session ~{max(cold_ratios):.2f} "
              f"(bypass threshold {probe.cache.threshold})")
    stats = probe.cache.stats
    print(f"cache stats: {stats.hits} hits, {stats.misses} misses, "
          f"{stats.bypasses} adaptive bypasses, "
          f"{stats.invalidations} invalidations")


if __name__ == "__main__":
    main()
