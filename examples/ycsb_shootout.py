#!/usr/bin/env python3
"""YCSB shoot-out: FUSEE vs Clover vs pDPM-Direct (the §6.3 comparison).

Loads a Zipfian dataset into all three systems and drives closed-loop
clients against YCSB-A (write-intensive) and YCSB-C (read-only),
reporting throughput and where each system's bottleneck shows up:
Clover's metadata-server CPU, pDPM-Direct's remote locks, and FUSEE's
memory-node RNICs.

Run:  python examples/ycsb_shootout.py            (about a minute)
      python examples/ycsb_shootout.py --quick    (a few seconds)
"""

import sys

from repro.harness import Scale, clover_bed, fusee_bed, pdpm_bed
from repro.harness.experiments import _dataset, _run_ycsb


def main() -> None:
    quick = "--quick" in sys.argv
    scale = (Scale(n_keys=500, n_clients=16, duration_us=800.0,
                   warmup_us=200.0) if quick
             else Scale(n_keys=2000, n_clients=48, duration_us=1500.0,
                        warmup_us=300.0))
    dataset = _dataset(scale)
    dataset_bytes = scale.n_keys * scale.kv_size

    print(f"{scale.n_keys} keys x {scale.kv_size}B, {scale.n_clients} "
          f"closed-loop clients, Zipfian theta=0.99\n")
    header = f"{'workload':<10}{'system':<14}{'Mops':>8}  bottleneck"
    print(header)
    print("-" * len(header))

    for workload in ("A", "C"):
        beds = {
            "fusee": fusee_bed(dataset_bytes=dataset_bytes),
            "clover": clover_bed(dataset_bytes=dataset_bytes),
            "pdpm-direct": pdpm_bed(dataset_bytes=dataset_bytes,
                                    n_keys_hint=scale.n_keys * 4),
        }
        for name, bed in beds.items():
            bed.load(dataset)
            result = _run_ycsb(bed, scale, workload)
            note = _bottleneck(name, bed, workload)
            print(f"YCSB-{workload:<5}{name:<14}{result.mops:>8.2f}  {note}")
        print()

    print("Expected shape (paper Fig. 13): FUSEE leads on YCSB-A because")
    print("client-side metadata management removes the metadata-server CPU")
    print("(Clover) and the lock serialization (pDPM-Direct); on read-only")
    print("YCSB-C all systems converge toward the memory-node RNIC bound.")


def _bottleneck(name: str, bed, workload: str) -> str:
    if name == "clover":
        server = bed.cluster.metadata
        busy = server.stats.busy_us / max(1.0, bed.env.now) / server.cpu.capacity
        return f"metadata CPU {busy * 100:.0f}% busy"
    if name == "pdpm-direct":
        spins = sum(c.lock_spins for c in bed.cluster.clients)
        return f"{spins} lock spin retries"
    node = bed.cluster.fabric.node(0)
    rx = node.nic.utilisation(bed.env.now)
    tx = node.nic_tx.utilisation(bed.env.now)
    return f"MN0 RNIC rx {rx * 100:.0f}% / tx {tx * 100:.0f}%"


if __name__ == "__main__":
    main()
