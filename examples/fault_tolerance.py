#!/usr/bin/env python3
"""Fault-tolerance walkthrough: the §5 failure-handling machinery, live.

Three acts:

1. **Memory-node crash** — kill one MN while readers run; the master's
   lease-based detector repairs the replicated index (Algorithm 3) and
   every key stays readable from the surviving replicas.
2. **Client crash at c2** — a client dies after committing its embedded
   operation log but before CASing the primary slot; recovery finds the
   tail of its per-size-class log list and finishes the request.
3. **Memory re-management** — the crashed client's blocks, free lists and
   list heads are reconstructed (Table 1 breakdown printed), and a revived
   client resumes on the recovered state.

Run:  python examples/fault_tolerance.py
"""

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.client import ClientCrashed, CrashPoint
from repro.core.race import RaceConfig


def main() -> None:
    cluster = FuseeCluster(ClusterConfig(
        n_memory_nodes=3,
        replication_factor=2,
        regions_per_mn=4,
        region=RegionConfig(region_size=1 << 20, block_size=1 << 14),
        race=RaceConfig(n_subtables=8, n_groups=32),
    ))

    # ---- act 1: memory-node crash --------------------------------------
    print("== act 1: a memory node dies ==")
    writer = cluster.new_client()
    for i in range(200):
        assert cluster.run_op(writer.insert(f"key-{i}".encode(),
                                            f"value-{i}".encode())).ok
    print("loaded 200 keys across 3 memory nodes (r=2)")

    cluster.crash_memory_node(1)
    print("MN 1 crashed; waiting out the membership lease...")
    lease = cluster.config.master.lease_us
    cluster.run(until=cluster.env.now + lease * 3)
    print(f"master handled failures for MNs: "
          f"{cluster.master.handled_mn_failures} "
          f"(epoch {cluster.master.epoch})")

    reader = cluster.new_client()
    alive = sum(1 for i in range(200)
                if cluster.run_op(reader.search(f"key-{i}".encode())).ok)
    print(f"keys still readable after the crash: {alive}/200")
    assert alive == 200

    assert cluster.run_op(writer.update(b"key-7", b"post-crash")).ok
    print("writes continue too: key-7 ->",
          cluster.run_op(reader.search(b"key-7")).value.decode())

    # ---- act 2: client crash mid-operation ------------------------------
    print("\n== act 2: a client crashes mid-UPDATE (point c2) ==")
    doomed = cluster.new_client()
    assert cluster.run_op(doomed.insert(b"critical", b"before")).ok
    doomed.arm_crash(CrashPoint.C2)
    try:
        cluster.run_op(doomed.update(b"critical", b"after"))
    except ClientCrashed as exc:
        print(f"client {doomed.cid} crashed at point {exc} — its log is "
              "committed but the primary slot is stale")

    def recover():
        return (yield from cluster.master.recover_client(doomed.cid))

    report, state = cluster.run_op(recover())
    print("master recovery classified crash cases:", report.crash_cases)
    value = cluster.run_op(reader.search(b"critical")).value
    print("the interrupted update was finished by recovery:",
          value.decode())
    assert value == b"after"

    # ---- act 3: memory re-management + revival ---------------------------
    print("\n== act 3: recovery breakdown (Table 1) ==")
    for step, ms, pct in report.rows():
        print(f"  {step:<26}{ms:>10.3f} ms {pct:>7.1f}%")

    revived = cluster.revive_client(doomed, state)
    for i in range(20):
        assert cluster.run_op(revived.insert(f"reborn-{i}".encode(),
                                             b"ok")).ok
    print(f"\nrevived client {revived.cid} inserted 20 more keys on the "
          f"recovered free lists ({report.blocks_recovered} blocks "
          "re-managed)")


if __name__ == "__main__":
    main()
