#!/usr/bin/env python3
"""Index growth: extendible directory splits under insert pressure.

FUSEE's paper provisions its RACE index at build time; this repository
additionally implements RACE's extendible resizing as a master-coordinated
split (see DESIGN.md §6).  This example builds a deliberately tiny index
(2 subtables) and inserts far past its capacity, printing the directory as
it doubles.

Run:  python examples/index_growth.py
"""

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig


def show_directory(race) -> None:
    entries = race.directory
    depth = race.global_depth
    print(f"  global depth {depth}, directory size {len(entries)}: "
          f"{entries}")
    for table in race.physical_tables():
        owned = sum(1 for e in entries if e == table)
        print(f"    subtable {table}: local depth "
              f"{race.local_depth(table)}, {owned} directory entries")


def main() -> None:
    cluster = FuseeCluster(ClusterConfig(
        n_memory_nodes=2,
        replication_factor=2,
        regions_per_mn=6,
        region=RegionConfig(region_size=1 << 20, block_size=1 << 14),
        race=RaceConfig(n_subtables=2, n_groups=4, slots_per_bucket=4),
    ))
    client = cluster.new_client()
    capacity = 2 * cluster.race.config.slots_per_subtable
    print(f"initial index: 2 subtables, ~{capacity} total slots")
    show_directory(cluster.race)

    total = capacity * 3
    checkpoints = {capacity, capacity * 2, total}
    print(f"\ninserting {total} keys (3x the initial capacity)...")
    for i in range(total):
        result = cluster.run_op(client.insert(f"key-{i:06d}".encode(),
                                              f"value-{i}".encode()))
        assert result.ok, f"insert {i} failed"
        if (i + 1) in checkpoints:
            print(f"\nafter {i + 1} inserts "
                  f"({cluster.master.splits_performed} splits so far):")
            show_directory(cluster.race)

    cluster.race.check_directory_invariants()
    print("\ndirectory invariants hold; verifying every key...")
    ok = sum(1 for i in range(total)
             if cluster.run_op(client.search(f"key-{i:06d}".encode())).ok)
    print(f"readable keys: {ok}/{total}")
    assert ok == total


if __name__ == "__main__":
    main()
