"""Overhead guard for the observability layer.

The tracing hooks sit on the fabric's hottest paths (every doorbell
batch, every client op), so the *disabled* configuration must stay
essentially free: a single ``enabled`` attribute check per batch.  This
test times a fixed update workload three ways — no tracer (the
``NULL_TRACER`` default), a disabled ``Tracer`` attached, and a fully
enabled one — and fails if the disabled path costs more than 5% over
baseline.

Timing uses min-of-N over repeated interleaved rounds, which suppresses
scheduler noise far better than a single mean; the enabled path is only
sanity-checked (it does real work and may legitimately cost more).
"""

import gc
import time

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig
from repro.obs import Profiler, Tracer

OPS_PER_ROUND = 300
ROUNDS = 7
# 5% is the contract; add a small absolute slack so sub-millisecond
# timing jitter on loaded CI machines cannot flake the guard.
RELATIVE_BUDGET = 1.05
ABSOLUTE_SLACK_S = 0.010


def _make_workload(tracer, profile=False, monitor=False):
    cluster = FuseeCluster(ClusterConfig(
        n_memory_nodes=2, replication_factor=2, regions_per_mn=4,
        region=RegionConfig(region_size=1 << 20, block_size=1 << 14),
        race=RaceConfig(n_subtables=4, n_groups=64)),
        tracer=tracer)
    profiler = (Profiler(tracer=tracer).install(cluster.env)
                if profile else None)
    if monitor:
        from repro.obs import Monitor
        cluster.attach_monitor(Monitor(cluster.env, cluster.fabric))
    fast = profiler is None   # profiled rounds run hook-aware by design
    client = cluster.new_client()
    cluster.run_op(client.insert(b"bench-key", b"v" * 64), fast=fast)

    def round_fn():
        for i in range(OPS_PER_ROUND):
            cluster.run_op(client.update(b"bench-key", b"w" * 64), fast=fast)
            cluster.run_op(client.search(b"bench-key"), fast=fast)
        cluster.run_op(client.maintenance(), fast=fast)
        if tracer is not None:
            tracer.clear()  # keep memory flat across rounds
        if profiler is not None:
            profiler.clear()

    return round_fn


def _min_round_time(round_fns):
    """Interleave one timed round of each workload, ROUNDS times; return
    the per-workload minimum (least-noise estimate)."""
    best = [float("inf")] * len(round_fns)
    for fn in round_fns:   # untimed warmup (JIT-free, but warms caches)
        fn()
    for _ in range(ROUNDS):
        for index, fn in enumerate(round_fns):
            gc.disable()
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
            gc.enable()
            best[index] = min(best[index], elapsed)
    return best


def test_disabled_tracer_overhead_under_five_percent():
    baseline_fn = _make_workload(tracer=None)
    disabled_fn = _make_workload(tracer=Tracer(enabled=False))
    enabled_fn = _make_workload(tracer=Tracer())
    baseline, disabled, enabled = _min_round_time(
        [baseline_fn, disabled_fn, enabled_fn])
    assert disabled <= baseline * RELATIVE_BUDGET + ABSOLUTE_SLACK_S, (
        f"disabled tracer costs {disabled / baseline - 1:+.1%} "
        f"(budget {RELATIVE_BUDGET - 1:.0%}): {disabled:.4f}s "
        f"vs {baseline:.4f}s per round")
    # Enabled tracing does real work; just require it stays same-order.
    assert enabled <= baseline * 2.0 + ABSOLUTE_SLACK_S, (
        f"enabled tracer is pathologically slow: {enabled:.4f}s "
        f"vs {baseline:.4f}s per round")


def test_detached_monitor_keeps_disabled_path_free():
    """The monitor's hook sites (fabric post/deliver/rpc, tracer
    end_span, client key touch) are all single ``is None`` checks when no
    monitor is attached — so the no-monitor configuration must stay
    inside the same 5% budget as the disabled tracer.  The baseline
    workload here *is* the detached-monitor configuration (``Fabric``
    initialises ``monitor = None``), making this the enforcement teeth
    for "monitoring disabled == free"."""
    baseline_fn = _make_workload(tracer=None)
    disabled_fn = _make_workload(tracer=Tracer(enabled=False))
    baseline, disabled = _min_round_time([baseline_fn, disabled_fn])
    assert disabled <= baseline * RELATIVE_BUDGET + ABSOLUTE_SLACK_S, (
        f"detached monitor + disabled tracer costs "
        f"{disabled / baseline - 1:+.1%} (budget "
        f"{RELATIVE_BUDGET - 1:.0%}): {disabled:.4f}s vs {baseline:.4f}s")


def test_enabled_monitor_overhead_is_bounded():
    """An attached monitor does real per-span/per-verb sketch work; it
    must stay the same order of magnitude as untraced execution."""
    baseline_fn = _make_workload(tracer=None)
    monitored_fn = _make_workload(tracer=Tracer(), monitor=True)
    baseline, monitored = _min_round_time([baseline_fn, monitored_fn])
    assert monitored <= baseline * 3.0 + ABSOLUTE_SLACK_S, (
        f"enabled monitor is pathologically slow: {monitored:.4f}s "
        f"vs {baseline:.4f}s per round")


def test_profiler_overhead_is_bounded():
    """The profiler's hooks ride the same hot paths as the tracer.

    Its *disabled* configuration is ``env.profiler is None`` — exactly
    what the baseline above times, since the resource/fabric checks run
    unconditionally — so the 5% guard already covers it.  This guard
    bounds the *enabled* cost: installing a profiler on top of an enabled
    tracer records an interval per resource grant and NIC slot, which must
    stay the same order of magnitude as untraced execution.
    """
    baseline_fn = _make_workload(tracer=None)
    profiled_fn = _make_workload(tracer=Tracer(), profile=True)
    baseline, profiled = _min_round_time([baseline_fn, profiled_fn])
    assert profiled <= baseline * 2.5 + ABSOLUTE_SLACK_S, (
        f"enabled profiler is pathologically slow: {profiled:.4f}s "
        f"vs {baseline:.4f}s per round")
