"""The paper's resource-consumption claim: FUSEE needs no metadata server."""

from repro.harness import resource_efficiency

from .conftest import run_once


def test_resource_efficiency(benchmark, scale, record):
    result = run_once(benchmark, resource_efficiency, scale)
    record(result)
    rows = {r[0]: r for r in result.rows}
    # Clover dedicates a monolithic server (8 cores) and burns real CPU
    assert rows["clover"][2] == 8
    assert rows["clover"][3] > 0
    # FUSEE and pDPM dedicate zero metadata-server cores
    assert rows["fusee"][2] == 0
    assert rows["pdpm-direct"][2] == 0
    # and FUSEE still out-performs Clover
    assert rows["fusee"][1] > rows["clover"][1]
