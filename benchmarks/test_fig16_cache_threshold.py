"""Fig. 16: YCSB-A throughput vs the adaptive-cache bypass threshold."""

from repro.harness import fig16_cache_threshold

from .conftest import run_once


def test_fig16_cache_threshold(benchmark, scale, record):
    result = run_once(benchmark, fig16_cache_threshold, scale)
    record(result)
    rows = dict(result.rows)
    # high thresholds waste bandwidth on invalidated pairs
    assert rows[0.0] > rows[8.0]
    assert rows[0.2] >= rows[2.0] * 0.98
