"""Fig. 20: YCSB-C throughput timeline across a memory-node crash."""

from repro.harness import fig20_mn_crash

from .conftest import run_once


def test_fig20_mn_crash(benchmark, scale, record):
    result = run_once(benchmark, fig20_mn_crash, scale)
    record(result)
    mops = [m for _b, _t, m in result.rows]
    before = sum(mops[2:5]) / 3
    after = sum(mops[6:9]) / 3
    # searches continue after the crash...
    assert after > 0.2 * before
    # ...but throughput drops to about half (one RNIC serves everything)
    assert after < 0.75 * before
