"""Shared fixtures for the per-figure benchmark suite.

Every ``test_fig*`` / ``test_table*`` file regenerates one artefact of the
paper's evaluation via :mod:`repro.harness.experiments`, asserts the
paper's qualitative shape, and records the full table under
``benchmarks/out/`` for EXPERIMENTS.md.

Scale is controlled with the ``REPRO_BENCH_SCALE`` environment variable:
``tiny`` (CI smoke), ``bench`` (default), or ``full`` (closest to the
paper; minutes per figure).
"""

import os
import pathlib

import pytest

from repro.harness import Scale

_OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_scale() -> Scale:
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    if name == "tiny":
        return Scale.tiny()
    if name == "full":
        return Scale.full()
    # default: small enough for a laptop run of the whole suite
    return Scale(n_keys=800, n_clients=24, clients_sweep=(4, 12, 24),
                 duration_us=1_000.0, warmup_us=200.0, latency_ops=150)


@pytest.fixture
def scale() -> Scale:
    return bench_scale()


@pytest.fixture
def record():
    """Persist an ExperimentResult table under benchmarks/out/."""

    def _record(result):
        _OUT_DIR.mkdir(exist_ok=True)
        path = _OUT_DIR / f"{result.name}.txt"
        path.write_text(result.format() + "\n")
        return result

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
