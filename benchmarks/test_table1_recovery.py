"""Table 1: client recovery time breakdown after 1,000 UPDATEs."""

from repro.harness import table1_recovery

from .conftest import run_once


def test_table1_recovery(benchmark, scale, record):
    result = run_once(benchmark, table1_recovery, scale, n_updates=1000)
    record(result)
    rows = {step: (ms, pct) for step, ms, pct in result.rows}
    # connection + MR re-registration dominates (paper: 92.1%)
    assert rows["Recover connection & MR"][1] > 85.0
    # log traversal is a small fraction (paper: 2.0%)
    assert rows["Traverse Log"][1] < 6.0
    assert rows["Traverse Log"][0] > 0.5  # but real work: ~2us x 1000 objs
    # total stays in the paper's ballpark (177 ms measured on CloudLab)
    assert 160.0 < rows["Total"][0] < 220.0
