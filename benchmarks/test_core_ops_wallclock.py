"""Wall-clock microbenchmarks of the simulator itself (not paper figures).

These time how fast the reproduction executes on the host machine —
useful for catching performance regressions in the DES kernel and the
client code paths.
"""

import itertools

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig


def _cluster():
    return FuseeCluster(ClusterConfig(
        n_memory_nodes=2, replication_factor=2, regions_per_mn=4,
        region=RegionConfig(region_size=1 << 20, block_size=1 << 14),
        race=RaceConfig(n_subtables=4, n_groups=64)))


def test_insert_wallclock(benchmark):
    cluster = _cluster()
    client = cluster.new_client()
    counter = itertools.count()

    def one_insert():
        i = next(counter)
        return cluster.run_op(client.insert(f"bench-{i}".encode(), b"v" * 64))

    result = benchmark(one_insert)


def test_search_wallclock(benchmark):
    cluster = _cluster()
    client = cluster.new_client()
    for i in range(64):
        cluster.run_op(client.insert(f"bench-{i}".encode(), b"v" * 64))
    counter = itertools.count()

    def one_search():
        i = next(counter) % 64
        return cluster.run_op(client.search(f"bench-{i}".encode()))

    benchmark(one_search)


def test_update_wallclock(benchmark):
    cluster = _cluster()
    client = cluster.new_client()
    cluster.run_op(client.insert(b"bench-key", b"v" * 64))
    counter = itertools.count()

    def one_update():
        i = next(counter)
        ok = cluster.run_op(client.update(b"bench-key", f"v{i}".encode()))
        if i % 64 == 63:
            cluster.run_op(client.maintenance())
        return ok

    benchmark(one_update)
