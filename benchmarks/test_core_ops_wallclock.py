"""Wall-clock microbenchmarks of the simulator itself (not paper figures).

These time how fast the reproduction executes on the host machine —
useful for catching performance regressions in the DES kernel and the
client code paths.

The ``TestKernelSpeedupGates`` class is the enforcement half of the
kernel fast-path work (ISSUE 7): it times the trimmed 128c/4MN bed and
the core-ops microbench against the *pre-refactor* numbers recorded in
``benchmarks/baselines/kernel_wallclock.json``, rescaled by a
calibration workload so the gate is portable across hosts.
"""

import itertools

import pytest

from benchmarks.kernel_beds import (
    BIG_BED,
    MICRO_OPS,
    big_bed_run,
    load_baseline,
    measure_calibration,
    micro_ops_run,
)
from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig


def _cluster():
    return FuseeCluster(ClusterConfig(
        n_memory_nodes=2, replication_factor=2, regions_per_mn=4,
        region=RegionConfig(region_size=1 << 20, block_size=1 << 14),
        race=RaceConfig(n_subtables=4, n_groups=64)))


def test_insert_wallclock(benchmark):
    cluster = _cluster()
    client = cluster.new_client()
    counter = itertools.count()

    def one_insert():
        i = next(counter)
        return cluster.run_op(client.insert(f"bench-{i}".encode(), b"v" * 64))

    result = benchmark(one_insert)


def test_search_wallclock(benchmark):
    cluster = _cluster()
    client = cluster.new_client()
    for i in range(64):
        cluster.run_op(client.insert(f"bench-{i}".encode(), b"v" * 64))
    counter = itertools.count()

    def one_search():
        i = next(counter) % 64
        return cluster.run_op(client.search(f"bench-{i}".encode()))

    benchmark(one_search)


def test_update_wallclock(benchmark):
    cluster = _cluster()
    client = cluster.new_client()
    cluster.run_op(client.insert(b"bench-key", b"v" * 64))
    counter = itertools.count()

    def one_update():
        i = next(counter)
        ok = cluster.run_op(client.update(b"bench-key", f"v{i}".encode()))
        if i % 64 == 63:
            cluster.run_op(client.maintenance())
        return ok

    benchmark(one_update)


# ------------------------------------------------- kernel speedup gates
class TestKernelSpeedupGates:
    """Gate the kernel fast path against the recorded pre-refactor tree.

    Methodology (all of it matters for a non-flaky gate):

    - The baseline JSON stores the *seed-commit* wall times, measured
      interleaved with the refactored tree in fresh subprocesses, plus
      the runtime of a fixed pure-Python calibration workload on the
      recording host.
    - At gate time the baseline seconds are rescaled by
      ``calibration_now / calibration_recorded`` so a slower (or faster)
      CI host moves both sides of the ratio together.
    - Each bed is timed min-of-N: the minimum is the least noisy
      location statistic for wall clock (noise is one-sided).
    - Thresholds carry a safety margin below the honestly measured
      speedups — interleaved measurement gives big-bed 1.85–2.0x and
      micro-ops 1.5–1.9x on this workload, with +-8-15% ambient host
      noise — so the gates assert >=1.6x (big bed) and >=1.25x (micro)
      rather than a flaky raw 2.0.
    """

    REPEATS = 3
    BIG_BED_MIN_SPEEDUP = 1.6
    MICRO_MIN_SPEEDUP = 1.25

    @pytest.fixture(scope="class")
    def rescale(self):
        baseline = load_baseline()
        cal_now = measure_calibration()
        return baseline, cal_now / baseline["calibration_seconds"]

    def test_baseline_geometry_matches_timed_beds(self, rescale):
        """If the bed constants drift from the recorded geometry, the
        speedup ratio silently compares different work — fail loudly."""
        baseline, _ = rescale
        for key, value in BIG_BED.items():
            assert baseline["big_bed"][key] == value, key
        for key, value in MICRO_OPS.items():
            assert baseline["micro_ops"][key] == value, key

    def test_big_bed_beats_recorded_baseline(self, rescale):
        baseline, scale = rescale
        budget = baseline["big_bed"]["seconds"] * scale
        seconds = min(big_bed_run(**BIG_BED)[0]
                      for _ in range(self.REPEATS))
        speedup = budget / seconds
        assert speedup >= self.BIG_BED_MIN_SPEEDUP, (
            f"128c/4MN bed ran in {seconds:.3f}s vs rescaled baseline "
            f"{budget:.3f}s -> {speedup:.2f}x, below the "
            f"{self.BIG_BED_MIN_SPEEDUP}x gate")

    def test_micro_ops_beat_recorded_baseline(self, rescale):
        baseline, scale = rescale
        budget = baseline["micro_ops"]["seconds"] * scale
        seconds = min(micro_ops_run(**MICRO_OPS)[0]
                      for _ in range(self.REPEATS))
        speedup = budget / seconds
        assert speedup >= self.MICRO_MIN_SPEEDUP, (
            f"core-ops microbench ran in {seconds:.3f}s vs rescaled "
            f"baseline {budget:.3f}s -> {speedup:.2f}x, below the "
            f"{self.MICRO_MIN_SPEEDUP}x gate")

    def test_big_bed_absolute_wall_budget(self, rescale):
        """Backstop: even if someone re-records the baseline, the
        trimmed big bed must finish within its calibrated wall budget
        (1.2x the recorded *pre-refactor* time — generous enough for
        any host, tight enough to catch a kernel that fell off the
        fast path entirely)."""
        baseline, scale = rescale
        seconds, ops = big_bed_run(**BIG_BED)
        assert ops > 1000, "bed too small to be a meaningful timing"
        assert seconds <= 1.2 * baseline["big_bed"]["seconds"] * scale
