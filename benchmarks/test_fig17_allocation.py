"""Fig. 17: two-level vs MN-centric memory allocation."""

from repro.harness import fig17_allocation

from .conftest import run_once


def test_fig17_allocation(benchmark, scale, record):
    result = run_once(benchmark, fig17_allocation, scale)
    record(result)
    rows = {w: (two, central) for w, two, central in result.rows}
    # write-heavy: the weak MN cores collapse under per-object allocation
    assert rows["A"][1] < rows["A"][0] * 0.35
    # read-only: no allocation involved, identical throughput
    assert abs(rows["C"][1] - rows["C"][0]) / rows["C"][0] < 0.05
