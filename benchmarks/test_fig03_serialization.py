"""Fig. 3: consensus and lock-based replication do not scale with clients."""

from repro.harness import fig03_serialization

from .conftest import run_once


def test_fig03_serialization(benchmark, scale, record):
    result = run_once(benchmark, fig03_serialization, scale)
    record(result)
    rows = {clients: (cons, lock, snap)
            for clients, cons, lock, snap in result.rows}
    lo, hi = min(rows), max(rows)
    # consensus and lock stay flat/low while SNAPSHOT scales
    assert rows[hi][0] < rows[lo][0] * 3.0
    assert rows[hi][1] < rows[lo][1] * 3.0
    assert rows[hi][2] > rows[lo][2] * 1.8
    # at full concurrency SNAPSHOT beats both serializers
    assert rows[hi][2] > rows[hi][0]
    assert rows[hi][2] > rows[hi][1]
