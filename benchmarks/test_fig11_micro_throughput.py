"""Fig. 11: microbenchmark throughput per operation type."""

from repro.harness import fig11_micro_throughput

from .conftest import run_once


def test_fig11_micro_throughput(benchmark, scale, record):
    result = run_once(benchmark, fig11_micro_throughput, scale)
    record(result)
    rows = {op: (fusee, clover, pdpm)
            for op, fusee, clover, pdpm in result.rows}
    # FUSEE leads the write-path ops; pDPM-Direct trails everywhere
    assert rows["update"][0] > rows["update"][2]
    assert rows["insert"][0] > rows["insert"][2]
    assert rows["search"][0] > rows["search"][2]
    # Clover has no DELETE
    assert rows["delete"][1] is None
    assert rows["delete"][0] > rows["delete"][2]
