"""Fig. 21: dynamically adding and removing clients."""

from repro.harness import fig21_elasticity

from .conftest import run_once


def test_fig21_elasticity(benchmark, scale, record):
    result = run_once(benchmark, fig21_elasticity, scale)
    record(result)
    mops = [m for _b, _t, m in result.rows]
    base = sum(mops[1:3]) / 2
    doubled = sum(mops[4:6]) / 2
    back = sum(mops[7:9]) / 2
    # throughput steps up with the extra clients and returns after removal
    assert doubled > base * 1.3
    assert back < doubled * 0.8
