"""Fig. 19: median latency vs replication factor for FUSEE/-NC/-CR."""

from repro.harness import fig19_replication_latency

from .conftest import run_once


def test_fig19_replication_latency(benchmark, scale, record):
    result = run_once(benchmark, fig19_replication_latency, scale,
                      factors=(1, 2, 3, 4))
    record(result)
    table = {(v, r): (ins, upd, srch, dele)
             for v, r, ins, upd, srch, dele in result.rows}
    # FUSEE-CR write latency grows with every extra replica...
    assert table[("fusee-cr", 4)][1] > table[("fusee-cr", 2)][1] * 1.15
    # ...while SNAPSHOT's RTT count is bounded: r=4 ~ r=2
    assert table[("fusee", 4)][1] < table[("fusee", 2)][1] * 1.10
    # and CR is strictly worse than FUSEE at high replication
    assert table[("fusee-cr", 4)][1] > table[("fusee", 4)][1]
    # no-cache pays extra read RTTs on SEARCH/UPDATE/DELETE
    assert table[("fusee-nc", 2)][2] > table[("fusee", 2)][2]
    assert table[("fusee-nc", 2)][3] > table[("fusee", 2)][3]
    # SWARM's conflict-free fast path saves the separate primary-commit
    # RTT at every replica count (UPDATE and INSERT alike)...
    assert table[("fusee-swarm", 2)][1] < table[("fusee", 2)][1]
    assert table[("fusee-swarm", 4)][1] < table[("fusee", 4)][1]
    assert table[("fusee-swarm", 2)][0] < table[("fusee", 2)][0]
    # ...stays flat in the replica count like SNAPSHOT...
    assert table[("fusee-swarm", 4)][1] < table[("fusee-swarm", 2)][1] * 1.10
    # ...and leaves the read path untouched: timestamp validation rides
    # the same single doorbell batch as the cached read
    assert table[("fusee-swarm", 2)][2] == table[("fusee", 2)][2]
