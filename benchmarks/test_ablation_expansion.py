"""Extension artefact: the index keeps accepting inserts past its initial
capacity by splitting subtables (RACE extendible resize)."""

from repro.harness import ablation_expansion

from .conftest import run_once


def test_ablation_expansion(benchmark, scale, record):
    result = run_once(benchmark, ablation_expansion, scale)
    record(result)
    first, last = result.rows[0], result.rows[-1]
    # three initial-capacities' worth of keys were all inserted
    assert last[1] >= first[1] * 3
    # the directory actually grew
    assert last[3] > 2
    assert last[4] >= 1
    # insert throughput stays positive in every phase (no livelock)
    assert all(row[2] > 0 for row in result.rows)
