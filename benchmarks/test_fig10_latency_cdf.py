"""Fig. 10: per-operation latency distributions, single client."""

from repro.harness import fig10_latency_cdf

from .conftest import run_once


def test_fig10_latency_cdf(benchmark, scale, record):
    result = run_once(benchmark, fig10_latency_cdf, scale)
    record(result)
    p50 = {(r[0], r[1]): r[2] for r in result.rows}
    # FUSEE has the lowest write-path latency (bounded SNAPSHOT RTTs)
    assert p50[("fusee", "update")] < p50[("pdpm-direct", "update")]
    assert p50[("fusee", "insert")] < p50[("pdpm-direct", "insert")]
    assert p50[("fusee", "update")] < p50[("clover", "update")]
    # Clover's SEARCH is (slightly) the fastest: it reads only the KV pair
    assert p50[("clover", "search")] <= p50[("fusee", "search")] * 1.10
    # DELETE divergence (documented in EXPERIMENTS.md): the paper's
    # pDPM-Direct edges out FUSEE on DELETE because it only clears the
    # index under its lock; our pDPM model also tombstones the record for
    # reader coherence, so here FUSEE wins DELETE as well.  Both stay in
    # the same order of magnitude.
    assert p50[("pdpm-direct", "delete")] < p50[("fusee", "delete")] * 5
