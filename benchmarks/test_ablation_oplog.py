"""DESIGN.md ablation: the embedded log saves one RTT per write (§4.5)."""

from repro.harness import ablation_oplog

from .conftest import run_once


def test_ablation_oplog(benchmark, scale, record):
    result = run_once(benchmark, ablation_oplog, scale)
    record(result)
    rows = {scheme: (p50, mops) for scheme, p50, mops in result.rows}
    # the separate log adds about one RTT of median update latency
    assert rows["separate"][0] > rows["embedded"][0] + 1.0
    # and costs write throughput
    assert rows["separate"][1] < rows["embedded"][1]
