"""Fig. 2: Clover's throughput needs many metadata-server CPU cores."""

from repro.harness import fig02_clover_metadata_cpu

from .conftest import run_once


def test_fig02_clover_metadata_cpu(benchmark, scale, record):
    result = run_once(benchmark, fig02_clover_metadata_cpu, scale)
    record(result)
    mops = {cores: m for cores, m in result.rows}
    # shape: throughput rises with cores...
    assert mops[4] > mops[1] * 1.5
    # ...and saturates near the high end (metadata-server RNIC bound)
    assert mops[8] < mops[6] * 1.35
