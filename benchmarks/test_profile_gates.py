"""Budget gates: the profiler must localise the paper's known bottlenecks.

These are the end-to-end checks that the attribution is *right*, not just
additive: run each system in a regime whose bottleneck the paper
establishes, and assert the profile points at it.

* Fig. 2 (motivation): Clover's metadata server is the CPU bottleneck —
  at the paper's operating point the slowest ops spend the majority of
  their time queueing for ``metadata.cpu``.
* Fig. 13 (YCSB scalability): FUSEE's throughput plateau is NIC-bound —
  under saturating client counts NIC serialisation (wait + service)
  overtakes wire propagation, which dominates when the fabric is idle.

Scales are pinned here (not taken from ``REPRO_BENCH_SCALE``): the gates
assert regime-dependent facts, and shrinking the client count moves the
regime.
"""

import json
import pathlib

from repro.harness import Scale
from repro.harness.profiling import profile_ycsb

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Enough clients to queue on the bottleneck, short enough for CI.
_CLOVER_SCALE = Scale(n_keys=800, n_clients=24, duration_us=1_000.0)
_FUSEE_LOADED = Scale(n_keys=800, n_clients=64, duration_us=1_000.0)
_FUSEE_IDLE = Scale(n_keys=800, n_clients=4, duration_us=1_000.0)


def test_fig02_clover_tail_is_metadata_cpu_wait():
    result = profile_ycsb(system="clover", workload="A",
                          scale=_CLOVER_SCALE, metadata_cores=2)
    profile = result.profile
    assert result.run.ops > 100
    # Majority of p99 latency is queueing for the metadata server's CPU
    # (calibrated ~0.84 at this operating point; 0.5 is the claim).
    assert profile.tail_share("cpu_wait", label="metadata.cpu") > 0.5
    # ... and it dominates overall too, with NIC/propagation minor.
    assert profile.share("cpu_wait", label="metadata.cpu") > 0.5
    assert profile.share("cpu_wait") > profile.share("propagation")
    # The critical path agrees: metadata CPU is the top attribution.
    top = max(result.critical.attribution.items(), key=lambda kv: kv[1])
    assert top[0] == ("cpu_wait", "metadata.cpu")


def test_fig13_fusee_plateau_is_nic_serialisation():
    result = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_LOADED, n_memory_nodes=2)
    profile = result.profile
    assert result.run.ops > 1000
    nic = profile.share("nic_wait") + profile.share("nic_service")
    # At saturation the NIC (queueing + serialisation) overtakes wire
    # propagation (calibrated ~0.51 vs ~0.43 at 64 clients / 2 MNs).
    assert nic > profile.share("propagation")
    assert profile.share("nic_wait") > 0.25
    # FUSEE has no RPC on the data path: MN CPU must stay negligible.
    assert profile.share("cpu_wait") + profile.share("cpu_service") < 0.1


def test_hotpath_knobs_lift_the_fig13_plateau():
    """Tentpole gate (before/after): replica read-spreading + adaptive
    doorbell coalescing must cut NIC serialisation queueing — nic_wait
    share drops — and lift saturated throughput >=10% over the
    paper-faithful seed on the same bed, with the evidence written to
    ``BENCH_profile.json``."""
    seed = profile_ycsb(system="fusee", workload="A",
                        scale=_FUSEE_LOADED, n_memory_nodes=2)
    tuned = profile_ycsb(system="fusee", workload="A",
                         scale=_FUSEE_LOADED, n_memory_nodes=2,
                         read_spread="least_loaded", max_coalesce_width=8)
    # the waits moved: less time queueing for a NIC serialisation slot
    assert tuned.profile.share("nic_wait") < seed.profile.share("nic_wait")
    # ... and it bought real throughput (calibrated ~+15% at this bed)
    assert tuned.run.mops >= 1.10 * seed.run.mops
    # the spread actually engaged: per-moment load balancing leaves the
    # hottest replica no further from its even share than the seed's
    # static primary placement does
    seed_skew = seed.metrics.series["kv_read_skew"].points[-1][1]
    tuned_skew = tuned.metrics.series["kv_read_skew"].points[-1][1]
    assert 1.0 <= tuned_skew <= seed_skew < 1.5

    payload = {
        "bed": {"workload": "A", "n_clients": _FUSEE_LOADED.n_clients,
                "n_memory_nodes": 2},
        "knobs": {"read_spread": "least_loaded", "max_coalesce_width": 8},
        "gate": {
            "mops_seed": round(seed.run.mops, 6),
            "mops_optimized": round(tuned.run.mops, 6),
            "speedup": round(tuned.run.mops / seed.run.mops, 4),
            "nic_wait_seed": round(seed.profile.share("nic_wait"), 4),
            "nic_wait_optimized": round(tuned.profile.share("nic_wait"),
                                        4),
        },
        "seed": seed.to_dict(),
        "optimized": tuned.to_dict(),
    }
    (_REPO_ROOT / "BENCH_profile.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_fusee_unloaded_is_propagation_dominated():
    result = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_IDLE, n_memory_nodes=2)
    profile = result.profile
    # The RTT budget regime: with no queueing, ops are wire-bound.
    assert profile.share("propagation") > 0.6
    assert profile.share("nic_wait") < 0.1
    assert profile.share("backoff") == 0.0
