"""Budget gates: the profiler must localise the paper's known bottlenecks.

These are the end-to-end checks that the attribution is *right*, not just
additive: run each system in a regime whose bottleneck the paper
establishes, and assert the profile points at it.

* Fig. 2 (motivation): Clover's metadata server is the CPU bottleneck —
  at the paper's operating point the slowest ops spend the majority of
  their time queueing for ``metadata.cpu``.
* Fig. 13 (YCSB scalability): FUSEE's throughput plateau is NIC-bound —
  under saturating client counts NIC serialisation (wait + service)
  overtakes wire propagation, which dominates when the fabric is idle.

Scales are pinned here (not taken from ``REPRO_BENCH_SCALE``): the gates
assert regime-dependent facts, and shrinking the client count moves the
regime.
"""

from repro.harness import Scale
from repro.harness.profiling import profile_ycsb

# Enough clients to queue on the bottleneck, short enough for CI.
_CLOVER_SCALE = Scale(n_keys=800, n_clients=24, duration_us=1_000.0)
_FUSEE_LOADED = Scale(n_keys=800, n_clients=64, duration_us=1_000.0)
_FUSEE_IDLE = Scale(n_keys=800, n_clients=4, duration_us=1_000.0)


def test_fig02_clover_tail_is_metadata_cpu_wait():
    result = profile_ycsb(system="clover", workload="A",
                          scale=_CLOVER_SCALE, metadata_cores=2)
    profile = result.profile
    assert result.run.ops > 100
    # Majority of p99 latency is queueing for the metadata server's CPU
    # (calibrated ~0.84 at this operating point; 0.5 is the claim).
    assert profile.tail_share("cpu_wait", label="metadata.cpu") > 0.5
    # ... and it dominates overall too, with NIC/propagation minor.
    assert profile.share("cpu_wait", label="metadata.cpu") > 0.5
    assert profile.share("cpu_wait") > profile.share("propagation")
    # The critical path agrees: metadata CPU is the top attribution.
    top = max(result.critical.attribution.items(), key=lambda kv: kv[1])
    assert top[0] == ("cpu_wait", "metadata.cpu")


def test_fig13_fusee_plateau_is_nic_serialisation():
    result = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_LOADED, n_memory_nodes=2)
    profile = result.profile
    assert result.run.ops > 1000
    nic = profile.share("nic_wait") + profile.share("nic_service")
    # At saturation the NIC (queueing + serialisation) overtakes wire
    # propagation (calibrated ~0.51 vs ~0.43 at 64 clients / 2 MNs).
    assert nic > profile.share("propagation")
    assert profile.share("nic_wait") > 0.25
    # FUSEE has no RPC on the data path: MN CPU must stay negligible.
    assert profile.share("cpu_wait") + profile.share("cpu_service") < 0.1


def test_fusee_unloaded_is_propagation_dominated():
    result = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_IDLE, n_memory_nodes=2)
    profile = result.profile
    # The RTT budget regime: with no queueing, ops are wire-bound.
    assert profile.share("propagation") > 0.6
    assert profile.share("nic_wait") < 0.1
    assert profile.share("backoff") == 0.0
