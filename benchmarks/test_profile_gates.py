"""Budget gates: the profiler must localise the paper's known bottlenecks.

These are the end-to-end checks that the attribution is *right*, not just
additive: run each system in a regime whose bottleneck the paper
establishes, and assert the profile points at it.

* Fig. 2 (motivation): Clover's metadata server is the CPU bottleneck —
  at the paper's operating point the slowest ops spend the majority of
  their time queueing for ``metadata.cpu``.
* Fig. 13 (YCSB scalability): FUSEE's throughput plateau is NIC-bound —
  under saturating client counts NIC serialisation (wait + service)
  overtakes wire propagation, which dominates when the fabric is idle.

Scales are pinned here (not taken from ``REPRO_BENCH_SCALE``): the gates
assert regime-dependent facts, and shrinking the client count moves the
regime.
"""

import json
import pathlib

from repro.harness import Scale
from repro.harness.profiling import profile_ycsb

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Enough clients to queue on the bottleneck, short enough for CI.
_CLOVER_SCALE = Scale(n_keys=800, n_clients=24, duration_us=1_000.0)
_FUSEE_LOADED = Scale(n_keys=800, n_clients=64, duration_us=1_000.0)
_FUSEE_IDLE = Scale(n_keys=800, n_clients=4, duration_us=1_000.0)
# The scale-test bed: hundreds of clients against many MNs, where the
# single tx NIC per MN used to wall off throughput entirely.
_FUSEE_SCALED = Scale(n_keys=800, n_clients=256, duration_us=600.0)


def _write_bench_section(section: str, payload: dict) -> None:
    """Merge one gate's evidence bundle into ``BENCH_profile.json``.

    The file holds one key per gate so the hotpath and multiqueue gates
    (and future ones) can each rewrite their own section without
    clobbering the others."""
    path = _REPO_ROOT / "BENCH_profile.json"
    try:
        doc = json.loads(path.read_text())
        if not isinstance(doc, dict) or "bed" in doc:
            doc = {}  # pre-section format: start fresh
    except (OSError, ValueError):
        doc = {}
    doc[section] = payload
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_fig02_clover_tail_is_metadata_cpu_wait():
    result = profile_ycsb(system="clover", workload="A",
                          scale=_CLOVER_SCALE, metadata_cores=2)
    profile = result.profile
    assert result.run.ops > 100
    # Majority of p99 latency is queueing for the metadata server's CPU
    # (calibrated ~0.84 at this operating point; 0.5 is the claim).
    assert profile.tail_share("cpu_wait", label="metadata.cpu") > 0.5
    # ... and it dominates overall too, with NIC/propagation minor.
    assert profile.share("cpu_wait", label="metadata.cpu") > 0.5
    assert profile.share("cpu_wait") > profile.share("propagation")
    # The critical path agrees: metadata CPU is the top attribution.
    top = max(result.critical.attribution.items(), key=lambda kv: kv[1])
    assert top[0] == ("cpu_wait", "metadata.cpu")


def test_fig13_fusee_plateau_is_nic_serialisation():
    result = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_LOADED, n_memory_nodes=2)
    profile = result.profile
    assert result.run.ops > 1000
    nic = profile.share("nic_wait") + profile.share("nic_service")
    # At saturation the NIC (queueing + serialisation) overtakes wire
    # propagation (calibrated ~0.51 vs ~0.43 at 64 clients / 2 MNs).
    assert nic > profile.share("propagation")
    assert profile.share("nic_wait") > 0.25
    # FUSEE has no RPC on the data path: MN CPU must stay negligible.
    assert profile.share("cpu_wait") + profile.share("cpu_service") < 0.1


def test_hotpath_knobs_lift_the_fig13_plateau():
    """Tentpole gate (before/after): replica read-spreading + adaptive
    doorbell coalescing must cut NIC serialisation queueing — nic_wait
    share drops — and lift saturated throughput >=10% over the
    paper-faithful seed on the same bed, with the evidence written to
    ``BENCH_profile.json``."""
    seed = profile_ycsb(system="fusee", workload="A",
                        scale=_FUSEE_LOADED, n_memory_nodes=2)
    tuned = profile_ycsb(system="fusee", workload="A",
                         scale=_FUSEE_LOADED, n_memory_nodes=2,
                         read_spread="least_loaded", max_coalesce_width=8)
    # the waits moved: less time queueing for a NIC serialisation slot
    assert tuned.profile.share("nic_wait") < seed.profile.share("nic_wait")
    # ... and it bought real throughput (calibrated ~+15% at this bed)
    assert tuned.run.mops >= 1.10 * seed.run.mops
    # the spread actually engaged: per-moment load balancing leaves the
    # hottest replica no further from its even share than the seed's
    # static primary placement does
    seed_skew = seed.metrics.series["kv_read_skew"].points[-1][1]
    tuned_skew = tuned.metrics.series["kv_read_skew"].points[-1][1]
    assert 1.0 <= tuned_skew <= seed_skew < 1.5

    payload = {
        "bed": {"workload": "A", "n_clients": _FUSEE_LOADED.n_clients,
                "n_memory_nodes": 2},
        "knobs": {"read_spread": "least_loaded", "max_coalesce_width": 8},
        "gate": {
            "mops_seed": round(seed.run.mops, 6),
            "mops_optimized": round(tuned.run.mops, 6),
            "speedup": round(tuned.run.mops / seed.run.mops, 4),
            "nic_wait_seed": round(seed.profile.share("nic_wait"), 4),
            "nic_wait_optimized": round(tuned.profile.share("nic_wait"),
                                        4),
        },
        "seed": seed.to_dict(),
        "optimized": tuned.to_dict(),
    }
    _write_bench_section("hotpath", payload)


def test_multiqueue_nics_break_the_tx_wall():
    """Tentpole gate (before/after): 4 NIC ports per MN with per-QP
    affinity plus a 2-way sharded MN RPC service must cut the saturated
    bed's nic_wait share from ~0.39+ to <=0.25 and lift throughput
    >=15%, with both bundles written to ``BENCH_profile.json``."""
    seed = profile_ycsb(system="fusee", workload="A",
                        scale=_FUSEE_LOADED, n_memory_nodes=2)
    mq = profile_ycsb(system="fusee", workload="A",
                      scale=_FUSEE_LOADED, n_memory_nodes=2,
                      nic_ports=4, rpc_shards=2)
    # the seed really is NIC-serialisation walled at this bed
    # (calibrated ~0.46; the issue's floor is 0.39-ish)
    assert seed.profile.share("nic_wait") > 0.35
    # ... and multi-queue dissolves the wall (calibrated ~0.02)
    assert mq.profile.share("nic_wait") <= 0.25
    # ... buying real throughput (calibrated ~+93% at this bed)
    assert mq.run.mops >= 1.15 * seed.run.mops
    # the ports actually spread: several tx ports carried real load
    # (the per-port counter tracks the profiler's edge ranking names)
    busy_tx = [name for name, series in mq.metrics.series.items()
               if ".nic_tx.p" in name and name.endswith(".util")
               and max(v for _, v in series.points) > 0.05]
    assert len(busy_tx) >= 2, busy_tx
    payload = {
        "bed": {"workload": "A", "n_clients": _FUSEE_LOADED.n_clients,
                "n_memory_nodes": 2},
        "knobs": {"nic_ports": 4, "rpc_shards": 2,
                  "port_affinity": "qp"},
        "gate": {
            "mops_seed": round(seed.run.mops, 6),
            "mops_optimized": round(mq.run.mops, 6),
            "speedup": round(mq.run.mops / seed.run.mops, 4),
            "nic_wait_seed": round(seed.profile.share("nic_wait"), 4),
            "nic_wait_optimized": round(mq.profile.share("nic_wait"), 4),
        },
        "seed": seed.to_dict(),
        "optimized": mq.to_dict(),
    }
    _write_bench_section("multiqueue", payload)


def test_scaled_bed_plateau_is_multiqueue_high():
    """The scale-test gate: at 256 clients / 8 MNs the single-queue
    model is hopelessly tx-walled (~0.60 nic_wait); the multi-queue +
    sharded bed must lift throughput >=2x and hand the bottleneck back
    to wire propagation.  The bundle lands in ``BENCH_profile.json``."""
    single = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_SCALED, n_memory_nodes=8)
    mq = profile_ycsb(system="fusee", workload="A",
                      scale=_FUSEE_SCALED, n_memory_nodes=8,
                      nic_ports=4, rpc_shards=2, port_affinity="rss")
    assert single.profile.share("nic_wait") > 0.5
    assert mq.run.ops > 10_000
    # calibrated: 13.8 -> 43.4 Mops, nic_wait 0.60 -> 0.04
    assert mq.run.mops >= 2.0 * single.run.mops
    assert mq.profile.share("nic_wait") <= 0.10
    # the new plateau is wire-bound, not queue-bound
    assert mq.profile.share("propagation") > \
        mq.profile.share("nic_wait") + mq.profile.share("nic_service")
    payload = {
        "bed": {"workload": "A", "n_clients": _FUSEE_SCALED.n_clients,
                "n_memory_nodes": 8},
        "knobs": {"nic_ports": 4, "rpc_shards": 2,
                  "port_affinity": "rss"},
        "gate": {
            "mops_single_queue": round(single.run.mops, 6),
            "mops_multiqueue": round(mq.run.mops, 6),
            "speedup": round(mq.run.mops / single.run.mops, 4),
            "nic_wait_single_queue":
                round(single.profile.share("nic_wait"), 4),
            "nic_wait_multiqueue":
                round(mq.profile.share("nic_wait"), 4),
        },
        "single_queue": single.to_dict(),
        "multiqueue": mq.to_dict(),
    }
    _write_bench_section("multiqueue_scaled", payload)


def test_fusee_unloaded_is_propagation_dominated():
    result = profile_ycsb(system="fusee", workload="A",
                          scale=_FUSEE_IDLE, n_memory_nodes=2)
    profile = result.profile
    # The RTT budget regime: with no queueing, ops are wire-bound.
    assert profile.share("propagation") > 0.6
    assert profile.share("nic_wait") < 0.1
    assert profile.share("backoff") == 0.0
