"""Shared bed-builders and timers for the kernel wall-clock gates.

The kernel speedup gates (``test_core_ops_wallclock.py``) compare the
current tree against a *recorded pre-refactor number* stored in
``benchmarks/baselines/kernel_wallclock.json``.  Absolute wall-clock is
machine-dependent, so the baseline file also records the runtime of a
fixed pure-Python **calibration workload** whose instruction mix (heap
churn, method calls, small-tuple allocation, dict traffic) resembles the
DES hot loop; at gate time the baseline seconds are rescaled by
``calibration_now / calibration_recorded`` before the speedup assertion.

Everything here is deliberately deterministic: fixed seeds, fixed op
counts, no wall-clock-dependent control flow — two runs of a bed do the
same simulated work, only the host speed varies.
"""

from __future__ import annotations

import heapq
import json
import time
from pathlib import Path

from repro.core import ClusterConfig, FuseeCluster
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig
from repro.harness.runner import run_closed_loop
from repro.harness.systems import fusee_bed
from repro.workloads import YcsbConfig, YcsbWorkload

BASELINE_PATH = Path(__file__).parent / "baselines" / "kernel_wallclock.json"

#: Geometry of the timed beds (keep in sync with the recorded baseline).
BIG_BED = dict(n_clients=128, n_memory_nodes=4, duration_us=600.0)
SCALED_BED = dict(n_clients=256, n_memory_nodes=8, duration_us=500.0)
MICRO_OPS = dict(n_inserts=1200, n_searches=2000, n_updates=2000)


def load_baseline() -> dict:
    with open(BASELINE_PATH) as fh:
        return json.load(fh)


# ---------------------------------------------------------------- beds
def big_bed_run(n_clients: int, n_memory_nodes: int, duration_us: float,
                seed: int = 13):
    """Run the multi-queue YCSB-A bed; returns ``(wall_seconds, ops)``.

    Mirrors the scale-smoke bed: rss port affinity, 4 NIC ports, 2 RPC
    shards, no tracer/profiler/scheduler — the pure kernel fast path.
    """
    bed = fusee_bed(n_memory_nodes=n_memory_nodes, replication_factor=2,
                    dataset_bytes=1 << 18, background_interval_us=0.0,
                    nic_ports=4, rpc_shards=2, port_affinity="rss",
                    max_clients=n_clients + 8)
    config = YcsbConfig(workload="A", n_keys=200)
    seeder = YcsbWorkload(config, seed=seed)
    bed.load((key, seeder.load_value(i))
             for i, key in enumerate(seeder.load_keys()))
    clients = [bed.new_client() for _ in range(n_clients)]
    t0 = time.perf_counter()
    run = run_closed_loop(
        bed.env, clients,
        lambda index: YcsbWorkload(config, seed=seed + 1 + index),
        bed.execute, duration_us=duration_us)
    return time.perf_counter() - t0, run.ops


def micro_ops_run(n_inserts: int, n_searches: int, n_updates: int):
    """Single-client core-ops microbench; returns ``(wall_seconds, ops)``.

    The same 2-MN cluster as the pytest-benchmark micro timings, driven
    for a fixed op count so the measurement is one number.
    """
    cluster = FuseeCluster(ClusterConfig(
        n_memory_nodes=2, replication_factor=2, regions_per_mn=4,
        region=RegionConfig(region_size=1 << 20, block_size=1 << 14),
        race=RaceConfig(n_subtables=4, n_groups=64)))
    client = cluster.new_client()
    t0 = time.perf_counter()
    for i in range(n_inserts):
        cluster.run_op(client.insert(f"bench-{i}".encode(), b"v" * 64))
    for i in range(n_searches):
        cluster.run_op(client.search(f"bench-{i % n_inserts}".encode()))
    for i in range(n_updates):
        cluster.run_op(client.update(f"bench-{i % n_inserts}".encode(),
                                     f"v{i}".encode()))
        if i % 64 == 63:
            cluster.run_op(client.maintenance())
    ops = n_inserts + n_searches + n_updates
    return time.perf_counter() - t0, ops


# -------------------------------------------------------- calibration
class _CalNode:
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def bump(self, delta: int) -> int:
        self.value = (self.value + delta) & 0xFFFFFFFF
        return self.value


def calibration_seconds(rounds: int = 150_000) -> float:
    """A fixed pure-Python workload approximating the DES hot loop.

    Heap push/pop with small tuples, bound-method calls, dict get/set —
    the operations whose host-speed ratio predicts how fast this machine
    runs the simulator relative to the one that recorded the baseline.
    """
    t0 = time.perf_counter()
    heap: list = []
    push, pop = heapq.heappush, heapq.heappop
    node = _CalNode(0x9E3779B9)
    table: dict = {}
    x = 12345
    for i in range(rounds):
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        push(heap, (x & 0xFFFF, i, node.bump(x)))
        table[x & 1023] = table.get((x >> 10) & 1023, 0) + 1
        if len(heap) > 64:
            pop(heap)
            pop(heap)
    while heap:
        pop(heap)
    return time.perf_counter() - t0


def measure_calibration(repeats: int = 3) -> float:
    """Best-of-N calibration time (minimum filters scheduler noise)."""
    return min(calibration_seconds() for _ in range(repeats))
