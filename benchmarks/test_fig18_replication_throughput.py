"""Fig. 18: FUSEE YCSB throughput vs replication factor."""

from repro.harness import fig18_replication_throughput

from .conftest import run_once


def test_fig18_replication_throughput(benchmark, scale, record):
    result = run_once(benchmark, fig18_replication_throughput, scale)
    record(result)
    rows = {r: (a, b, c, d) for r, a, b, c, d in result.rows}
    # write-heavy workloads pay for replication
    assert rows[3][0] < rows[1][0]
    assert rows[3][1] < rows[1][1] * 1.05
    # read-only YCSB-C is unaffected by the replication factor
    assert rows[3][2] > rows[1][2] * 0.85
