"""Fig. 14: throughput vs number of memory nodes (fixed client pool)."""

from repro.harness import fig14_memory_nodes

from .conftest import run_once


def test_fig14_memory_nodes(benchmark, scale, record):
    result = run_once(benchmark, fig14_memory_nodes, scale)
    record(result)
    table = {(w, m): (f, c, p) for w, m, f, c, p in result.rows}
    # FUSEE gains from 2 -> 3 MNs, then plateaus (client-bound)
    assert table[("A", 3)][0] >= table[("A", 2)][0] * 0.95
    assert table[("A", 5)][0] < table[("A", 3)][0] * 1.5
    # Clover stays metadata-bound regardless of MN count
    assert table[("A", 5)][1] < table[("A", 2)][1] * 1.4
