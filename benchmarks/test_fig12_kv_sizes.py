"""Fig. 12: FUSEE throughput grows as KV pairs shrink (RNIC-bandwidth bound)."""

from repro.harness import fig12_kv_sizes

from .conftest import run_once


def test_fig12_kv_sizes(benchmark, scale, record):
    result = run_once(benchmark, fig12_kv_sizes, scale)
    record(result)
    rows = {size: (a, c) for size, a, c in result.rows}
    # read-only YCSB-C is bandwidth-bound: smaller pairs -> more ops
    assert rows[256][1] > rows[1024][1] * 1.25
    assert rows[512][1] > rows[1024][1] * 1.10
    # YCSB-A also improves, more modestly
    assert rows[256][0] >= rows[1024][0]
