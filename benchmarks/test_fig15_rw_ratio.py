"""Fig. 15: throughput under different SEARCH:UPDATE ratios."""

from repro.harness import fig15_rw_ratio

from .conftest import run_once


def test_fig15_rw_ratio(benchmark, scale, record):
    result = run_once(benchmark, fig15_rw_ratio, scale)
    record(result)
    rows = {ratio: (f, c, p) for ratio, f, c, p in result.rows}
    # every system slows as updates grow
    assert rows["0:100"][0] < rows["100:0"][0]
    assert rows["0:100"][1] < rows["100:0"][1]
    assert rows["0:100"][2] < rows["100:0"][2]
    # FUSEE leads at every ratio (paper Fig. 15)
    for ratio, (fusee, clover, pdpm) in rows.items():
        assert fusee >= clover * 0.9, ratio
        assert fusee >= pdpm * 0.9, ratio
    # and decisively on the write-heavy end
    assert rows["0:100"][0] > rows["0:100"][1] * 1.5
