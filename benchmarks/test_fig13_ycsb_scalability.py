"""Fig. 13: YCSB throughput vs number of clients, three systems."""

from repro.harness import fig13_ycsb_scalability

from .conftest import run_once


def test_fig13_ycsb_scalability(benchmark, scale, record):
    result = run_once(benchmark, fig13_ycsb_scalability, scale)
    record(result)
    table = {(w, c): (f, cl, p) for w, c, f, cl, p in result.rows}
    lo, hi = min(scale.clients_sweep), max(scale.clients_sweep)
    # FUSEE scales with clients on the write-heavy workload...
    assert table[("A", hi)][0] > table[("A", lo)][0] * 1.5
    # ...and leads both baselines at full concurrency
    assert table[("A", hi)][0] > table[("A", hi)][1] * 1.5   # vs Clover
    assert table[("A", hi)][0] > table[("A", hi)][2] * 1.5   # vs pDPM
    # read-only workload: everyone scales; FUSEE competitive
    assert table[("C", hi)][0] > table[("C", lo)][0] * 1.5
    assert table[("C", hi)][0] >= table[("C", hi)][2]
