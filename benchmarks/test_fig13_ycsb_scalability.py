"""Fig. 13: YCSB throughput vs number of clients, three systems.

Besides the qualitative-shape assertions, this benchmark is the head of
the perf trajectory: it writes ``BENCH_ycsb.json`` at the repo root (one
row per workload x client count, Mops per system) so CI can archive the
numbers per commit and trends stay diffable.
"""

import json
import pathlib

from repro.harness import fig13_ycsb_scalability

from .conftest import run_once

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _emit_bench_json(result, scale) -> None:
    payload = {
        "benchmark": "ycsb-scalability",
        "figure": "fig13",
        "unit": "Mops",
        "scale": {"n_keys": scale.n_keys,
                  "clients_sweep": list(scale.clients_sweep),
                  "duration_us": scale.duration_us},
        "rows": [
            {"workload": w, "clients": c,
             "fusee": f, "clover": cl, "pdpm": p}
            for w, c, f, cl, p in result.rows
        ],
    }
    (_REPO_ROOT / "BENCH_ycsb.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_fig13_ycsb_scalability(benchmark, scale, record):
    result = run_once(benchmark, fig13_ycsb_scalability, scale)
    record(result)
    # Emit the perf artifact before the shape assertions so a regression
    # still leaves numbers behind for CI to archive and compare.
    _emit_bench_json(result, scale)
    table = {(w, c): (f, cl, p) for w, c, f, cl, p in result.rows}
    lo, hi = min(scale.clients_sweep), max(scale.clients_sweep)
    # FUSEE scales with clients on the write-heavy workload...
    assert table[("A", hi)][0] > table[("A", lo)][0] * 1.5
    # ...and leads both baselines at full concurrency
    assert table[("A", hi)][0] > table[("A", hi)][1] * 1.5   # vs Clover
    assert table[("A", hi)][0] > table[("A", hi)][2] * 1.5   # vs pDPM
    # read-only workload: everyone scales; FUSEE competitive
    assert table[("C", hi)][0] > table[("C", lo)][0] * 1.5
    assert table[("C", hi)][0] >= table[("C", hi)][2]
