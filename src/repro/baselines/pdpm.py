"""pDPM-Direct (Tsai et al., ATC'20): the client-managed, lock-based
baseline (§6.1).

pDPM-Direct disaggregates metadata like FUSEE, but resolves conflicts
with *remote spin locks*: each hash-index bucket on the metadata memory
node carries an 8-byte lock word that writers acquire with RDMA_CAS and
spin on.  Updates are in-place under the lock, written as an un-committed
copy then a committed copy (pDPM-Direct's crash-consistency scheme), so
the lock is held for several RTTs and hot keys serialize — the behaviour
that caps its throughput in Figs. 11, 13 and 15.

Reads are lock-free: fetch the record and verify its CRC, retrying on a
torn (concurrently written) image.

Layout.  The index (buckets of a lock word + 8 slots) lives on MN 0.
Records live in a *record area* carved at the same relative offsets on
every MN, so a slot word ``(primary_mn+1) << 48 | offset`` identifies all
``data_replicas`` copies of a record (successive MNs, same offset).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rdma import CasOp, Fabric, FabricConfig, MemoryNode, ReadOp, WriteOp
from ..sim import Environment, NicProfile
from .common import decode_record, encode_record

__all__ = ["PdpmConfig", "PdpmCluster", "PdpmClient"]

SLOT_BYTES = 8


@dataclass(frozen=True)
class PdpmConfig:
    n_memory_nodes: int = 2
    data_replicas: int = 2
    n_buckets: int = 4096
    slots_per_bucket: int = 8
    record_capacity: int = 1 << 11   # fixed per-key record slab
    record_area: int = 1 << 25
    lock_backoff_us: float = 2.0
    max_lock_spins: int = 100_000
    fabric: FabricConfig = FabricConfig()
    nic: NicProfile = NicProfile()

    @property
    def bucket_bytes(self) -> int:
        return SLOT_BYTES * (1 + self.slots_per_bucket)


class PdpmCluster:
    """Memory pool with a client-managed, lock-protected index on MN 0."""

    def __init__(self, config: Optional[PdpmConfig] = None,
                 env: Optional[Environment] = None):
        self.config = config or PdpmConfig()
        self.env = env or Environment()
        cfg = self.config
        self.fabric = Fabric(self.env, cfg.fabric)
        capacity = cfg.record_area + cfg.n_buckets * cfg.bucket_bytes + (1 << 12)
        for mn in range(cfg.n_memory_nodes):
            self.fabric.add_node(MemoryNode(self.env, mn, capacity,
                                            nic_profile=cfg.nic))
        self.index_mn = 0
        self.index_base = self.fabric.node(0).carve(
            cfg.n_buckets * cfg.bucket_bytes)
        # record area: identical offsets on every MN
        self.record_base: Dict[int, int] = {
            mn: self.fabric.node(mn).carve(cfg.record_area)
            for mn in range(cfg.n_memory_nodes)}
        self._record_cursor = 64  # offset 0 reserved (null slot word)
        self._rr_mn = 0
        self.clients: List["PdpmClient"] = []

    # ------------------------------------------------------------- layout
    def bucket_of(self, key: bytes) -> int:
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.config.n_buckets

    def bucket_addr(self, bucket: int) -> int:
        return self.index_base + bucket * self.config.bucket_bytes

    def alloc_record(self) -> Tuple[int, int]:
        """Returns (primary_mn, offset) of a fresh record home."""
        cfg = self.config
        offset = self._record_cursor
        self._record_cursor += cfg.record_capacity
        if self._record_cursor > cfg.record_area:
            raise MemoryError("pDPM record area exhausted")
        primary = self._rr_mn
        self._rr_mn = (self._rr_mn + 1) % cfg.n_memory_nodes
        return primary, offset

    def record_locs(self, primary_mn: int, offset: int):
        """All replica locations of a record, primary first."""
        cfg = self.config
        return tuple(((primary_mn + i) % cfg.n_memory_nodes,
                      self.record_base[(primary_mn + i) % cfg.n_memory_nodes]
                      + offset)
                     for i in range(cfg.data_replicas))

    @staticmethod
    def slot_word(primary_mn: int, offset: int) -> int:
        return ((primary_mn + 1) << 48) | offset

    @staticmethod
    def split_word(word: int) -> Tuple[int, int]:
        return (word >> 48) - 1, word & ((1 << 48) - 1)

    def new_client(self) -> "PdpmClient":
        client = PdpmClient(self, len(self.clients) + 1)
        self.clients.append(client)
        return client

    def run_op(self, generator):
        return self.env.run(until=self.env.process(generator))


class PdpmClient:
    """One pDPM-Direct client."""

    def __init__(self, cluster: PdpmCluster, cid: int):
        self.cluster = cluster
        self.env = cluster.env
        self.fabric = cluster.fabric
        self.cid = cid
        self.cache: Dict[bytes, Tuple[int, int]] = {}  # key -> (mn, offset)
        self.lock_spins = 0

    # ------------------------------------------------------------ locking
    def _acquire(self, bucket: int):
        cfg = self.cluster.config
        addr = self.cluster.bucket_addr(bucket)
        for _ in range(cfg.max_lock_spins):
            comps = yield self.fabric.post(
                [CasOp(self.cluster.index_mn, addr, expected=0,
                       swap=self.cid)])
            if comps[0].cas_succeeded():
                return True
            self.lock_spins += 1
            yield self.env.timeout(cfg.lock_backoff_us)
        return False

    def _release_op(self, bucket: int) -> WriteOp:
        return WriteOp(self.cluster.index_mn,
                       self.cluster.bucket_addr(bucket), bytes(8))

    # ------------------------------------------------------------ index I/O
    def _read_bucket(self, bucket: int):
        cfg = self.cluster.config
        comps = yield self.fabric.post(
            [ReadOp(self.cluster.index_mn, self.cluster.bucket_addr(bucket),
                    cfg.bucket_bytes)])
        data = comps[0].value
        return [int.from_bytes(data[SLOT_BYTES * (1 + i):
                                    SLOT_BYTES * (2 + i)], "big")
                for i in range(cfg.slots_per_bucket)]

    def _slot_addr(self, bucket: int, slot_index: int) -> int:
        return (self.cluster.bucket_addr(bucket)
                + SLOT_BYTES * (1 + slot_index))

    def _read_record(self, mn: int, offset: int):
        cfg = self.cluster.config
        addr = self.cluster.record_base[mn] + offset
        comps = yield self.fabric.post([ReadOp(mn, addr,
                                               cfg.record_capacity)])
        return decode_record(comps[0].value)

    def _locate(self, key: bytes, slots):
        """(slot_index, (mn, offset)) of the key, or (free_index, None)."""
        free = None
        for i, word in enumerate(slots):
            if word == 0:
                if free is None:
                    free = i
                continue
            mn, offset = self.cluster.split_word(word)
            record = yield from self._read_record(mn, offset)
            if record is not None and record[1] == key:
                return i, (mn, offset)
        return free, None

    # ------------------------------------------------------------ operations
    def search(self, key: bytes):
        """Lock-free read with CRC verification and torn-read retry."""
        cfg = self.cluster.config
        home = self.cache.get(key)
        for _attempt in range(64):
            if home is None:
                slots = yield from self._read_bucket(
                    self.cluster.bucket_of(key))
                _i, home = yield from self._locate(key, slots)
                if home is None:
                    return None
                self.cache[key] = home
            record = yield from self._read_record(*home)
            if record is None:
                yield self.env.timeout(cfg.lock_backoff_us)  # torn: retry
                continue
            _next, rkey, rvalue = record
            if rkey != key:
                self.cache.pop(key, None)
                home = None
                continue
            return rvalue

    def _write_record_locked(self, primary_mn: int, offset: int,
                             key: bytes, value: bytes):
        """In-place double write: un-committed copy, then committed copy."""
        record = encode_record(key, value)
        if len(record) > self.cluster.config.record_capacity:
            raise ValueError("record exceeds pDPM slab capacity")
        locs = self.cluster.record_locs(primary_mn, offset)
        backups = [WriteOp(mn, addr, record) for mn, addr in locs[1:]]
        if backups:
            yield self.fabric.post(backups)
        yield self.fabric.post([WriteOp(locs[0][0], locs[0][1], record)])

    def update(self, key: bytes, value: bytes):
        bucket = self.cluster.bucket_of(key)
        if not (yield from self._acquire(bucket)):
            return False
        ok = yield from self._update_locked(bucket, key, value)
        yield self.fabric.post([self._release_op(bucket)])
        return ok

    def _update_locked(self, bucket: int, key: bytes, value: bytes):
        # pDPM-Direct re-resolves the key under the lock (the index may
        # have changed since the cached lookup), which is part of why its
        # critical section spans several RTTs.
        slots = yield from self._read_bucket(bucket)
        _i, home = yield from self._locate(key, slots)
        if home is None:
            return False
        self.cache[key] = home
        yield from self._write_record_locked(home[0], home[1], key, value)
        return True

    def insert(self, key: bytes, value: bytes):
        bucket = self.cluster.bucket_of(key)
        if not (yield from self._acquire(bucket)):
            return False
        ok = yield from self._insert_locked(bucket, key, value)
        yield self.fabric.post([self._release_op(bucket)])
        return ok

    def _insert_locked(self, bucket: int, key: bytes, value: bytes):
        slots = yield from self._read_bucket(bucket)
        slot_index, home = yield from self._locate(key, slots)
        if home is not None:
            return False  # already present
        if slot_index is None:
            raise RuntimeError("pDPM bucket full")
        primary_mn, offset = self.cluster.alloc_record()
        yield from self._write_record_locked(primary_mn, offset, key, value)
        word = self.cluster.slot_word(primary_mn, offset)
        yield self.fabric.post(
            [WriteOp(self.cluster.index_mn,
                     self._slot_addr(bucket, slot_index),
                     word.to_bytes(8, "big"))])
        self.cache[key] = (primary_mn, offset)
        return True

    def delete(self, key: bytes):
        bucket = self.cluster.bucket_of(key)
        if not (yield from self._acquire(bucket)):
            return False
        ok = yield from self._delete_locked(bucket, key)
        yield self.fabric.post([self._release_op(bucket)])
        return ok

    def _delete_locked(self, bucket: int, key: bytes):
        slots = yield from self._read_bucket(bucket)
        slot_index, home = yield from self._locate(key, slots)
        if home is None:
            return False
        # Overwrite the record so readers holding a cached home see a
        # foreign key and re-resolve (then miss), and clear the slot.
        yield from self._write_record_locked(home[0], home[1], b"", b"")
        yield self.fabric.post(
            [WriteOp(self.cluster.index_mn,
                     self._slot_addr(bucket, slot_index), bytes(8))])
        self.cache.pop(key, None)
        return True
