"""The Figure 3 motivation study: why consensus and remote locks don't
scale for client-centric replication on DM (§3.1).

Both comparators replicate one 8-byte object on two memory nodes and let
N clients write it concurrently:

* :class:`ConsensusReplicatedObject` — a Derecho-style totally-ordered
  replication: every write is sequenced by a leader process (CPU-bound
  serialization) which then applies it to all replicas.
* :class:`LockReplicatedObject` — an RDMA CAS spin lock guarding the
  replicas; the lock is held for the whole replica-update critical
  section.

:class:`SnapshotReplicatedObject` wraps SNAPSHOT over the same replicas
so experiments can show the contrast (the paper's Fig. 3 shows only the
two poor scalers; the SNAPSHOT series corresponds to its Fig. 11/13
behaviour).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.race import SlotRef
from ..core.snapshot import snapshot_write
from ..rdma import CasOp, Fabric, FabricConfig, MemoryNode, ReadOp, WriteOp
from ..sim import Environment, NicProfile
from .common import RpcServer

__all__ = [
    "ReplicatedObjectBed",
    "ConsensusReplicatedObject",
    "LockReplicatedObject",
    "SnapshotReplicatedObject",
]


class ReplicatedObjectBed:
    """A fabric with r memory nodes, each holding one 8-byte replica at
    address 8 (address 0 holds the lock word for the lock variant)."""

    def __init__(self, replicas: int = 2, env: Optional[Environment] = None,
                 fabric_config: Optional[FabricConfig] = None,
                 nic: Optional[NicProfile] = None):
        self.env = env or Environment()
        self.fabric = Fabric(self.env, fabric_config or FabricConfig())
        for mn in range(replicas):
            self.fabric.add_node(MemoryNode(self.env, mn, capacity=64,
                                            nic_profile=nic or NicProfile()))
        self.replicas = replicas

    def replica_locs(self) -> List[tuple]:
        return [(mn, 8) for mn in range(self.replicas)]

    def run_op(self, generator):
        return self.env.run(until=self.env.process(generator))


class ConsensusReplicatedObject:
    """Derecho-like: writes are sequenced by a leader, then replicated."""

    def __init__(self, bed: ReplicatedObjectBed, leader_cores: int = 1,
                 sequence_cpu_us: float = 1.5):
        self.bed = bed
        self.leader = RpcServer(bed.env, cores=leader_cores,
                                label="leader")
        self._sequence_cpu_us = sequence_cpu_us
        self.leader.register("write", self._h_write)
        self._seq = 0

    def _h_write(self, payload):
        self._seq += 1
        return {"seq": self._seq}, self._sequence_cpu_us

    def write(self, value: int):
        """Generator: one totally-ordered write."""
        # 1. obtain a sequence number from the leader (its CPU serializes)
        yield self.leader.call("write", {"value": value})
        # 2. the sequenced write is applied to all replicas
        data = value.to_bytes(8, "big")
        yield self.bed.fabric.post([WriteOp(mn, addr, data)
                                    for mn, addr in self.bed.replica_locs()])
        return True


class LockReplicatedObject:
    """RDMA CAS spin lock + replica writes under the lock."""

    def __init__(self, bed: ReplicatedObjectBed, backoff_us: float = 2.0):
        self.bed = bed
        self.backoff_us = backoff_us
        self.lock_mn = 0
        self.lock_addr = 0

    def write(self, value: int, owner: int = 1):
        """Generator: acquire, update replicas, release."""
        fabric = self.bed.fabric
        while True:
            comps = yield fabric.post([CasOp(self.lock_mn, self.lock_addr,
                                             expected=0, swap=owner)])
            if comps[0].cas_succeeded():
                break
            yield self.bed.env.timeout(self.backoff_us)
        data = value.to_bytes(8, "big")
        yield fabric.post([WriteOp(mn, addr, data)
                           for mn, addr in self.bed.replica_locs()])
        yield fabric.post([WriteOp(self.lock_mn, self.lock_addr, bytes(8))])
        return True


class SnapshotReplicatedObject:
    """The same replicated object driven by the SNAPSHOT protocol."""

    def __init__(self, bed: ReplicatedObjectBed):
        self.bed = bed
        self.ref = SlotRef(subtable=0, slot_index=0,
                           placement=tuple((mn, 8)
                                           for mn in range(bed.replicas)))

    def write(self, value: int):
        """Generator: read primary + SNAPSHOT write (out-of-place values
        must be distinct, so callers pass unique values)."""
        fabric = self.bed.fabric
        mn, addr = self.ref.primary()
        comps = yield fabric.post([ReadOp(mn, addr, 8)])
        v_old = int.from_bytes(comps[0].value, "big")
        if v_old == value:
            return True
        result = yield from snapshot_write(fabric, self.ref, v_old, value)
        return result.outcome.completed
