"""Baseline systems the paper compares against (§6.1, §3.1)."""

from .clover import CloverClient, CloverCluster, CloverConfig
from .common import BumpGrantAllocator, RpcServer, decode_record, encode_record
from .fig3 import (
    ConsensusReplicatedObject,
    LockReplicatedObject,
    ReplicatedObjectBed,
    SnapshotReplicatedObject,
)
from .pdpm import PdpmClient, PdpmCluster, PdpmConfig

__all__ = [
    "CloverClient",
    "CloverCluster",
    "CloverConfig",
    "BumpGrantAllocator",
    "RpcServer",
    "decode_record",
    "encode_record",
    "ConsensusReplicatedObject",
    "LockReplicatedObject",
    "ReplicatedObjectBed",
    "SnapshotReplicatedObject",
    "PdpmClient",
    "PdpmCluster",
    "PdpmConfig",
]
