"""Shared infrastructure for the baseline systems.

* :class:`RpcServer` — a monolithic server (CPU cores + NIC) reachable by
  RPC: Clover's metadata server (§2.2, Fig. 2) and the consensus leader of
  Fig. 3 are instances.  This is exactly the component whose resource
  consumption FUSEE eliminates.
* A minimal KV record codec (header + key + value + CRC) for baselines
  that do not carry FUSEE's embedded log.
* :class:`BumpGrantAllocator` — Clover-style client-side allocation from
  coarse block grants handed out by a server, amortising allocation RPCs.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..sim import Environment, NicPort, NicProfile, Resource

__all__ = ["RpcServer", "ServerStats", "encode_record", "decode_record",
           "record_size", "BumpGrantAllocator"]

_RECORD_HEADER = struct.Struct(">QHLL")  # next-version ptr, keylen, vallen, crc
RECORD_HEADER_SIZE = _RECORD_HEADER.size


@dataclass
class ServerStats:
    calls: int = 0
    busy_us: float = 0.0
    per_op: Dict[str, int] = field(default_factory=dict)


class RpcServer:
    """A monolithic server with ``cores`` CPUs serving named RPC handlers.

    Handlers are ``payload -> (reply, cpu_us)``.  Calls traverse the
    network (one-way each direction), occupy the server NIC, queue for a
    CPU core, and burn the handler's reported CPU time — so a small core
    count becomes the throughput bottleneck, which is the phenomenon
    Figure 2 demonstrates for Clover's metadata server.
    """

    def __init__(self, env: Environment, cores: int = 8,
                 nic_profile: Optional[NicProfile] = None,
                 one_way_delay_us: float = 0.9,
                 label: str = "server"):
        self.env = env
        self.label = label
        self.cpu = Resource(env, capacity=max(1, cores),
                            label=f"{label}.cpu")
        self.nic = NicPort(env, nic_profile or NicProfile(),
                           label=f"{label}.nic")
        self.one_way_delay_us = one_way_delay_us
        self.stats = ServerStats()
        self._handlers: Dict[str, Callable] = {}

    def register(self, name: str, handler: Callable) -> None:
        self._handlers[name] = handler

    def call(self, name: str, payload: dict):
        """RPC as an event (spawned process); fires with the reply."""
        proc = self.env.process(self._call_proc(name, payload),
                                name=f"rpc:{name}")
        prof = self.env.profiler
        if prof is not None:
            # The call runs in its own process; bind it to the caller's
            # span so its CPU/NIC intervals land in the right breakdown.
            prof.bind(proc, prof.current_span())
        return proc

    def _call_proc(self, name: str, payload: dict):
        env = self.env
        self.stats.calls += 1
        self.stats.per_op[name] = self.stats.per_op.get(name, 0) + 1
        prof = env.profiler
        if prof is not None:
            prof.note("propagation", "net.request", env.now,
                      env.now + self.one_way_delay_us)
        yield env.timeout(self.one_way_delay_us)
        yield self.nic.occupy(self.nic.profile.rpc_overhead)
        req = self.cpu.request()
        yield req
        try:
            reply, cpu_us = self._handlers[name](payload)
            self.stats.busy_us += cpu_us
            yield env.timeout(cpu_us)
        finally:
            req.release()
        yield self.nic.occupy(self.nic.profile.rpc_overhead)
        if prof is not None:
            prof.note("propagation", "net.reply", env.now,
                      env.now + self.one_way_delay_us)
        yield env.timeout(self.one_way_delay_us)
        return reply


def record_size(key: bytes, value: bytes) -> int:
    return RECORD_HEADER_SIZE + len(key) + len(value)


def encode_record(key: bytes, value: bytes, next_version: int = 0) -> bytes:
    crc = zlib.crc32(key + value) & 0xFFFFFFFF
    return _RECORD_HEADER.pack(next_version, len(key), len(value), crc) \
        + key + value


def decode_record(data: bytes) -> Optional[Tuple[int, bytes, bytes]]:
    """``(next_version, key, value)`` or None if torn/corrupt."""
    if len(data) < RECORD_HEADER_SIZE:
        return None
    next_version, key_len, value_len, crc = _RECORD_HEADER.unpack_from(data, 0)
    end = RECORD_HEADER_SIZE + key_len + value_len
    if end > len(data):
        return None
    key = bytes(data[RECORD_HEADER_SIZE:RECORD_HEADER_SIZE + key_len])
    value = bytes(data[RECORD_HEADER_SIZE + key_len:end])
    if zlib.crc32(key + value) & 0xFFFFFFFF != crc:
        return None
    return next_version, key, value


class BumpGrantAllocator:
    """Client-side bump allocation from coarse per-MN grants.

    ``grant(mn_id, nbytes)`` is called (rarely) to obtain a new extent;
    allocations then cost nothing — Clover's "clients allocate a batch of
    memory blocks one at a time" behaviour (§2.2).
    """

    def __init__(self, grant_size: int = 1 << 20):
        self.grant_size = grant_size
        self._extents: Dict[int, Tuple[int, int]] = {}  # mn -> (cursor, end)
        self.grants_requested = 0

    def needs_grant(self, mn_id: int, nbytes: int) -> bool:
        cursor, end = self._extents.get(mn_id, (0, 0))
        return cursor + nbytes > end

    def install_grant(self, mn_id: int, base: int) -> None:
        self.grants_requested += 1
        self._extents[mn_id] = (base, base + self.grant_size)

    def alloc(self, mn_id: int, nbytes: int) -> int:
        cursor, end = self._extents[mn_id]
        if cursor + nbytes > end:
            raise RuntimeError("allocation without grant")
        aligned = (nbytes + 63) // 64 * 64
        self._extents[mn_id] = (cursor + aligned, end)
        return cursor
