"""Clover (Tsai et al., ATC'20): the semi-disaggregated baseline (§2.2).

Clover stores KV pairs on memory nodes but keeps *metadata* — the hash
index and memory-management information — on a monolithic metadata server
with real CPU cores.  Its flows, as Fig. 1a describes:

* SEARCH — look up the KV address (client-side index cache, falling back
  to a metadata-server RPC), then fetch the pair with one RDMA_READ.
  Out-of-place updates leave a *version chain*: a stale cached address is
  followed through per-record next-version pointers, one RTT per hop.
* UPDATE / INSERT — allocate from a client-local grant (batched block
  allocation from the metadata server), write the pair to the data
  replicas with RDMA_WRITE, then RPC the metadata server to point the
  index at the new version; the server also links the old version's
  next-pointer (served by its CPU).
* DELETE — unsupported by the open-source Clover (§6.2), and here.

The metadata server's CPU is the scaling bottleneck (Figs. 2, 13): every
INSERT/UPDATE costs CPU service time on one of its ``metadata_cores``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rdma import Fabric, FabricConfig, MemoryNode, ReadOp, WriteOp
from ..sim import Environment, NicProfile
from .common import (
    BumpGrantAllocator,
    RpcServer,
    decode_record,
    encode_record,
    record_size,
)

__all__ = ["CloverConfig", "CloverCluster", "CloverClient"]


@dataclass(frozen=True)
class CloverConfig:
    n_memory_nodes: int = 2
    data_replicas: int = 2
    metadata_cores: int = 8
    mn_capacity: int = 1 << 28
    grant_size: int = 1 << 17
    # CPU costs on the metadata server (per request).  Calibrated against
    # the paper: an index update (out-of-place chaining + GC bookkeeping)
    # costs ~5us of a 2.1 GHz Xeon core, so 6 cores serve the ~2.25 Mops
    # plateau of Fig. 2, and the metadata server's single RNIC caps RPCs
    # at ~2.3M/s so adding cores beyond ~6 stops helping.
    lookup_cpu_us: float = 2.0
    update_cpu_us: float = 5.0
    alloc_cpu_us: float = 8.0
    fabric: FabricConfig = FabricConfig()
    nic: NicProfile = NicProfile()
    metadata_nic: NicProfile = NicProfile(rpc_overhead=0.22)


class CloverCluster:
    """Memory pool + metadata server + client factory."""

    def __init__(self, config: Optional[CloverConfig] = None,
                 env: Optional[Environment] = None):
        self.config = config or CloverConfig()
        self.env = env or Environment()
        cfg = self.config
        self.fabric = Fabric(self.env, cfg.fabric)
        for mn in range(cfg.n_memory_nodes):
            self.fabric.add_node(MemoryNode(self.env, mn, cfg.mn_capacity,
                                            nic_profile=cfg.nic))
        self.metadata = RpcServer(self.env, cores=cfg.metadata_cores,
                                  nic_profile=cfg.metadata_nic,
                                  label="metadata")
        # server-side state: the hash index and MM info (plain structures —
        # they live in the metadata server's DRAM, not on the fabric)
        self._index: Dict[bytes, Tuple[Tuple[Tuple[int, int], ...], int]] = {}
        self._bump: Dict[int, int] = {mn: 64 for mn in
                                      range(cfg.n_memory_nodes)}
        self._rr = itertools.count()
        self.metadata.register("lookup", self._h_lookup)
        self.metadata.register("update_index", self._h_update_index)
        self.metadata.register("alloc_grant", self._h_alloc_grant)
        self.clients: List["CloverClient"] = []

    # ---------------------------------------------------- metadata handlers
    def _h_lookup(self, payload):
        entry = self._index.get(payload["key"])
        if entry is None:
            return {"found": False}, self.config.lookup_cpu_us
        locs, size = entry
        return ({"found": True, "locs": list(locs), "size": size},
                self.config.lookup_cpu_us)

    def _h_update_index(self, payload):
        key = payload["key"]
        old = self._index.get(key)
        if payload.get("insert") and old is not None:
            return {"ok": False, "exists": True}, self.config.update_cpu_us
        if not payload.get("insert") and old is None:
            return {"ok": False, "exists": False}, self.config.update_cpu_us
        self._index[key] = (tuple(payload["locs"]), payload["size"])
        reply = {"ok": True}
        if old is not None:
            # the server hands back the old locations so the client can
            # link the version chain (one unsignaled write, off-path)
            reply["old_locs"] = list(old[0])
            reply["old_size"] = old[1]
        return reply, self.config.update_cpu_us

    def _h_alloc_grant(self, payload):
        mn = payload["mn"]
        base = self._bump[mn]
        self._bump[mn] += self.config.grant_size
        if self._bump[mn] > self.config.mn_capacity:
            return {"ok": False}, self.config.alloc_cpu_us
        return {"ok": True, "base": base}, self.config.alloc_cpu_us

    # ------------------------------------------------------------- clients
    def new_client(self) -> "CloverClient":
        client = CloverClient(self, len(self.clients) + 1)
        self.clients.append(client)
        return client

    def replica_mns(self, serial: int) -> List[int]:
        """Round-robin data placement across MNs."""
        cfg = self.config
        first = serial % cfg.n_memory_nodes
        return [(first + i) % cfg.n_memory_nodes
                for i in range(cfg.data_replicas)]

    def run_op(self, generator):
        return self.env.run(until=self.env.process(generator))


@dataclass
class _CacheEntry:
    locs: Tuple[Tuple[int, int], ...]
    size: int


class CloverClient:
    """One Clover compute-node client."""

    MAX_CHAIN_HOPS = 16

    def __init__(self, cluster: CloverCluster, cid: int):
        self.cluster = cluster
        self.env = cluster.env
        self.fabric = cluster.fabric
        self.cid = cid
        self.alloc = BumpGrantAllocator(cluster.config.grant_size)
        self.cache: Dict[bytes, _CacheEntry] = {}
        self._serial = cid * 7

    # ------------------------------------------------------------ helpers
    def _write_record(self, key: bytes, value: bytes):
        """Allocate + write a record to the data replicas (generator).

        Returns the replica locations of the new record."""
        size = record_size(key, value)
        self._serial += 1
        mns = self.cluster.replica_mns(self._serial)
        locs = []
        for mn in mns:
            if self.alloc.needs_grant(mn, size):
                reply = yield self.cluster.metadata.call("alloc_grant",
                                                         {"mn": mn})
                if not reply["ok"]:
                    raise MemoryError("Clover memory pool exhausted")
                self.alloc.install_grant(mn, reply["base"])
            locs.append((mn, self.alloc.alloc(mn, size)))
        record = encode_record(key, value)
        yield self.fabric.post([WriteOp(mn, addr, record)
                                for mn, addr in locs])
        return tuple(locs), size

    def _link_old_version(self, old_locs, old_size, new_loc) -> None:
        """Point the old record's next-version field at the new record.

        Encoded as (mn_id << 48 | addr); posted unsignaled, off-path."""
        mn, addr = new_loc
        pointer = ((mn + 1) << 48) | addr
        ops = [WriteOp(omn, oaddr, pointer.to_bytes(8, "big"))
               for omn, oaddr in old_locs]
        self.fabric.post(ops)

    # ------------------------------------------------------------ operations
    def search(self, key: bytes):
        entry = self.cache.get(key)
        if entry is None:
            reply = yield self.cluster.metadata.call("lookup", {"key": key})
            if not reply["found"]:
                return None
            entry = _CacheEntry(tuple(tuple(l) for l in reply["locs"]),
                                reply["size"])
            self.cache[key] = entry
        mn, addr = entry.locs[0]
        size = entry.size
        # Follow the version chain from the (possibly stale) cached copy.
        for _hop in range(self.MAX_CHAIN_HOPS):
            comps = yield self.fabric.post([ReadOp(mn, addr, size)])
            record = decode_record(comps[0].value)
            if record is None:
                # torn/unknown: fall back to a fresh metadata lookup
                reply = yield self.cluster.metadata.call("lookup",
                                                         {"key": key})
                if not reply["found"]:
                    self.cache.pop(key, None)
                    return None
                entry = _CacheEntry(tuple(tuple(l) for l in reply["locs"]),
                                    reply["size"])
                self.cache[key] = entry
                (mn, addr), size = entry.locs[0], entry.size
                continue
            next_version, rkey, rvalue = record
            if next_version:
                mn = (next_version >> 48) - 1
                addr = next_version & ((1 << 48) - 1)
                # chain hops read generously (the new size is unknown)
                size = min(max(size, 4096),
                           self.cluster.config.mn_capacity - addr)
                continue
            if rkey != key:
                reply = yield self.cluster.metadata.call("lookup",
                                                         {"key": key})
                if not reply["found"]:
                    self.cache.pop(key, None)
                    return None
                entry = _CacheEntry(tuple(tuple(l) for l in reply["locs"]),
                                    reply["size"])
                self.cache[key] = entry
                (mn, addr), size = entry.locs[0], entry.size
                continue
            self.cache[key] = _CacheEntry(((mn, addr),) + entry.locs[1:],
                                          size)
            return rvalue
        return None

    def update(self, key: bytes, value: bytes):
        locs, size = yield from self._write_record(key, value)
        reply = yield self.cluster.metadata.call(
            "update_index", {"key": key, "locs": list(locs), "size": size})
        if not reply["ok"]:
            return False
        if "old_locs" in reply:
            self._link_old_version([tuple(l) for l in reply["old_locs"]],
                                   reply["old_size"], locs[0])
        self.cache[key] = _CacheEntry(locs, size)
        return True

    def insert(self, key: bytes, value: bytes):
        locs, size = yield from self._write_record(key, value)
        reply = yield self.cluster.metadata.call(
            "update_index", {"key": key, "locs": list(locs), "size": size,
                             "insert": True})
        if not reply["ok"]:
            return False
        self.cache[key] = _CacheEntry(locs, size)
        return True

    def delete(self, key: bytes):
        raise NotImplementedError(
            "the open-source Clover does not support DELETE (§6.2)")
