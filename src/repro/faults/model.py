"""Deterministic, seeded fault model for the simulated RDMA fabric.

A :class:`FaultPlan` is a scripted timeline of network imperfections:

* :class:`LinkFault` — per-link drop/duplicate probability and delay
  jitter over a time window (``mn_id=None`` applies to every
  compute-side↔MN link);
* :class:`Partition` — a link partition between the compute side
  (clients + master, endpoint :data:`CN`) and an MN, or between two MNs;
  ``drop_requests`` / ``drop_replies`` make it asymmetric (one direction
  only);
* :class:`GrayNode` — a slow-but-alive MN whose NIC/CPU service times
  are inflated by ``factor``.

The :class:`FaultInjector` turns a plan into per-delivery *fates*.  Every
probabilistic draw is a keyed hash (BLAKE2b over the plan seed, the link,
the message identity, the attempt number, and the current sim time) —
**not** a sequential RNG — so a fate depends only on *what* is sent and
*when*, never on how many unrelated draws happened before it.  Replaying
a schedule replays the exact same faults, which keeps the
:mod:`repro.check` schedule explorer and Hypothesis shrinking sound.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from hashlib import blake2b
from typing import Iterable, Optional, Tuple

from ..rdma.verbs import verb_ident
from .retry import RetryPolicy

__all__ = [
    "CN",
    "LinkFault",
    "Partition",
    "GrayNode",
    "FaultPlan",
    "Fate",
    "FaultInjector",
    "verb_ident",
]

#: Endpoint label for the compute side of the fabric (clients + master).
CN = "cn"

_INF = math.inf


@dataclass(frozen=True)
class LinkFault:
    """Loss / duplication / jitter on a compute-side↔MN link.

    ``port`` scopes the fault to one NIC port of a multi-port MN
    (``None``, the default, hits every port — the whole link).
    """

    mn_id: Optional[int] = None    # None: every compute↔MN link
    drop_p: float = 0.0            # per message, per direction
    dup_p: float = 0.0             # per delivered request
    jitter_us: float = 0.0         # extra one-way delay, uniform [0, jitter)
    start_us: float = 0.0
    end_us: float = _INF
    port: Optional[int] = None     # None: every NIC port of the MN

    def active(self, now: float) -> bool:
        return self.start_us <= now < self.end_us


@dataclass(frozen=True)
class Partition:
    """A (possibly asymmetric) partition between ``a`` and ``b``.

    ``a``/``b`` are :data:`CN` or MN ids.  ``drop_requests`` kills a→b
    traffic, ``drop_replies`` kills b→a traffic; set only one for an
    asymmetric partition.  ``port`` restricts the partition to a single
    NIC port on the MN side (a failed cable on one queue of a multi-port
    RNIC); deliveries hashed onto other ports are unaffected, so clients
    escape by re-hashing their retries.
    """

    a: object
    b: object
    start_us: float = 0.0
    end_us: float = _INF
    drop_requests: bool = True
    drop_replies: bool = True
    port: Optional[int] = None

    def active(self, now: float) -> bool:
        return self.start_us <= now < self.end_us


@dataclass(frozen=True)
class GrayNode:
    """A slow-but-alive MN: service times multiplied by ``factor``.

    With ``port`` set, only traffic hashed onto that NIC port of a
    multi-port MN is slowed (a single degraded queue/lane), so retries
    that re-hash onto a healthy port run at full speed.
    """

    mn_id: int
    factor: float = 8.0
    start_us: float = 0.0
    end_us: float = _INF
    port: Optional[int] = None

    def active(self, now: float) -> bool:
        return self.start_us <= now < self.end_us


@dataclass(frozen=True)
class FaultPlan:
    """A scripted timeline of fabric imperfections (plus the fate seed)."""

    link_faults: Tuple[LinkFault, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    gray_nodes: Tuple[GrayNode, ...] = ()
    seed: int = 0

    def __post_init__(self):
        # accept lists for convenience, store tuples (hashable/frozen)
        object.__setattr__(self, "link_faults", tuple(self.link_faults))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "gray_nodes", tuple(self.gray_nodes))

    @property
    def empty(self) -> bool:
        return not (self.link_faults or self.partitions or self.gray_nodes)

    def horizon_us(self) -> float:
        """Latest finite fault-window end — after this the fabric is clean."""
        ends = [f.end_us for f in
                (*self.link_faults, *self.partitions, *self.gray_nodes)
                if f.end_us != _INF]
        return max(ends, default=0.0)

    @staticmethod
    def random(seed: int, n_mns: int, duration_us: float,
               max_loss_bursts: int = 3, max_drop_p: float = 0.05,
               max_dup_p: float = 0.02, max_jitter_us: float = 2.0,
               partition: bool = True, gray: bool = True) -> "FaultPlan":
        """A seeded random campaign: a few loss bursts, at most one
        transient compute↔MN partition, at most one gray node."""
        rng = random.Random(seed)
        links = []
        for _ in range(rng.randint(1, max(1, max_loss_bursts))):
            start = rng.uniform(0.0, 0.7 * duration_us)
            links.append(LinkFault(
                mn_id=rng.choice([None] + list(range(n_mns))),
                drop_p=rng.uniform(0.001, max_drop_p),
                dup_p=rng.uniform(0.0, max_dup_p),
                jitter_us=rng.uniform(0.0, max_jitter_us),
                start_us=start,
                end_us=start + rng.uniform(0.05, 0.4) * duration_us))
        partitions = []
        if partition and rng.random() < 0.8:
            start = rng.uniform(0.1, 0.6) * duration_us
            asym = rng.random() < 0.3
            partitions.append(Partition(
                a=CN, b=rng.randrange(n_mns),
                start_us=start,
                end_us=start + rng.uniform(0.05, 0.25) * duration_us,
                drop_requests=True,
                drop_replies=not asym))
        grays = []
        if gray and rng.random() < 0.5:
            start = rng.uniform(0.0, 0.5) * duration_us
            grays.append(GrayNode(
                mn_id=rng.randrange(n_mns),
                factor=rng.uniform(2.0, 8.0),
                start_us=start,
                end_us=start + rng.uniform(0.1, 0.5) * duration_us))
        return FaultPlan(link_faults=tuple(links),
                         partitions=tuple(partitions),
                         gray_nodes=tuple(grays), seed=seed)


@dataclass(frozen=True)
class Fate:
    """The drawn outcome of one delivery attempt."""

    drop_request: bool = False
    drop_reply: bool = False
    duplicate: bool = False
    request_jitter_us: float = 0.0
    reply_jitter_us: float = 0.0
    backoff_u: float = 0.0      # uniform variate for the retry backoff


_CLEAN_FATE = Fate()


class FaultInjector:
    """Evaluates a :class:`FaultPlan` into per-delivery :class:`Fate`\\ s.

    Installed on a fabric via
    :meth:`repro.core.kvstore.FuseeCluster.install_faults` (or by setting
    ``fabric.injector`` directly for substrate-level tests).
    """

    def __init__(self, plan: FaultPlan, retry: RetryPolicy | None = None):
        self.plan = plan
        self.retry = retry or RetryPolicy()
        self._key = struct.pack(">q", plan.seed & ((1 << 63) - 1))

    # ------------------------------------------------------------ draws
    def _u(self, *parts) -> float:
        """Deterministic uniform in [0, 1) keyed by seed + ``parts``."""
        h = blake2b(repr(parts).encode(), digest_size=8, key=self._key)
        return int.from_bytes(h.digest(), "big") / 2.0 ** 64

    # ------------------------------------------------------------ topology
    @staticmethod
    def _port_match(fault_port: Optional[int],
                    port: Optional[int]) -> bool:
        """Does a fault scoped to ``fault_port`` hit a delivery on
        ``port``?  ``fault_port=None`` hits every port; a port-scoped
        fault never hits a path that has no port (MN↔MN mirrors)."""
        return fault_port is None or fault_port == port

    def cn_partition(self, mn_id: int, now: float,
                     port: Optional[int] = None) -> Tuple[bool, bool]:
        """Active compute↔MN partition state → (drop_request, drop_reply).

        ``port`` is the NIC port the delivery hashed onto; port-scoped
        partitions only bite deliveries on their port.
        """
        drop_req = drop_rep = False
        for p in self.plan.partitions:
            if not p.active(now) or not self._port_match(p.port, port):
                continue
            if p.a == CN and p.b == mn_id:
                drop_req |= p.drop_requests
                drop_rep |= p.drop_replies
            elif p.a == mn_id and p.b == CN:
                drop_req |= p.drop_replies
                drop_rep |= p.drop_requests
        return drop_req, drop_rep

    def mn_reachable(self, src: int, dst: int, now: float) -> bool:
        """Can MN ``src`` currently push traffic to MN ``dst``?"""
        for p in self.plan.partitions:
            if not p.active(now) or p.port is not None:
                continue
            if p.a == src and p.b == dst and p.drop_requests:
                return False
            if p.a == dst and p.b == src and p.drop_replies:
                return False
        return True

    def service_factor(self, mn_id: int, now: float,
                       port: Optional[int] = None) -> float:
        factor = 1.0
        for g in self.plan.gray_nodes:
            if g.mn_id == mn_id and g.active(now) \
                    and self._port_match(g.port, port):
                factor *= g.factor
        return factor

    # ------------------------------------------------------------ fates
    def _active_link_faults(self, mn_id: int, now: float,
                            port: Optional[int] = None
                            ) -> Iterable[Tuple[int, LinkFault]]:
        for i, lf in enumerate(self.plan.link_faults):
            if (lf.mn_id is None or lf.mn_id == mn_id) and lf.active(now) \
                    and self._port_match(lf.port, port):
                yield i, lf

    def fate(self, ident: tuple, mn_id: int, attempt: int,
             now: float, port: Optional[int] = None) -> Fate:
        """Draw the fate of delivery attempt ``attempt`` of message
        ``ident`` to/from ``mn_id`` starting at sim time ``now``, on
        NIC port ``port`` of the target (None on single-queue paths).

        ``port`` only *scopes* which faults apply — it is never mixed
        into the hash keys, so single-port campaigns draw byte-identical
        fates with or without the multi-queue machinery.
        """
        drop_req, drop_rep = self.cn_partition(mn_id, now, port)
        dup = False
        jit_req = jit_rep = 0.0
        for i, lf in self._active_link_faults(mn_id, now, port):
            if lf.drop_p > 0.0:
                drop_req = drop_req or (
                    self._u("dq", i, mn_id, ident, attempt, now) < lf.drop_p)
                drop_rep = drop_rep or (
                    self._u("dr", i, mn_id, ident, attempt, now) < lf.drop_p)
            if lf.dup_p > 0.0:
                dup = dup or (
                    self._u("dup", i, mn_id, ident, attempt, now) < lf.dup_p)
            if lf.jitter_us > 0.0:
                jit_req += lf.jitter_us * self._u("jq", i, mn_id, ident,
                                                  attempt, now)
                jit_rep += lf.jitter_us * self._u("jr", i, mn_id, ident,
                                                  attempt, now)
        if not (drop_req or drop_rep or dup or jit_req or jit_rep):
            return _CLEAN_FATE
        return Fate(drop_request=drop_req, drop_reply=drop_rep,
                    duplicate=dup, request_jitter_us=jit_req,
                    reply_jitter_us=jit_rep,
                    backoff_u=self._u("bo", mn_id, ident, attempt, now))
