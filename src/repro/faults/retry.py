"""Transport-level retry/backoff policy and typed fault errors.

The policy mirrors what a reliable-connection RNIC does in hardware:
each verb (and each RPC) gets a per-attempt timeout; a lost request or
reply triggers a retransmission after a capped exponential backoff with
jitter.  Retransmissions carry the *same* idempotency token (the PSN
analogue), so the responder deduplicates re-deliveries and a retry after
a dropped reply never double-applies — see :mod:`repro.faults.model` and
the fault-aware paths in :mod:`repro.rdma.fabric`.

All draws are externalised: :meth:`RetryPolicy.backoff_us` takes the
uniform variate ``u`` as an argument, so the schedule is a pure function
of ``(attempt, u)`` — deterministic, unit-testable, and replayable under
schedule exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "NO_RETRY", "FaultError", "RetriesExhausted",
           "backoff_wait"]


def backoff_wait(env, duration_us: float, label: str = "retry"):
    """A timeout attributed as backoff time in latency breakdowns.

    Every deliberate retry/timeout sleep (transport retransmission waits,
    client-level retry pauses, master-RPC re-sends) should yield this
    instead of a bare ``env.timeout`` so the profiler
    (:mod:`repro.obs.profile`) attributes the sleep explicitly rather
    than leaving it in the client-compute residual.  Without a profiler
    installed this is exactly ``env.timeout(duration_us)``.
    """
    return env.attributed_timeout(duration_us, "backoff", label)


class FaultError(Exception):
    """Base class for typed failures surfaced by the fault layer."""


class RetriesExhausted(FaultError):
    """An operation ran out of transport retries (link down too long)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-verb / per-RPC timeout and capped exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=1`` disables
    retries entirely (one shot, then a typed timeout), which is how the
    fault campaigns prove the injector actually injects.
    """

    max_attempts: int = 6
    verb_timeout_us: float = 12.0   # one-sided verbs: ~SLA of a clean RTT
    rpc_timeout_us: float = 60.0    # RPCs queue on the weak MN CPU
    backoff_base_us: float = 2.0
    backoff_cap_us: float = 64.0
    jitter_frac: float = 0.5        # fraction of the backoff jittered away

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be in [0, 1]")

    def backoff_us(self, attempt: int, u: float = 0.0) -> float:
        """Backoff before retransmitting after failed attempt ``attempt``.

        ``attempt`` is 1-based; ``u`` in [0, 1) is the jitter variate.
        Deterministic: the same ``(attempt, u)`` always yields the same
        delay, and the result never exceeds ``backoff_cap_us``.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = self.backoff_base_us * (2.0 ** (attempt - 1))
        capped = min(raw, self.backoff_cap_us)
        return capped * (1.0 - self.jitter_frac * u)

    def timeout_us(self, rpc: bool) -> float:
        return self.rpc_timeout_us if rpc else self.verb_timeout_us

    def budget_us(self, rpc: bool = False) -> float:
        """Worst-case time spent before giving up (timeouts + backoffs)."""
        timeout = self.timeout_us(rpc)
        total = self.max_attempts * timeout
        for attempt in range(1, self.max_attempts):
            total += self.backoff_us(attempt, 0.0)
        return total


#: One shot, no retransmissions — used to demonstrate that campaigns fail
#: without the resilience layer.
NO_RETRY = RetryPolicy(max_attempts=1)
