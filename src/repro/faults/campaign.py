"""Fault campaigns: scripted workloads on an imperfect fabric.

A campaign stands up a small FUSEE cluster, preloads a key set, installs
a :class:`~repro.faults.model.FaultPlan`, and drives a 3-client YCSB-A
style workload (reads + updates on shared keys, plus per-client
insert/delete churn that exercises ALLOC/FREE).  After the fault horizon
the fabric heals, the clients run their background maintenance, and the
campaign verifies the end state:

* **zero hung operations** — every client process ran to completion and
  every traced span ended (timeouts surface as typed failures, never
  hangs);
* **ALLOC/FREE balance** — the blocks each MN handed out and has not
  been returned exactly match the blocks some client owns.  A retried
  ALLOC whose first reply was lost only balances because the MN answers
  the retry from its idempotency-token cache; a double-applied ALLOC
  leaks a block and trips this check;
* **KV linearizability** — the traced operation history (including
  typed failures, which become *pending* operations the checker may
  discard) linearizes against map semantics via
  :func:`repro.core.linearizability.check_kv_linearizable`.

``python -m repro faults`` is the CLI front-end; ``tests/test_faults.py``
asserts the acceptance campaign both with retries (clean) and without
(demonstrably failing).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.addressing import RegionConfig
from ..core.client import ClientConfig
from ..core.kvstore import ClusterConfig, FuseeCluster
from ..core.race import RaceConfig
from ..obs import Tracer
from .model import CN, FaultPlan, GrayNode, LinkFault, Partition
from .retry import NO_RETRY, RetryPolicy

__all__ = ["CAMPAIGNS", "CampaignReport", "run_campaign", "campaign_plan",
           "scenario_fault_plan"]


# --------------------------------------------------------------------------
# Named campaigns.  Windows are tuned so the default retry budgets cover
# them (a partition shorter than the verb retry span never exhausts an
# op's retries), keeping the with-retries runs failure-free.
# --------------------------------------------------------------------------
def _loss_plan(n_mns: int) -> FaultPlan:
    return FaultPlan(link_faults=[
        LinkFault(drop_p=0.01, dup_p=0.01, jitter_us=1.0,
                  start_us=100.0, end_us=6000.0)])


def _partition_heal_plan(n_mns: int) -> FaultPlan:
    return FaultPlan(
        link_faults=[LinkFault(drop_p=0.005, start_us=100.0,
                               end_us=6000.0)],
        partitions=[Partition(a=CN, b=min(1, n_mns - 1),
                              start_us=800.0, end_us=950.0)])


def _gray_plan(n_mns: int) -> FaultPlan:
    return FaultPlan(gray_nodes=[
        GrayNode(mn_id=0, factor=6.0, start_us=300.0, end_us=2200.0)])


def _mixed_plan(n_mns: int) -> FaultPlan:
    """The acceptance campaign: 1% loss + duplication + a transient
    client<->MN partition + a gray node."""
    return FaultPlan(
        link_faults=[LinkFault(drop_p=0.01, dup_p=0.01, jitter_us=0.5,
                               start_us=100.0, end_us=6000.0)],
        partitions=[Partition(a=CN, b=min(1, n_mns - 1),
                              start_us=900.0, end_us=1050.0)],
        gray_nodes=[GrayNode(mn_id=0, factor=4.0,
                             start_us=1500.0, end_us=2400.0)])


CAMPAIGNS = {
    "loss": _loss_plan,
    "partition-heal": _partition_heal_plan,
    "gray": _gray_plan,
    "mixed": _mixed_plan,
}


def scenario_fault_plan(scenario, seed: int = 0) -> FaultPlan:
    """Translate a scenario's declarative fault windows into a plan.

    :class:`repro.workloads.scenarios.FaultEvent` times are fractions
    of the scenario duration; campaign traffic starts right after
    ``install_faults``, so scaling by ``duration_us`` keeps a compound
    scenario's fault windows aligned with its load events at any trim.
    """
    duration = scenario.duration_us
    link_faults: List[LinkFault] = []
    partitions: List[Partition] = []
    gray_nodes: List[GrayNode] = []
    for event in scenario.faults:
        start = event.start_frac * duration
        end = event.end_frac * duration
        if event.kind == "gray":
            gray_nodes.append(GrayNode(mn_id=event.mn_id,
                                       factor=event.factor,
                                       start_us=start, end_us=end))
        elif event.kind == "loss":
            link_faults.append(LinkFault(drop_p=event.drop_p,
                                         dup_p=event.dup_p,
                                         jitter_us=event.jitter_us,
                                         start_us=start, end_us=end))
        else:
            partitions.append(Partition(a=CN, b=event.mn_id,
                                        start_us=start, end_us=end))
    return FaultPlan(link_faults=link_faults, partitions=partitions,
                     gray_nodes=gray_nodes, seed=seed)


def campaign_plan(name: str, n_mns: int, seed: int = 0) -> FaultPlan:
    """Resolve a campaign name to its plan (``random`` is seeded)."""
    if name == "random":
        plan = FaultPlan.random(seed, n_mns, duration_us=5000.0)
    else:
        try:
            plan = CAMPAIGNS[name](n_mns)
        except KeyError:
            known = ", ".join(sorted([*CAMPAIGNS, "random"]))
            raise ValueError(f"unknown campaign {name!r} (one of: {known})")
    if plan.seed != seed:
        plan = FaultPlan(link_faults=plan.link_faults,
                         partitions=plan.partitions,
                         gray_nodes=plan.gray_nodes, seed=seed)
    return plan


# --------------------------------------------------------------------------
# Report
# --------------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Everything a campaign observed, plus the verdicts."""

    name: str
    seed: int
    retries: bool
    plan: FaultPlan
    sim_time_us: float = 0.0
    ops_total: int = 0
    ops_ok: int = 0
    ops_failed: int = 0            # typed failures (span.error set)
    failures_by_error: Dict[str, int] = field(default_factory=dict)
    hung_ops: int = 0
    exceptions: List[str] = field(default_factory=list)
    fabric: Dict[str, int] = field(default_factory=dict)
    master_dedup_hits: int = 0
    blocks_outstanding: int = 0    # granted by MNs and not returned
    blocks_owned: int = 0          # adopted and still held by clients
    linearizable: bool = True
    violation: Optional[str] = None
    # Gray-failure detector verdict (repro.obs.detect.detector_verdict)
    # and monitor health report; None when the campaign ran unmonitored.
    detector: Optional[dict] = None
    health: Optional[dict] = None

    @property
    def balance_ok(self) -> bool:
        return self.blocks_outstanding == self.blocks_owned

    @property
    def detector_ok(self) -> bool:
        """Monitored campaigns also require the detector verdict: every
        seeded gray/port fault flagged, no unexplained flags."""
        return self.detector is None or bool(self.detector.get("ok"))

    @property
    def sound(self) -> bool:
        """The safety verdict: no hangs, no leaks, linearizable."""
        return (self.hung_ops == 0 and not self.exceptions
                and self.balance_ok and self.linearizable
                and self.detector_ok)

    @property
    def clean(self) -> bool:
        """Soundness plus liveness: every operation also succeeded."""
        return self.sound and self.ops_failed == 0

    def render(self) -> str:
        f = self.fabric
        lines = [
            f"campaign {self.name!r} seed={self.seed} "
            f"retries={'on' if self.retries else 'off'}",
            f"  plan: {len(self.plan.link_faults)} link fault(s), "
            f"{len(self.plan.partitions)} partition(s), "
            f"{len(self.plan.gray_nodes)} gray node(s), "
            f"horizon {self.plan.horizon_us():g}us",
            f"  sim time: {self.sim_time_us:.1f}us",
            f"  ops: {self.ops_total} total, {self.ops_ok} ok, "
            f"{self.ops_failed} typed failures, {self.hung_ops} hung",
        ]
        for error, count in sorted(self.failures_by_error.items()):
            lines.append(f"    failure {error!r}: {count}")
        lines.append(
            f"  fabric: {f.get('dropped_requests', 0)} req dropped, "
            f"{f.get('dropped_replies', 0)} replies dropped, "
            f"{f.get('duplicates', 0)} duplicated")
        lines.append(
            f"  retries: {f.get('transport_retries', 0)} verb, "
            f"{f.get('rpc_retries', 0)} rpc; timeouts: "
            f"{f.get('verb_timeouts', 0)} verb, "
            f"{f.get('rpc_timeouts', 0)} rpc")
        lines.append(
            f"  dedup hits: {f.get('dedup_hits', 0)} verb, "
            f"{f.get('rpc_dedup_hits', 0)} MN rpc, "
            f"{self.master_dedup_hits} master rpc")
        lines.append(
            f"  alloc balance: {self.blocks_outstanding} outstanding at "
            f"MNs vs {self.blocks_owned} owned by clients "
            f"[{'ok' if self.balance_ok else 'LEAK'}]")
        lines.append(
            "  linearizable: " + ("yes" if self.linearizable else
                                  f"NO\n{self.violation}"))
        if self.detector is not None:
            det = self.detector
            lines.append(
                f"  gray detector: {len(det['caught'])}/{det['expected']} "
                f"expected fault(s) caught, {len(det['missed'])} missed, "
                f"{len(det['unexplained'])} unexplained flag(s) "
                f"[{'ok' if det['ok'] else 'FAIL'}]")
            for row in det["caught"]:
                lines.append(
                    f"    caught {row['fault']} on mn{row['mn']}"
                    + (f".p{row['port']}" if row["port"] is not None else "")
                    + f" via {row['flag_scope']} after "
                      f"{row['latency_windows']} window(s)")
        if self.exceptions:
            lines.append(f"  exceptions: {self.exceptions}")
        lines.append(f"  verdict: {'CLEAN' if self.clean else 'sound' if self.sound else 'UNSOUND'}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# The campaign driver
# --------------------------------------------------------------------------
def _small_cluster(n_mns: int, tracer=None, nic_ports: int = 1,
                   rpc_shards: int = 1,
                   replication: str = "snapshot",
                   index_replication: int = 1) -> FuseeCluster:
    config = ClusterConfig(
        n_memory_nodes=n_mns,
        replication_factor=min(2, n_mns),
        index_replication=min(index_replication, n_mns),
        region=RegionConfig(region_size=1 << 18, block_size=1 << 13),
        race=RaceConfig(n_subtables=4, n_groups=32, slots_per_bucket=7),
        client=ClientConfig(replication_mode=replication),
        nic_ports=nic_ports,
        rpc_shards=rpc_shards,
    )
    return FuseeCluster(config, tracer=tracer)


def run_campaign(name: str = "mixed", seed: int = 0, retries: bool = True,
                 clients: int = 3, ops_per_client: int = 120,
                 preload: int = 32, value_size: int = 48,
                 retry: Optional[RetryPolicy] = None,
                 plan: Optional[FaultPlan] = None,
                 n_mns: int = 3, nic_ports: int = 1,
                 rpc_shards: int = 1,
                 replication: str = "snapshot",
                 index_replication: int = 1,
                 monitor_config=None,
                 slos=(),
                 detect_windows: int = 3,
                 scenario=None,
                 scenario_overrides: Optional[dict] = None
                 ) -> CampaignReport:
    """Run one fault campaign and verify its end state.

    ``scenario`` (a :class:`repro.workloads.scenarios.Scenario` or a
    registry name; ``scenario_overrides`` are factory knobs for the
    name form) swaps the scripted YCSB-A loop for the scenario's paced,
    seeded arrival streams: the preload set becomes the scenario's
    tenant key spaces, the client count the scenario's, and — for
    compound scenarios carrying fault events — the fault plan is
    derived from the scenario itself (:func:`scenario_fault_plan`).
    Pure-load scenarios run under the named campaign plan, so *every*
    shipped scenario gets a fault-campaign + linearizability verdict,
    replayable from ``(scenario, seed)``.

    ``retries=False`` swaps in :data:`~repro.faults.retry.NO_RETRY` —
    the negative control showing the resilience layer is load-bearing.
    An explicit ``plan`` overrides the named one (used by the Hypothesis
    property tests).  ``nic_ports``/``rpc_shards`` size each MN's
    multi-queue NIC and sharded RPC service, so campaigns can target
    port-scoped faults (``Partition(port=...)`` etc.).  ``replication``
    selects the slot replication strategy the clients run under faults
    ("snapshot" | "sequential" | "swarm"), and ``index_replication`` the
    index replica count (capped at ``n_mns``) — raise it so multi-replica
    protocol machinery (broadcasts, fixups, validated reads) actually
    runs under the fault plan.

    ``monitor_config`` (a :class:`repro.obs.MonitorConfig`) attaches the
    online monitor for the faulted window; the campaign then also
    scores the gray-failure detector against the seeded plan — every
    gray node / port-scoped fault must be flagged within
    ``detect_windows`` windows of onset with no unexplained flags — and
    folds that verdict into ``CampaignReport.sound``.
    """
    ambient = name  # the named plan pure-load scenarios run under
    if scenario is not None:
        from ..workloads.scenarios import get_scenario
        if isinstance(scenario, str):
            scenario = get_scenario(scenario, seed=seed,
                                    **(scenario_overrides or {}))
        clients = scenario.n_clients
        name = f"scenario:{scenario.name}"
        if plan is None and scenario.faults:
            plan = scenario_fault_plan(scenario, seed)
    if plan is None:
        plan = campaign_plan(ambient, n_mns, seed)
    if retry is None:
        retry = RetryPolicy() if retries else NO_RETRY
    cluster = _small_cluster(n_mns, nic_ports=nic_ports,
                             rpc_shards=rpc_shards,
                             replication=replication,
                             index_replication=index_replication)
    env = cluster.env

    # ---- preload on a clean fabric (not part of the checked history)
    loader = cluster.new_client()
    rng = random.Random(seed ^ 0x5EED)
    if scenario is not None:
        preload_items = scenario.preload_items()
    else:
        preload_items = [
            (f"k{i:03d}".encode(),
             f"v0-{i:03d}".encode().ljust(value_size, b"."))
            for i in range(preload)]
    initial: Dict[bytes, bytes] = {}
    for key, value in preload_items:
        result = env.run(until=env.process(loader.insert(key, value)))
        if not result.ok:
            raise RuntimeError(f"preload of {key!r} failed: {result}")
        initial[key] = value
    shared_keys = sorted(initial)

    tracer = Tracer(env=env)
    cluster.attach_tracer(tracer)
    monitor = None
    if monitor_config is not None:
        from ..obs import Monitor
        monitor = Monitor(env, cluster.fabric, config=monitor_config,
                          slos=slos, race=cluster.race)
        cluster.attach_monitor(monitor)
    report = CampaignReport(name=name, seed=seed, retries=retries, plan=plan)
    free_before = {mn: alloc.free_block_count
                   for mn, alloc in cluster.mn_allocators.items()}
    owned_before = sum(len(c.allocator.owned_blocks())
                      for c in cluster.clients)
    cluster.install_faults(plan, retry=retry)

    # ---- the workload: YCSB-A on shared keys + scratch-key churn
    def client_loop(client, cid: int):
        crng = random.Random((seed << 8) ^ cid)
        scratch_live: Dict[bytes, bytes] = {}
        for i in range(ops_per_client):
            roll = crng.random()
            try:
                if roll < 0.10:
                    key = f"s{cid}-{crng.randrange(3)}".encode()
                    if key in scratch_live:
                        result = yield from client.delete(key)
                        if result.ok:
                            scratch_live.pop(key)
                    else:
                        value = f"s{cid}-{i}".encode().ljust(value_size,
                                                             b".")
                        result = yield from client.insert(key, value)
                        if result.ok:
                            scratch_live[key] = value
                elif roll < 0.55:
                    yield from client.search(crng.choice(shared_keys))
                else:
                    key = crng.choice(shared_keys)
                    value = f"v{cid}-{i}".encode().ljust(value_size, b".")
                    yield from client.update(key, value)
            except Exception as exc:  # noqa: BLE001 - campaign verdict data
                report.exceptions.append(
                    f"client {cid} op {i}: {type(exc).__name__}: {exc}")
                return

    # Paced scenario loops: sleep to each seeded arrival time, then run
    # the op; late arrivals (client still mid-op under faults) run
    # immediately, so fault-stretched latency never drops arrivals.
    traffic_start = env.now

    def scenario_loop(client, cid: int):
        for arrival in scenario.client_stream(cid):
            at = traffic_start + arrival.at_us
            if at > env.now:
                yield env.timeout(at - env.now)
            try:
                if arrival.op == "search":
                    yield from client.search(arrival.key)
                elif arrival.op == "update":
                    yield from client.update(arrival.key, arrival.value)
                elif arrival.op == "insert":
                    yield from client.insert(arrival.key, arrival.value)
                else:
                    yield from client.delete(arrival.key)
            except Exception as exc:  # noqa: BLE001 - campaign verdict data
                report.exceptions.append(
                    f"client {cid} {arrival.op} @{arrival.at_us:.1f}: "
                    f"{type(exc).__name__}: {exc}")
                return

    loop = client_loop if scenario is None else scenario_loop
    workers = [cluster.new_client() for _ in range(clients)]
    procs = [env.process(loop(client, idx), name=f"campaign-{idx}")
             for idx, client in enumerate(workers)]

    # Bounded runs: extend past the fault horizon until every client loop
    # finishes (or provably never will — those are the hung ops).
    if scenario is not None:
        expected_ops = scenario.schedule.integral(0.0, scenario.duration_us)
        deadline = max(plan.horizon_us(), scenario.duration_us, 1000.0) \
            + 100.0 * (expected_ops + clients)
    else:
        deadline = max(plan.horizon_us(), 1000.0) \
            + 100.0 * clients * ops_per_client
    for _round in range(4):
        env.run(until=env.now + deadline)
        if all(p.triggered for p in procs):
            break
    report.hung_ops = sum(1 for p in procs if not p.triggered)

    # ---- heal, then run background maintenance on a clean fabric
    cluster.clear_faults()
    if report.hung_ops == 0:
        for client in (*workers, loader):
            env.run(until=env.process(
                client.maintenance(release_blocks=True)))
    report.sim_time_us = env.now

    # ---- verdicts
    spans = [s for s in tracer.spans
             if s.op in ("search", "insert", "update", "delete")]

    if monitor is not None:
        from ..obs import detector_verdict
        report.health = monitor.finish()
        if monitor.detector is not None:
            # A fault seeded after the last op completes is invisible to
            # any comparative detector — exclude it from "expected".
            traffic_end = max((s.end_us for s in spans
                               if s.end_us is not None), default=None)
            report.detector = detector_verdict(
                plan, monitor.detector.flags, monitor.width,
                windows=detect_windows, traffic_end_us=traffic_end)

    report.ops_total = len(spans)
    for span in spans:
        if span.end_us is None:
            report.hung_ops += 1
        elif span.error is not None:
            report.ops_failed += 1
            report.failures_by_error[span.error] = \
                report.failures_by_error.get(span.error, 0) + 1
        else:
            report.ops_ok += 1
    report.fabric = dataclasses.asdict(cluster.fabric.stats.snapshot())
    report.master_dedup_hits = cluster.master.rpc_dedup_hits

    report.blocks_outstanding = owned_before + sum(
        free_before[mn] - alloc.free_block_count
        for mn, alloc in cluster.mn_allocators.items())
    report.blocks_owned = sum(len(c.allocator.owned_blocks())
                              for c in cluster.clients)

    from ..check.history import kv_ops_from_spans
    from ..core.linearizability import check_kv_linearizable
    violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans),
                                      initial=initial)
    report.linearizable = violation is None
    report.violation = None if violation is None else str(violation)
    return report
