"""Deterministic, seeded fault injection for the simulated fabric.

Layers network imperfections (loss, duplication, jitter, partitions,
gray nodes) onto the DES fabric and gives clients/master a transport
retry/backoff + idempotency-token resilience layer, so FUSEE's
availability story (§5) can be exercised beyond crash-stop failures.

See :doc:`docs/faults` and ``python -m repro faults``.
"""

from .campaign import CAMPAIGNS, CampaignReport, run_campaign
from .model import (
    CN,
    Fate,
    FaultInjector,
    FaultPlan,
    GrayNode,
    LinkFault,
    Partition,
    verb_ident,
)
from .retry import NO_RETRY, FaultError, RetriesExhausted, RetryPolicy

__all__ = [
    "CAMPAIGNS",
    "CampaignReport",
    "CN",
    "Fate",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "GrayNode",
    "LinkFault",
    "NO_RETRY",
    "Partition",
    "RetriesExhausted",
    "RetryPolicy",
    "run_campaign",
    "verb_ident",
]
