"""Simulated one-sided RDMA substrate (verbs, memory nodes, fabric)."""

from .fabric import (
    Fabric,
    FabricConfig,
    FabricStats,
    PORT_AFFINITY_MODES,
    QpFabric,
)
from .memory_node import MemoryNode
from .verbs import (
    FAIL,
    TIMEOUT,
    CasOp,
    Completion,
    FaaOp,
    ReadOp,
    Verb,
    WriteOp,
    WORD,
    op_bytes,
)

__all__ = [
    "Fabric",
    "FabricConfig",
    "FabricStats",
    "PORT_AFFINITY_MODES",
    "QpFabric",
    "MemoryNode",
    "FAIL",
    "TIMEOUT",
    "CasOp",
    "Completion",
    "FaaOp",
    "ReadOp",
    "Verb",
    "WriteOp",
    "WORD",
    "op_bytes",
]
