"""A memory node (MN): byte-addressable memory plus a weak CPU.

Each MN owns one ``bytearray`` of registered memory, ``num_ports``
rx/tx RNIC port pairs (each a serialisation line — see
:class:`repro.sim.NicPort`), and a small CPU pool (1-2 cores per §2.1)
that serves memory-management RPCs (ALLOC/FREE) only.  All data-path
accesses are one-sided: the CPU is never involved.

Real RNICs serve RoCE traffic over many hardware queues; ``num_ports``
models that multi-queue capacity, with the fabric hashing each client
QP onto a port (``FabricConfig.port_affinity``).  ``rpc_shards``
likewise splits the CPU pool into independent per-shard
:class:`~repro.sim.Resource`\\ s so ALLOC/metadata RPCs from different
clients stop serialising behind one server loop.  Both default to 1,
which reproduces the single-queue node byte-for-byte (same labels,
same timing).

Crash-stop failures (§5.1): after :meth:`crash`, every verb and RPC
completes with :data:`~repro.rdma.verbs.FAIL`.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..sim import Environment, NicPort, NicProfile, Resource
from .verbs import WORD, CasOp, FaaOp, ReadOp, WriteOp

__all__ = ["MemoryNode", "MASK64"]

MASK64 = (1 << 64) - 1

_U64 = struct.Struct(">Q")

# An RPC handler maps a payload dict to (reply dict, cpu service time in us).
RpcHandler = Callable[[dict], Tuple[dict, float]]


class MemoryNode:
    """One node of the disaggregated memory pool."""

    def __init__(self, env: Environment, mn_id: int, capacity: int,
                 nic_profile: NicProfile | None = None,
                 cpu_cores: int = 2,
                 rpc_service_us: float = 2.0,
                 num_ports: int = 1,
                 rpc_shards: int = 1):
        if num_ports < 1:
            raise ValueError("num_ports must be >= 1")
        if rpc_shards < 1:
            raise ValueError("rpc_shards must be >= 1")
        self.env = env
        self.mn_id = mn_id
        self.capacity = capacity
        self.memory = bytearray(capacity)
        # Read path: one copy instead of two (bytearray slice + bytes).
        # The buffer is never resized (length-preserving slice writes and
        # pack_into only), so a persistent exporting view is safe.
        self._view = memoryview(self.memory)
        profile = nic_profile or NicProfile()
        # Full-duplex RNIC: inbound (writes, atomics, RPC) and outbound
        # (read payloads) directions serialize independently, as on real
        # InfiniBand links.  With num_ports > 1 each direction has that
        # many independent serialisation lines (hardware queues); the
        # single-port labels keep their historical names so profiles and
        # metrics stay byte-identical at the default.
        def _label(stem: str, index: int) -> str:
            return stem if num_ports == 1 else f"{stem}.p{index}"

        self.num_ports = num_ports
        self.rx_ports = [NicPort(env, profile,
                                 label=_label(f"mn{mn_id}.nic_rx", i))
                         for i in range(num_ports)]
        self.tx_ports = [NicPort(env, profile,
                                 label=_label(f"mn{mn_id}.nic_tx", i))
                         for i in range(num_ports)]
        self.nic = self.rx_ports[0]      # port-0 aliases: single-queue view
        self.nic_tx = self.tx_ports[0]
        # RPC CPU shards: one pooled Resource at the default, else
        # rpc_shards independent serving loops splitting the cores (each
        # shard keeps at least one core, mirroring a thread-per-shard
        # server on a 1-2 core MN).
        self.rpc_shards = rpc_shards
        if rpc_shards == 1:
            self.cpus = [Resource(env, capacity=cpu_cores,
                                  label=f"mn{mn_id}.cpu")]
        else:
            per_shard = max(1, cpu_cores // rpc_shards)
            self.cpus = [Resource(env, capacity=per_shard,
                                  label=f"mn{mn_id}.cpu.s{i}")
                         for i in range(rpc_shards)]
        self.cpu = self.cpus[0]
        self.rpc_service_us = rpc_service_us
        self.crashed = False
        self._rpc_handlers: Dict[str, RpcHandler] = {}
        # simple bump allocator for carving regions at cluster-build time
        self._carve_cursor = 0
        # Transport-level idempotency (the RNIC's PSN dedup, emulated by
        # token): result caches consulted by the fault-aware fabric paths
        # so a retransmission after a lost reply is answered from the
        # cache instead of re-executing — a retried CAS/FAA can never
        # double-apply and a retried ALLOC/FREE RPC can never re-run.
        self._verb_results: "OrderedDict[int, tuple]" = OrderedDict()
        self._rpc_replies: "OrderedDict[int, tuple]" = OrderedDict()
        self.dedup_capacity = 8192

    # -- cluster-build-time helpers ---------------------------------------
    def carve(self, nbytes: int, align: int = WORD) -> int:
        """Reserve ``nbytes`` of this node's memory; returns the offset.

        Used only while laying out the cluster (index replicas, region
        tables, ...), never on the data path.
        """
        start = (self._carve_cursor + align - 1) // align * align
        if start + nbytes > self.capacity:
            raise MemoryError(
                f"MN{self.mn_id}: carve of {nbytes} bytes exceeds capacity "
                f"({start + nbytes} > {self.capacity})")
        self._carve_cursor = start + nbytes
        return start

    # -- multi-queue helpers ------------------------------------------------
    def tx_backlog(self, now: float) -> float:
        """Queued tx service summed over all ports (µs of work).

        The quantity read-spreading ranks replicas by; identical to
        ``nic_tx.backlog(now)`` on a single-port node.
        """
        if self.num_ports == 1:
            return self.nic_tx.backlog(now)
        return sum(port.backlog(now) for port in self.tx_ports)

    def rx_backlog(self, now: float) -> float:
        """Queued rx service summed over all ports (µs of work)."""
        if self.num_ports == 1:
            return self.nic.backlog(now)
        return sum(port.backlog(now) for port in self.rx_ports)

    @property
    def cpu_capacity(self) -> int:
        """Total RPC-serving cores across all shards."""
        return sum(shard.capacity for shard in self.cpus)

    # -- failure injection --------------------------------------------------
    def crash(self) -> None:
        # The liveness flag is shared state every verb's outcome depends
        # on; footprint it so schedule exploration never prunes a
        # reordering across a crash (the fabric notes the matching read).
        self.env.note_access(("crash", self.mn_id), True)
        self.crashed = True

    def recover(self) -> None:
        """Bring the node back (used by elasticity / reconfiguration tests)."""
        self.env.note_access(("crash", self.mn_id), True)
        self.crashed = False

    # -- verb execution (called by the fabric at the serialisation point) ---
    def apply(self, op):
        """Atomically apply a verb to local memory; returns its raw result."""
        noting = self.env._access_hook is not None
        cls = op.__class__
        if cls is ReadOp:
            addr = op.addr
            length = op.length
            if addr < 0 or addr + length > self.capacity:
                self._check_range(addr, length)
            if noting:
                self._note_words(addr, length, write=False)
            return bytes(self._view[addr:addr + length])
        if cls is WriteOp:
            addr = op.addr
            data = op.data
            nbytes = len(data)
            if addr < 0 or addr + nbytes > self.capacity:
                self._check_range(addr, nbytes)
            if noting:
                self._note_words(addr, nbytes, write=True)
            self.memory[addr:addr + nbytes] = data
            return None
        if cls is CasOp:
            self._check_range(op.addr, WORD)
            if noting:
                self._note_words(op.addr, WORD, write=True)
            old = _U64.unpack_from(self.memory, op.addr)[0]
            if old == op.expected & MASK64:
                _U64.pack_into(self.memory, op.addr, op.swap & MASK64)
            return old
        if cls is FaaOp:
            self._check_range(op.addr, WORD)
            if noting:
                self._note_words(op.addr, WORD, write=True)
            old = _U64.unpack_from(self.memory, op.addr)[0]
            _U64.pack_into(self.memory, op.addr, (old + op.delta) & MASK64)
            return old
        raise TypeError(f"unknown verb {op!r}")

    def apply_once(self, token: int, op) -> Tuple[object, bool]:
        """Apply a verb at most once per idempotency ``token``.

        Returns ``(value, deduplicated)``.  A re-delivery with a token
        already seen (a retransmission, or a fabric-duplicated request)
        returns the cached first result without touching memory — the
        PSN-dedup behaviour of a reliable-connection RNIC.
        """
        hit = self._verb_results.get(token)
        if hit is not None:
            return hit[0], True
        value = self.apply(op)
        self._verb_results[token] = (value,)
        if len(self._verb_results) > self.dedup_capacity:
            self._verb_results.popitem(last=False)
        return value, False

    def rpc_reply_cached(self, token: int) -> Optional[tuple]:
        """``(reply,)`` if an RPC with this token already ran, else None."""
        return self._rpc_replies.get(token)

    def cache_rpc_reply(self, token: int, reply: dict) -> None:
        self._rpc_replies[token] = (reply,)
        if len(self._rpc_replies) > self.dedup_capacity:
            self._rpc_replies.popitem(last=False)

    def _note_words(self, addr: int, length: int, write: bool) -> None:
        """Report touched 8-byte words to the schedule explorer, if any."""
        if self.env._access_hook is None or length <= 0:
            return
        note = self.env.note_access
        for word in range(addr // WORD, (addr + length - 1) // WORD + 1):
            note(("m", self.mn_id, word), write)

    def read_word(self, addr: int) -> int:
        """Debug/recovery helper: read an 8-byte word without the fabric."""
        self._check_range(addr, WORD)
        return _U64.unpack_from(self.memory, addr)[0]

    def write_word(self, addr: int, value: int) -> None:
        """Debug/bootstrap helper: write an 8-byte word without the fabric."""
        self._check_range(addr, WORD)
        _U64.pack_into(self.memory, addr, value & MASK64)

    # -- RPC plumbing ---------------------------------------------------------
    def register_rpc(self, name: str, handler: RpcHandler) -> None:
        self._rpc_handlers[name] = handler

    def rpc_handler(self, name: str) -> RpcHandler:
        return self._rpc_handlers[name]

    def _check_range(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.capacity:
            raise IndexError(
                f"MN{self.mn_id}: access [{addr}, {addr + length}) outside "
                f"capacity {self.capacity}")

    def __repr__(self) -> str:  # pragma: no cover
        state = "crashed" if self.crashed else "up"
        return f"<MemoryNode {self.mn_id} {state} {self.capacity}B>"
