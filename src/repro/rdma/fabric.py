"""The simulated RDMA fabric connecting compute nodes to memory nodes.

The fabric is where the reproduction's performance model lives:

* A **doorbell batch** (one *phase* of Fig. 9) is a list of verbs posted
  together.  Verbs inside a batch run in parallel across memory nodes and
  in posted order within a node; the batch completes when the slowest verb
  completes — one network round trip plus NIC queueing, exactly the
  "each phase only incurs 1 network RTT" behaviour of §4.6.
* Each memory node's RNIC is a serialisation line
  (:class:`repro.sim.NicPort`); per-verb service time is a fixed overhead
  (larger for atomics, per Kalia et al. [30]) plus payload bytes over the
  link bandwidth.  Saturating this line produces the throughput plateaus of
  Figures 12-14.
* Verbs are applied to memory **at post time** in post order.  Because
  propagation delay is uniform and NIC queues are FIFO, post order equals
  hardware serialisation order, and every verb's effect falls inside its
  invocation-completion window — so simulated executions remain
  linearizable exactly like the hardware ones.
* RPCs (memory ALLOC/FREE, Clover metadata operations) traverse the same
  NIC and then occupy an MN/server CPU core, modelling the weak compute
  power of the memory pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence

from ..sim import Environment, Event
from .memory_node import MemoryNode
from .verbs import (
    FAIL,
    TIMEOUT,
    CasOp,
    Completion,
    FaaOp,
    ReadOp,
    Verb,
    WriteOp,
    op_bytes,
    verb_ident,
)

__all__ = ["Fabric", "FabricConfig", "FabricStats", "QpFabric",
           "PORT_AFFINITY_MODES"]

#: Multi-queue port-affinity policies (``FabricConfig.port_affinity``).
PORT_AFFINITY_MODES = ("qp", "rss")

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finaliser: a stable, platform-independent integer hash.

    Port affinity must never depend on Python's randomised ``hash()`` —
    trace determinism requires the same QP to land on the same port in
    every run.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def _prop(env: Environment, duration: float, label: str) -> Event:
    """A propagation-delay timeout, attributed when a profiler is installed."""
    return env.attributed_timeout(duration, "propagation", label)


def _backoff(env: Environment, duration: float, label: str) -> Event:
    """A retransmission-timeout sleep, attributed as backoff time."""
    return env.attributed_timeout(duration, "backoff", label)


@dataclass(frozen=True)
class FabricConfig:
    """Network-level timing parameters (microseconds)."""

    one_way_delay_us: float = 0.9
    # Completion delay for verbs aimed at a crashed node.  Real RNICs take a
    # retry timeout to report this; we use one RTT to keep simulations fast
    # (documented deviation in DESIGN.md §6).
    fail_delay_us: float = 1.8
    # Client-side cost of building/posting a doorbell batch and polling the
    # completion queue (amortised by selective signaling, §4.6).
    post_overhead_us: float = 0.20
    # Doorbell coalescing width: up to this many *adjacent* same-node
    # READs (or same-node WRITEs) in one batch share a single NIC
    # serialisation slot, paying the fixed per-verb overhead once plus
    # their summed byte time.  1 (the paper-faithful default) disables
    # coalescing; atomics never coalesce (the RNIC atomics unit is the
    # bottleneck, Kalia et al. [30]).  Order within a slot is the posted
    # order, so §4.6 body-before-entry WRITE semantics are untouched.
    max_coalesce_width: int = 1
    # Adaptive coalescing: only widen a slot when the target port is
    # already backlogged, so unloaded latency stays identical to the
    # uncoalesced fabric and the win appears exactly where the NIC
    # serialisation line is the bottleneck (Fig. 13's plateau).
    coalesce_adaptive: bool = True
    # Multi-queue port affinity (only meaningful when memory nodes have
    # num_ports > 1).  "qp": a stable hash of the posting queue pair
    # picks the same-numbered rx and tx port for all of that QP's
    # traffic — per-QP affinity, like an RNIC steering each QP onto one
    # hardware queue.  "rss": receive-side-scaling style flow hash over
    # (qp, mn, direction), decorrelating a QP's rx/tx lanes across MNs.
    # Both are per-QP-stable, so same-QP verbs still serialise through
    # one port and posted order is preserved.
    port_affinity: str = "qp"

    def __post_init__(self):
        if self.max_coalesce_width < 1:
            raise ValueError("max_coalesce_width must be >= 1")
        if self.port_affinity not in PORT_AFFINITY_MODES:
            raise ValueError(
                f"unknown port_affinity {self.port_affinity!r}; "
                f"pick from {PORT_AFFINITY_MODES}")

    @property
    def rtt_us(self) -> float:
        return 2.0 * self.one_way_delay_us + self.post_overhead_us


@dataclass
class FabricStats:
    """Aggregate operation counters, for resource-efficiency reporting."""

    reads: int = 0
    writes: int = 0
    atomics: int = 0
    rpcs: int = 0
    bytes_moved: int = 0
    batches: int = 0
    failed_verbs: int = 0   # verbs completed FAIL (crashed target)
    # fault-injection counters (all zero on a clean fabric)
    dropped_requests: int = 0   # request messages lost in flight
    dropped_replies: int = 0    # acks/replies lost after execution
    duplicates: int = 0         # fabric-duplicated request deliveries
    dedup_hits: int = 0         # re-deliveries answered from token cache
    transport_retries: int = 0  # verb retransmissions
    verb_timeouts: int = 0      # verbs that exhausted their retry budget
    rpc_retries: int = 0        # RPC retransmissions
    rpc_dedup_hits: int = 0     # RPC re-deliveries answered from cache
    rpc_timeouts: int = 0       # RPCs that exhausted their retry budget
    # doorbell coalescing (zero at the paper-faithful width of 1)
    coalesced_slots: int = 0    # NIC slots that served more than one verb
    coalesced_verbs: int = 0    # verbs that rode along in a shared slot
    per_mn_ops: Dict[int, int] = field(default_factory=dict)
    # NIC dispatches per port label (verbs and RPC messages) — shows how
    # the affinity hash spread QPs over a multi-queue MN.  Keys are the
    # port labels the profiler ranks (e.g. ``mn0.nic_tx.p2``).
    per_port_ops: Dict[str, int] = field(default_factory=dict)
    # Messages the injector dropped, per NIC port label — all zero on a
    # clean fabric.  The monitor's gray-failure drop rule compares these
    # against ``per_port_ops`` deltas to catch ports whose requests
    # vanish (port-scoped partitions / lossy links) and therefore never
    # produce service-time observations.
    per_port_drops: Dict[str, int] = field(default_factory=dict)
    # KV-block READs per replica MN, filled by the client's read-spread
    # policy — the per-replica read-skew counter behind the
    # ``kv_read_skew`` metrics series.
    kv_replica_reads: Dict[int, int] = field(default_factory=dict)

    def snapshot(self) -> "FabricStats":
        """An independent copy covering *every* field.

        Built generically from ``dataclasses.fields`` so a newly added
        counter can never be silently dropped from snapshots (guarded by
        ``tests/test_fabric.py::TestFabricStatsSnapshot``).
        """
        values = {}
        for f in fields(self):
            value = getattr(self, f.name)
            values[f.name] = dict(value) if isinstance(value, dict) else value
        return FabricStats(**values)


class Fabric:
    """Posts verbs and RPCs to memory nodes with simulated timing.

    An optional :class:`~repro.obs.Tracer` observes every doorbell batch
    and RPC; the default is the shared no-op tracer, so the untraced path
    costs one attribute check per batch.
    """

    def __init__(self, env: Environment, config: FabricConfig | None = None,
                 tracer=None):
        from ..obs.tracer import NULL_TRACER
        self.env = env
        self.config = config or FabricConfig()
        self.nodes: Dict[int, MemoryNode] = {}
        self.stats = FabricStats()
        if tracer is None:
            tracer = NULL_TRACER
        elif tracer.env is None:
            tracer.env = env   # late-bind: Tracer() made before the env
        self.tracer = tracer
        # Optional fault injection (repro.faults).  None keeps the clean
        # fast path at one attribute check per post/rpc.
        self.injector = None
        # Optional online monitor (repro.obs.monitor).  None keeps every
        # hook site at a single attribute check; attached, the fabric
        # feeds per-delivery service times and per-port drop counts to
        # the gray-failure detector.
        self.monitor = None
        # Hot-path memo tables.  Port/CPU affinity is a pure function of
        # (mn, direction, qp) at salt 0 (ports never change after build),
        # and per-verb service time is a pure function of (NIC profile,
        # verb kind, payload bytes) — cache both so the per-verb cost is
        # a dict hit instead of SplitMix64 hashing / float arithmetic.
        self._port_cache: Dict[tuple, tuple] = {}
        self._cpu_cache: Dict[tuple, object] = {}
        self._service_cache: Dict[tuple, float] = {}
        # Service-time memo for the hooks-off post() loop, keyed
        # (mn, verb class, payload bytes) — low-cardinality (a handful
        # of distinct sizes per verb kind), unlike any key that folds
        # in the posting qp, which would never converge at scale.
        self._verb_cache: Dict[tuple, float] = {}
        # Hot-path copies of the (frozen) config delays.
        cfg = self.config
        self._post_overhead = cfg.post_overhead_us
        self._one_way = cfg.one_way_delay_us
        self._fail_delay = cfg.fail_delay_us
        self._coalesce_off = cfg.max_coalesce_width <= 1

    def trace_phase(self, name: str) -> None:
        """Label the current operation's next batches (no-op untraced)."""
        if self.tracer.enabled:
            self.tracer.phase(name)

    # -- topology ------------------------------------------------------------
    def add_node(self, node: MemoryNode) -> None:
        if node.mn_id in self.nodes:
            raise ValueError(f"duplicate memory node id {node.mn_id}")
        self.nodes[node.mn_id] = node

    def node(self, mn_id: int) -> MemoryNode:
        return self.nodes[mn_id]

    def alive_nodes(self) -> List[int]:
        return [mn_id for mn_id, n in self.nodes.items() if not n.crashed]

    # -- multi-queue port selection -------------------------------------------
    def bind_qp(self, qp: int) -> "QpFabric":
        """A client-side view of this fabric bound to queue pair ``qp``."""
        return QpFabric(self, qp)

    def _port_for(self, node: MemoryNode, tx: bool, qp: int,
                  salt: int = 0):
        """Pick ``(index, NicPort)`` for a delivery.

        A stable hash of the QP (policy "qp"), or of the (qp, mn,
        direction) flow (policy "rss"), spreads queue pairs over the
        node's ports.  ``salt`` rotates the choice deterministically —
        the transport bumps it per retry attempt so a retransmission
        escapes a port-level partition within ``num_ports`` attempts.
        """
        if salt == 0:
            cached = self._port_cache.get((node.mn_id, tx, qp))
            if cached is not None:
                return cached
        ports = node.tx_ports if tx else node.rx_ports
        n = len(ports)
        if n == 1:
            choice = 0, ports[0]
            if salt == 0:
                self._port_cache[(node.mn_id, tx, qp)] = choice
            return choice
        if self.config.port_affinity == "rss":
            key = _mix64(_mix64(2 * qp + 1)
                         ^ (node.mn_id * 0x9E3779B97F4A7C15 + (2 if tx else 1)))
        else:  # "qp"
            key = _mix64(2 * qp + 1)
        index = (key + salt) % n
        choice = index, ports[index]
        if salt == 0:
            self._port_cache[(node.mn_id, tx, qp)] = choice
        return choice

    def _cpu_for(self, node: MemoryNode, qp: int):
        """Pick the RPC CPU shard serving queue pair ``qp``."""
        cached = self._cpu_cache.get((node.mn_id, qp))
        if cached is not None:
            return cached
        shards = node.cpus
        if len(shards) == 1:
            shard = shards[0]
        else:
            shard = shards[_mix64(2 * qp + 1) % len(shards)]
        self._cpu_cache[(node.mn_id, qp)] = shard
        return shard

    def _note_port(self, port, n: int = 1) -> None:
        per_port = self.stats.per_port_ops
        per_port[port.label] = per_port.get(port.label, 0) + n

    def _note_drop(self, port) -> None:
        per_port = self.stats.per_port_drops
        per_port[port.label] = per_port.get(port.label, 0) + 1

    # -- one-sided verbs ------------------------------------------------------
    def post(self, ops: Sequence[Verb], unsignaled: bool = False,
             qp: int = 0) -> Event:
        """Post a doorbell batch.

        Returns an event that fires with ``List[Completion]`` in the order
        the verbs were posted.  ``unsignaled`` marks fire-and-forget
        batches (§4.6 selective signaling): the caller does not wait for
        them, so the tracer excludes them from per-operation RTT counts.
        ``qp`` is the posting queue pair's identity — on multi-port
        memory nodes it selects the NIC port via the configured affinity
        policy (irrelevant at ``num_ports=1``).
        """
        if not ops:
            raise ValueError("empty doorbell batch")
        if self.injector is not None:
            return self._post_faulty(ops, unsignaled, qp)
        env = self.env
        now = env._now
        one_way = self._one_way
        arrive = now + self._post_overhead + one_way
        stats = self.stats
        stats.batches += 1
        prof = env._profiler
        if prof is None and env._access_hook is None \
                and self._coalesce_off and self.monitor is None:
            # Hot path: no hooks, no coalescing — singleton groups with
            # inlined counting/affinity/service lookups.  Timing and stat
            # totals are identical to the general loop below.
            completions = []
            append = completions.append
            finish = now
            nodes = self.nodes
            per_mn = stats.per_mn_ops
            per_port = stats.per_port_ops
            pcache = self._port_cache
            vcache = self._verb_cache
            reads = writes = atomics = moved = 0
            for op in ops:
                mn = op.mn_id
                node = nodes[mn]
                cls = op.__class__
                if cls is ReadOp:
                    reads += 1
                    nbytes = op.length
                elif cls is WriteOp:
                    writes += 1
                    nbytes = len(op.data)
                else:
                    atomics += 1
                    nbytes = 8
                moved += nbytes
                per_mn[mn] = per_mn.get(mn, 0) + 1
                if node.crashed:
                    stats.failed_verbs += 1
                    append(Completion(op, FAIL))
                    done = now + self._fail_delay
                    if done > finish:
                        finish = done
                    continue
                is_read = cls is ReadOp
                # Inlined MemoryNode.apply for READ/WRITE (the access
                # hook is known off here, so the noting branch is dead);
                # atomics keep the full dispatch.
                if is_read:
                    addr = op.addr
                    if addr < 0 or addr + nbytes > node.capacity:
                        node._check_range(addr, nbytes)
                    append(Completion(
                        op, bytes(node._view[addr:addr + nbytes])))
                elif cls is WriteOp:
                    addr = op.addr
                    if addr < 0 or addr + nbytes > node.capacity:
                        node._check_range(addr, nbytes)
                    node.memory[addr:addr + nbytes] = op.data
                    append(Completion(op, None))
                else:
                    append(Completion(op, node.apply(op)))
                choice = pcache.get((mn, is_read, qp))
                if choice is None:
                    choice = self._port_for(node, is_read, qp)
                port = choice[1]
                vkey = (mn, cls, nbytes)
                service = vcache.get(vkey)
                if service is None:
                    service = self._service_time(node, op)
                    vcache[vkey] = service
                label = port.label
                per_port[label] = per_port.get(label, 0) + 1
                done = port.finish_time(service, not_before=arrive) + one_way
                if done > finish:
                    finish = done
            stats.reads += reads
            stats.writes += writes
            stats.atomics += atomics
            stats.bytes_moved += moved
            if self.tracer.enabled:
                self.tracer.on_batch(ops, completions, now, finish,
                                     unsignaled=unsignaled)
            return env.timeout(finish - now, value=completions)
        cfg = self.config
        completions = []
        finish = now
        if prof is not None:
            # Fire-and-forget batches (§4.6 selective signaling) are not
            # waited on, so their intervals must not land in the active
            # span's breakdown; span=None keeps them resource-only.
            prof.begin_batch(None if unsignaled else prof.current_span())
            prof.note("client", "post", now, now + cfg.post_overhead_us)
            prof.note("propagation", "net.request",
                      now + cfg.post_overhead_us, arrive)
        for group in self._coalesce(ops, arrive, qp):
            node = self.nodes[group[0].mn_id]
            if node.crashed:
                # Crashed-node verbs are always singleton groups.
                op = group[0]
                self._count(op, node)
                self.env.note_access(("crash", node.mn_id), False)
                self.stats.failed_verbs += 1
                completions.append(Completion(op, FAIL))
                finish = max(finish, now + cfg.fail_delay_us)
                if prof is not None:
                    prof.note("propagation", "net.fail", now,
                              now + cfg.fail_delay_us)
                continue
            for op in group:
                self._count(op, node)
                self.env.note_access(("crash", node.mn_id), False)
                completions.append(Completion(op, node.apply(op)))
            if len(group) == 1:
                service = self._service_time(node, group[0])
            else:
                # One shared serialisation slot: the fixed per-verb
                # overhead is paid once for the whole group.
                profile = node.nic.profile
                service = profile.op_overhead + sum(
                    profile.byte_time(op_bytes(op)) for op in group)
                self.stats.coalesced_slots += 1
                self.stats.coalesced_verbs += len(group) - 1
            _, port = self._port_for(node, isinstance(group[0], ReadOp), qp)
            self._note_port(port, len(group))
            if self.monitor is not None:
                self.monitor.note_verb(node.mn_id, port.label,
                                       group[0].__class__,
                                       op_bytes(group[0]), service,
                                       len(group))
            done = port.finish_time(service, not_before=arrive)
            finish = max(finish, done + cfg.one_way_delay_us)
            if prof is not None:
                prof.note("propagation", "net.reply", done,
                          done + cfg.one_way_delay_us)
        if prof is not None:
            prof.end_batch()
        if self.tracer.enabled:
            self.tracer.on_batch(ops, completions, now, finish,
                                 unsignaled=unsignaled)
        return self.env.timeout(finish - now, value=completions)

    def post_one(self, op: Verb, qp: int = 0) -> Event:
        """Post a single verb; the event fires with one :class:`Completion`."""
        batch = self.post([op], qp=qp)
        proxy = self.env.event()
        batch.callbacks.append(
            lambda ev: proxy.succeed(ev.value[0]) if ev.ok else proxy.fail(ev.value))
        return proxy

    # -- fault-injected verb path (repro.faults) ------------------------------
    def _post_faulty(self, ops: Sequence[Verb], unsignaled: bool,
                     qp: int = 0) -> Event:
        """Doorbell batch under an installed fault injector.

        Each verb runs in its own delivery process: per attempt the
        injector draws a fate (lost request, lost reply, duplicated
        delivery, extra jitter) and the transport retries with capped
        backoff under the *same* idempotency token, so the memory node
        applies each verb at most once (`MemoryNode.apply_once`).  A verb
        whose retry budget runs out completes with :data:`TIMEOUT`.
        Verbs are applied at their simulated arrival time, so effects
        still land inside the invocation-completion window and executions
        remain linearizable.

        On a multi-port node each retry attempt rotates the affinity
        hash by one, so a QP stuck behind a partitioned or gray *port*
        deterministically reaches a healthy one within ``num_ports``
        attempts.
        """
        env = self.env
        t0 = env.now
        self.stats.batches += 1
        span = self.tracer.current_span() if self.tracer.enabled else None
        prof = env._profiler
        pspan = None
        if prof is not None and not unsignaled:
            pspan = prof.current_span()
        completions: List[Completion] = [None] * len(ops)
        procs = []
        for i, op in enumerate(ops):
            proc = env.process(
                self._deliver_verb(i, op, env.next_uid(), completions, span,
                                   qp),
                name=f"verb:{i}@MN{op.mn_id}")
            if prof is not None:
                # Delivery runs in its own process, so interval emission
                # inside it cannot see the posting span via the tracer's
                # per-process stack — bind explicitly (None when
                # unsignaled, to keep the intervals resource-only).
                prof.bind(proc, pspan)
            procs.append(proc)
        return env.process(self._gather_batch(ops, procs, completions, t0,
                                              unsignaled, span),
                           name="batch")

    def _gather_batch(self, ops, procs, completions, t0, unsignaled, span):
        if len(procs) == 1:
            yield procs[0]
        else:
            yield self.env.all_of(procs)
        if self.tracer.enabled:
            self.tracer.on_batch(ops, completions, t0, self.env.now,
                                 unsignaled=unsignaled, span=span)
        return completions

    def _deliver_verb(self, i, op, token, completions, span, qp=0):
        env = self.env
        cfg = self.config
        inj = self.injector
        policy = inj.retry
        node = self.nodes[op.mn_id]
        self._count(op, node)
        ident = verb_ident(op)
        is_read = isinstance(op, ReadOp)
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self.stats.transport_retries += 1
                if span is not None:
                    self.tracer.note_transport_retry(span)
            t_attempt = env.now
            env.note_access(("crash", node.mn_id), False)
            if node.crashed:
                self.stats.failed_verbs += 1
                yield _prop(env, cfg.fail_delay_us, "net.fail")
                completions[i] = Completion(op, FAIL)
                return
            # per-attempt salt: a retry re-hashes onto the next port, so
            # port-level faults are escaped instead of hammered
            pidx, port = self._port_for(node, is_read, qp,
                                        salt=attempt - 1)
            fate = inj.fate(ident, op.mn_id, attempt, t_attempt, port=pidx)
            backoff = policy.backoff_us(attempt, fate.backoff_u)
            if fate.drop_request:
                self.stats.dropped_requests += 1
                self._note_drop(port)
                yield _backoff(env, policy.verb_timeout_us + backoff,
                               "verb.timeout")
                continue
            # request propagation (plus drawn jitter)
            prof = env._profiler
            if prof is not None:
                t = env.now
                t_sent = t + cfg.post_overhead_us
                prof.note("client", "post", t, t_sent)
                prof.note("propagation", "net.request", t_sent,
                          t_sent + cfg.one_way_delay_us
                          + fate.request_jitter_us)
            yield env.timeout(cfg.post_overhead_us + cfg.one_way_delay_us
                              + fate.request_jitter_us)
            env.note_access(("crash", node.mn_id), False)
            if node.crashed:
                self.stats.failed_verbs += 1
                completions[i] = Completion(op, FAIL)
                return
            value, deduped = node.apply_once(token, op)
            if deduped:
                self.stats.dedup_hits += 1
            service = (self._service_time(node, op)
                       * inj.service_factor(op.mn_id, env.now, port=pidx))
            self._note_port(port)
            if self.monitor is not None:
                self.monitor.note_verb(op.mn_id, port.label, op.__class__,
                                       op_bytes(op), service)
            done = port.finish_time(service, not_before=env.now)
            if fate.duplicate:
                # The fabric delivered the request twice.  The second copy
                # hits the token cache (no re-execution) but still costs
                # NIC service.
                self.stats.duplicates += 1
                _, dup_hit = node.apply_once(token, op)
                if dup_hit:
                    self.stats.dedup_hits += 1
                self._note_port(port)
                port.finish_time(service, not_before=env.now)
            if fate.drop_reply:
                self.stats.dropped_replies += 1
                self._note_drop(port)
                elapsed = env.now - t_attempt
                yield _backoff(
                    env,
                    max(0.0, policy.verb_timeout_us - elapsed) + backoff,
                    "verb.timeout")
                continue
            if prof is not None:
                # [now, done] is NIC queue+service, already attributed by
                # the port; only the reply's travel back is propagation.
                prof.note("propagation", "net.reply", done,
                          done + cfg.one_way_delay_us
                          + fate.reply_jitter_us)
            yield env.timeout(max(0.0, done - env.now)
                              + cfg.one_way_delay_us + fate.reply_jitter_us)
            completions[i] = Completion(op, value)
            return
        self.stats.verb_timeouts += 1
        completions[i] = Completion(op, TIMEOUT)

    # -- RPCs -------------------------------------------------------------------
    def rpc(self, mn_id: int, name: str, payload: dict,
            qp: int = 0) -> Event:
        """Call an RPC handler registered on a memory node.

        The request traverses the node's NIC, waits for a CPU core, runs the
        handler (which reports its own CPU service time), and the reply
        travels back.  Fires with the reply dict, or :data:`FAIL` if the
        node has crashed.  ``qp`` selects the NIC port and the RPC CPU
        shard on multi-queue nodes.
        """
        span = self.tracer.current_span() if self.tracer.enabled else None
        if self.injector is not None:
            gen = self._rpc_faulty_proc(mn_id, name, payload,
                                        self.env.next_uid(), span, qp)
        else:
            gen = self._rpc_proc(mn_id, name, payload, qp)
        proc = self.env.process(gen, name=f"rpc:{name}@MN{mn_id}")
        prof = self.env._profiler
        if prof is not None:
            # The RPC runs in its own process; bind it to the caller's
            # span so NIC/CPU intervals emitted inside attribute correctly.
            prof.bind(proc, prof.current_span())
        if self.tracer.enabled:
            record = self.tracer.on_rpc(mn_id, name)
            env = self.env

            def _finish(_event, record=record, env=env):
                record["t1"] = env.now

            proc.callbacks.append(_finish)
        return proc

    def _rpc_proc(self, mn_id: int, name: str, payload: dict, qp: int = 0):
        cfg = self.config
        node = self.nodes[mn_id]
        self.stats.rpcs += 1
        self.env.note_access(("crash", mn_id), False)
        if node.crashed:
            yield _prop(self.env, cfg.fail_delay_us, "net.fail")
            return FAIL
        _, port = self._port_for(node, False, qp)
        cpu = self._cpu_for(node, qp)
        # request propagation + NIC receive
        yield _prop(self.env, cfg.one_way_delay_us, "net.request")
        self._note_port(port)
        yield port.occupy(port.profile.rpc_overhead)
        if node.crashed:
            yield _prop(self.env, cfg.one_way_delay_us, "net.fail")
            return FAIL
        # CPU service
        req = cpu.request()
        yield req
        try:
            # RPC handlers mutate MN-side Python state (allocator maps,
            # master metadata) that word-level footprints cannot see; mark
            # the whole endpoint as written so schedule exploration never
            # prunes a reordering across a handler invocation.
            self.env.note_access(("rpc", mn_id, name), True)
            handler = node.rpc_handler(name)
            reply, cpu_time = handler(payload)
            if self.monitor is not None:
                self.monitor.note_rpc(mn_id, cpu.label, name, cpu_time)
            yield self.env.timeout(cpu_time)
        finally:
            req.release()
        if node.crashed:
            yield _prop(self.env, cfg.one_way_delay_us, "net.fail")
            return FAIL
        # reply NIC + propagation
        yield port.occupy(port.profile.rpc_overhead)
        yield _prop(self.env, cfg.one_way_delay_us, "net.reply")
        return reply

    def _rpc_faulty_proc(self, mn_id: int, name: str, payload: dict,
                         token: int, span, qp: int = 0):
        """RPC path under fault injection: per-attempt timeout, capped
        backoff, and reply caching keyed by idempotency token on the
        memory node — a retransmission after a lost reply is answered
        from the cache, so ALLOC can never leak a block and FREE can
        never double-free.  Returns :data:`FAIL` when the retry budget
        runs out (callers already handle FAIL replies)."""
        cfg = self.config
        env = self.env
        inj = self.injector
        policy = inj.retry
        node = self.nodes[mn_id]
        self.stats.rpcs += 1
        ident = ("rpc", name, token)
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self.stats.rpc_retries += 1
                if span is not None:
                    self.tracer.note_transport_retry(span)
            t_attempt = env.now
            env.note_access(("crash", mn_id), False)
            if node.crashed:
                yield _prop(env, cfg.fail_delay_us, "net.fail")
                return FAIL
            pidx, port = self._port_for(node, False, qp, salt=attempt - 1)
            fate = inj.fate(ident, mn_id, attempt, t_attempt, port=pidx)
            backoff = policy.backoff_us(attempt, fate.backoff_u)
            if fate.drop_request:
                self.stats.dropped_requests += 1
                self._note_drop(port)
                yield _backoff(env, policy.rpc_timeout_us + backoff,
                               "rpc.timeout")
                continue
            yield _prop(env, cfg.one_way_delay_us + fate.request_jitter_us,
                        "net.request")
            self._note_port(port)
            yield port.occupy(port.profile.rpc_overhead)
            if node.crashed:
                yield _prop(env, cfg.one_way_delay_us, "net.fail")
                return FAIL
            cached = node.rpc_reply_cached(token)
            if cached is not None:
                self.stats.rpc_dedup_hits += 1
                reply = cached[0]
            else:
                cpu = self._cpu_for(node, qp)
                req = cpu.request()
                yield req
                try:
                    self.env.note_access(("rpc", mn_id, name), True)
                    handler = node.rpc_handler(name)
                    reply, cpu_time = handler(payload)
                    cpu_eff = cpu_time * inj.service_factor(mn_id, env.now,
                                                            port=pidx)
                    if self.monitor is not None:
                        self.monitor.note_rpc(mn_id, cpu.label, name,
                                              cpu_eff)
                    yield env.timeout(cpu_eff)
                finally:
                    req.release()
                node.cache_rpc_reply(token, reply)
            if node.crashed:
                yield _prop(env, cfg.one_way_delay_us, "net.fail")
                return FAIL
            if fate.drop_reply:
                self.stats.dropped_replies += 1
                self._note_drop(port)
                elapsed = env.now - t_attempt
                yield _backoff(
                    env,
                    max(0.0, policy.rpc_timeout_us - elapsed) + backoff,
                    "rpc.timeout")
                continue
            yield port.occupy(port.profile.rpc_overhead)
            yield _prop(env, cfg.one_way_delay_us + fate.reply_jitter_us,
                        "net.reply")
            return reply
        self.stats.rpc_timeouts += 1
        return FAIL

    # -- internals -----------------------------------------------------------
    def _coalesce(self, ops: Sequence[Verb], arrive: float, qp: int = 0):
        """Split a doorbell batch into NIC serialisation groups (lazily).

        Consecutive same-node READs (or same-node WRITEs) form one group
        of up to ``max_coalesce_width`` verbs that will share a single
        serialisation slot.  Atomics and verbs to crashed nodes always
        stand alone.  With ``coalesce_adaptive`` a group only widens when
        its target port is already backlogged at ``arrive`` — evaluated
        lazily, so later groups of the same batch see the queue the
        earlier ones just built.
        """
        cfg = self.config
        width = cfg.max_coalesce_width
        if width <= 1:
            for op in ops:
                yield [op]
            return
        group: List[Verb] = []
        key = None
        limit = 1
        for op in ops:
            node = self.nodes[op.mn_id]
            if isinstance(op, ReadOp):
                kind = "r"
            elif isinstance(op, WriteOp):
                kind = "w"
            else:
                kind = None
            op_key = (None if kind is None or node.crashed
                      else (op.mn_id, kind))
            if group and op_key is not None and op_key == key \
                    and len(group) < limit:
                group.append(op)
                continue
            if group:
                yield group
            group = [op]
            key = op_key
            if op_key is None:
                limit = 1
            else:
                # the backlog probe must look at the port this batch
                # will actually ride (same qp, same mn, same direction
                # => same port for every verb in the group)
                _, port = self._port_for(node, kind == "r", qp)
                limit = (width if not cfg.coalesce_adaptive
                         or port.backlog(arrive) > 0.0 else 1)
        if group:
            yield group

    def _service_time(self, node: MemoryNode, op: Verb) -> float:
        profile = node.nic.profile
        key = (id(profile), op.__class__, op_bytes(op))
        cached = self._service_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(op, (CasOp, FaaOp)):
            fixed = profile.atomic_overhead
        else:
            fixed = profile.op_overhead
        service = fixed + profile.byte_time(op_bytes(op))
        self._service_cache[key] = service
        return service

    def _count(self, op: Verb, node: MemoryNode) -> None:
        stats = self.stats
        if isinstance(op, ReadOp):
            stats.reads += 1
        elif isinstance(op, WriteOp):
            stats.writes += 1
        else:
            stats.atomics += 1
        stats.bytes_moved += op_bytes(op)
        stats.per_mn_ops[node.mn_id] = stats.per_mn_ops.get(node.mn_id, 0) + 1


class QpFabric:
    """A queue-pair view of a :class:`Fabric` (the client's QP setup).

    Clients receive one of these instead of the raw fabric: it exposes
    the same API but stamps this QP's identity on every ``post`` /
    ``post_one`` / ``rpc``, which is what multi-queue port affinity
    hashes on.  Everything else (stats, topology, tracer, injector)
    delegates to the underlying fabric, so helper code that only reads
    fabric state works unchanged.  At ``num_ports=1`` the identity is
    inert and behaviour is byte-identical to the raw fabric.
    """

    __slots__ = ("_fabric", "qp", "trace_phase", "node")

    def __init__(self, fabric: Fabric, qp: int):
        self._fabric = fabric
        self.qp = qp
        # Pre-bound hot methods: a delegating property would manufacture
        # a new bound method on every access (several per KV op).
        self.trace_phase = fabric.trace_phase
        self.node = fabric.node

    # Hot delegated attributes get direct properties so lookups skip the
    # __getattr__ miss path; anything else still falls through to it.
    @property
    def env(self):
        return self._fabric.env

    @property
    def stats(self):
        return self._fabric.stats

    @property
    def nodes(self):
        return self._fabric.nodes

    @property
    def config(self):
        return self._fabric.config

    @property
    def tracer(self):
        return self._fabric.tracer

    @property
    def injector(self):
        return self._fabric.injector

    def post(self, ops: Sequence[Verb], unsignaled: bool = False) -> Event:
        return self._fabric.post(ops, unsignaled=unsignaled, qp=self.qp)

    def post_one(self, op: Verb) -> Event:
        return self._fabric.post_one(op, qp=self.qp)

    def rpc(self, mn_id: int, name: str, payload: dict) -> Event:
        return self._fabric.rpc(mn_id, name, payload, qp=self.qp)

    def __getattr__(self, name):
        return getattr(self._fabric, name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<QpFabric qp={self.qp} of {self._fabric!r}>"
