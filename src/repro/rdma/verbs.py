"""One-sided RDMA verb descriptors and completions.

Verbs address memory as ``(mn_id, offset)`` pairs — the fabric-level view.
The 48-bit global address space of §4.4 is layered on top of this in
:mod:`repro.core.addressing`.

Semantics mirror the paper's assumptions (§2.1):

* ``READ`` / ``WRITE`` move bytes; WRITE is order-preserving within a
  doorbell batch posted to the same memory node.
* ``CAS`` / ``FAA`` operate atomically on 8-byte big-endian unsigned
  integers and return the *old* value.
* Any verb posted to a crashed memory node completes with ``FAIL``.
"""

from __future__ import annotations

from typing import Union

__all__ = [
    "FAIL",
    "TIMEOUT",
    "ReadOp",
    "WriteOp",
    "CasOp",
    "FaaOp",
    "Completion",
    "Verb",
    "WORD",
    "verb_ident",
]

WORD = 8  # size of the atomic unit, bytes


class _Fail:
    """Singleton sentinel for verbs that hit a crashed memory node."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FAIL"

    def __bool__(self) -> bool:
        return False


FAIL = _Fail()


class _TimedOut:
    """Singleton sentinel for verbs whose transport retries ran out.

    Distinct from :data:`FAIL` (crashed target) so callers can tell a
    dead node from a flaky/partitioned link, but equally falsy and
    equally covered by :attr:`Completion.failed` — every existing
    failure-handling path treats both the same way.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


TIMEOUT = _TimedOut()


# Verb descriptors are the single hottest allocation in a simulation (a
# few per RTT per client), so they are hand-written __slots__ classes
# instead of frozen dataclasses: plain attribute assignment in __init__
# is several times cheaper than dataclass-frozen object.__setattr__,
# while __eq__/__hash__/__repr__ keep the value semantics tests rely on.


class ReadOp:
    """RDMA_READ of ``length`` bytes at ``(mn_id, addr)``."""

    __slots__ = ("mn_id", "addr", "length")

    def __init__(self, mn_id: int, addr: int, length: int):
        self.mn_id = mn_id
        self.addr = addr
        self.length = length

    def __repr__(self) -> str:
        return (f"ReadOp(mn_id={self.mn_id!r}, addr={self.addr!r}, "
                f"length={self.length!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not ReadOp:
            return NotImplemented
        return (self.mn_id == other.mn_id and self.addr == other.addr
                and self.length == other.length)

    def __hash__(self) -> int:
        return hash((ReadOp, self.mn_id, self.addr, self.length))


class WriteOp:
    """RDMA_WRITE of ``data`` at ``(mn_id, addr)``."""

    __slots__ = ("mn_id", "addr", "data")

    def __init__(self, mn_id: int, addr: int, data: bytes):
        self.mn_id = mn_id
        self.addr = addr
        self.data = data

    def __repr__(self) -> str:
        return (f"WriteOp(mn_id={self.mn_id!r}, addr={self.addr!r}, "
                f"data={self.data!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not WriteOp:
            return NotImplemented
        return (self.mn_id == other.mn_id and self.addr == other.addr
                and self.data == other.data)

    def __hash__(self) -> int:
        return hash((WriteOp, self.mn_id, self.addr, self.data))


class CasOp:
    """8-byte RDMA compare-and-swap; returns the previous value."""

    __slots__ = ("mn_id", "addr", "expected", "swap")

    def __init__(self, mn_id: int, addr: int, expected: int, swap: int):
        self.mn_id = mn_id
        self.addr = addr
        self.expected = expected
        self.swap = swap

    def __repr__(self) -> str:
        return (f"CasOp(mn_id={self.mn_id!r}, addr={self.addr!r}, "
                f"expected={self.expected!r}, swap={self.swap!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not CasOp:
            return NotImplemented
        return (self.mn_id == other.mn_id and self.addr == other.addr
                and self.expected == other.expected
                and self.swap == other.swap)

    def __hash__(self) -> int:
        return hash((CasOp, self.mn_id, self.addr, self.expected, self.swap))


class FaaOp:
    """8-byte RDMA fetch-and-add; returns the previous value."""

    __slots__ = ("mn_id", "addr", "delta")

    def __init__(self, mn_id: int, addr: int, delta: int):
        self.mn_id = mn_id
        self.addr = addr
        self.delta = delta

    def __repr__(self) -> str:
        return (f"FaaOp(mn_id={self.mn_id!r}, addr={self.addr!r}, "
                f"delta={self.delta!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not FaaOp:
            return NotImplemented
        return (self.mn_id == other.mn_id and self.addr == other.addr
                and self.delta == other.delta)

    def __hash__(self) -> int:
        return hash((FaaOp, self.mn_id, self.addr, self.delta))


Verb = Union[ReadOp, WriteOp, CasOp, FaaOp]


class Completion:
    """Result of one verb.

    ``value`` is ``bytes`` for READ, ``None`` for WRITE, the old integer for
    CAS/FAA, :data:`FAIL` if the target memory node had crashed, or
    :data:`TIMEOUT` if transport retries were exhausted (fault injection).
    """

    __slots__ = ("op", "value")

    def __init__(self, op: Verb, value: object):
        self.op = op
        self.value = value

    def __repr__(self) -> str:
        return f"Completion(op={self.op!r}, value={self.value!r})"

    def __eq__(self, other) -> bool:
        if other.__class__ is not Completion:
            return NotImplemented
        return self.op == other.op and self.value == other.value

    @property
    def failed(self) -> bool:
        value = self.value
        return value is FAIL or value is TIMEOUT

    @property
    def timed_out(self) -> bool:
        return self.value is TIMEOUT

    def cas_succeeded(self) -> bool:
        """For a CAS completion: did the swap take effect?"""
        if not isinstance(self.op, CasOp):
            raise TypeError("cas_succeeded() on a non-CAS completion")
        return self.value == self.op.expected


def verb_ident(op: Verb) -> tuple:
    """Content identity of a verb (kind, address, operands).

    The fault layer keys its deterministic fate draws on this, so a
    fate depends on *what* is sent, not on how many unrelated draws
    happened before it — replaying a schedule replays the same faults.
    """
    if isinstance(op, ReadOp):
        return ("R", op.addr, op.length)
    if isinstance(op, WriteOp):
        return ("W", op.addr, op.data)
    if isinstance(op, CasOp):
        return ("C", op.addr, op.expected, op.swap)
    if isinstance(op, FaaOp):
        return ("F", op.addr, op.delta)
    raise TypeError(f"unknown verb {op!r}")


def op_bytes(op: Verb) -> int:
    """Payload size charged to the NIC for a verb."""
    if isinstance(op, ReadOp):
        return op.length
    if isinstance(op, WriteOp):
        return len(op.data)
    return WORD
