"""Linearizability checkers for replicated-slot and whole-KV histories.

The paper verifies SNAPSHOT with TLA+; here we mechanically check the same
safety property on *actual executions*.  Two checkers share the classical
Wing & Gong search with memoisation on (set of linearized ops, abstract
state), which is exact and fast for the history sizes our protocol tests
produce (well under ~25 operations per partition):

* :func:`check_linearizable` — a history of READ/WRITE operations on one
  replicated 8-byte slot is linearizable iff there is a total order of the
  operations that (1) respects real-time precedence and (2) is legal for a
  register: every read returns the most recently written value.

* :func:`check_kv_linearizable` — a history of SEARCH / INSERT / UPDATE /
  DELETE operations against the whole store, with operations that *truly
  overlap* in time (collected from concurrent client processes, e.g. via
  the tracer's spans — see :func:`repro.check.history.kv_ops_from_spans`).
  By the Herlihy & Wing locality theorem, and because FUSEE keys are
  independent objects, the history is linearizable iff each per-key
  subhistory is — so the checker partitions by key and runs an
  independent search per partition against map semantics.  Each
  partition is further decomposed at **quiescent cuts** (instants with
  no op on that key in flight): real time totally orders the bursts on
  either side, so the search runs per concurrent burst, threading the
  set of legally reachable states across cuts.  Long paced histories
  (production traffic scenarios) therefore check in time linear in run
  length — the exponential search is bounded by the widest burst.

Both checkers accept **pending** operations (``required=False``): an
operation that was invoked but never completed (its issuer crashed, or it
escalated to the master and gave up) may either have taken effect or not —
the search is free to linearize it anywhere after its invocation or to
drop it entirely.  This is what makes crash schedules checkable: a write
whose client died mid-protocol is exactly such a pending operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Op",
    "History",
    "check_linearizable",
    "KvOp",
    "KvViolation",
    "check_kv_linearizable",
]


# --------------------------------------------------------------------------
# Single-slot register histories
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Op:
    """One operation on the replicated slot.

    ``required=False`` marks a pending operation: invoked but never
    completed (``completed`` should then be ``math.inf``).  The checker
    may linearize it or drop it.
    """

    kind: str          # "r" or "w"
    value: int         # value written, or value returned by the read
    invoked: float
    completed: float
    op_id: int = 0
    required: bool = True

    def __post_init__(self):
        if self.kind not in ("r", "w"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.completed < self.invoked:
            raise ValueError("completion precedes invocation")


@dataclass
class History:
    """A mutable collection of operations, with recording helpers."""

    initial_value: int = 0
    ops: List[Op] = field(default_factory=list)
    _next_id: int = 0

    def record(self, kind: str, value: int, invoked: float,
               completed: float) -> Op:
        op = Op(kind=kind, value=value, invoked=invoked,
                completed=completed, op_id=self._next_id)
        self._next_id += 1
        self.ops.append(op)
        return op

    def record_pending(self, kind: str, value: int, invoked: float) -> Op:
        """Record an operation that never completed (crash / escalation)."""
        op = Op(kind=kind, value=value, invoked=invoked,
                completed=math.inf, op_id=self._next_id, required=False)
        self._next_id += 1
        self.ops.append(op)
        return op

    def __len__(self) -> int:
        return len(self.ops)


def check_linearizable(history: History,
                       max_states: int = 2_000_000) -> bool:
    """True iff the history linearizes against register semantics.

    Raises ``RuntimeError`` if the search exceeds ``max_states`` explored
    states (never observed for protocol-test-sized histories).
    """
    # A pending read constrains nothing (its result was never returned),
    # so drop them up front; pending writes stay as optional candidates.
    ops = [op for op in history.ops if op.required or op.kind == "w"]
    n = len(ops)
    if n == 0:
        return True
    if n > 63:
        raise ValueError("history too large for the bitmask checker")

    all_required = 0
    for i, op in enumerate(ops):
        if op.required:
            all_required |= 1 << i
    seen: Set[Tuple[int, int]] = set()
    states = 0

    def candidates(done_mask: int) -> List[int]:
        """Ops that may be linearized next: not done, and no *other*
        pending op completes strictly before their invocation."""
        pending = [i for i in range(n) if not done_mask & (1 << i)]
        if not pending:
            return []
        min_completed = min(ops[i].completed for i in pending)
        return [i for i in pending if ops[i].invoked <= min_completed]

    def search(done_mask: int, value: int) -> bool:
        nonlocal states
        if done_mask & all_required == all_required:
            # Every completed op is linearized; the remaining (pending)
            # ops may simply never have taken effect.
            return True
        key = (done_mask, value)
        if key in seen:
            return False
        seen.add(key)
        states += 1
        if states > max_states:
            raise RuntimeError("linearizability search exploded")
        for i in candidates(done_mask):
            op = ops[i]
            if op.kind == "r":
                if op.value != value:
                    continue
                if search(done_mask | (1 << i), value):
                    return True
            else:
                if search(done_mask | (1 << i), op.value):
                    return True
        return False

    return search(0, history.initial_value)


# --------------------------------------------------------------------------
# Whole-store KV histories (partitioned by key)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class KvOp:
    """One completed (or pending) client operation against the store.

    ``kind``    one of ``search`` / ``insert`` / ``update`` / ``delete``;
    ``key``     the operation's key;
    ``wrote``   the value argument (insert/update), else ``None``;
    ``ok``      the reported success flag;
    ``value``   the value a successful search returned;
    ``existed`` insert's already-present flag;
    ``lost``    True when the operation reported success *because it lost*
                a SNAPSHOT round (outcome LOSE/FINISH): last-writer-wins
                linearizes it next to the concurrent winner, so its own
                effect is never observable — the checker treats it as a
                legal no-op (for insert/update: only while the key is
                present, i.e. the winner has linearized);
    ``required`` False for pending ops (crashed client), which the checker
                may linearize anywhere after invocation or drop.
    """

    kind: str
    key: bytes
    invoked: float
    completed: float
    ok: bool = True
    wrote: Optional[bytes] = None
    value: Optional[bytes] = None
    existed: bool = False
    lost: bool = False
    op_id: int = 0
    required: bool = True

    def __post_init__(self):
        if self.kind not in ("search", "insert", "update", "delete"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.completed < self.invoked:
            raise ValueError("completion precedes invocation")


@dataclass(frozen=True)
class KvViolation:
    """A non-linearizable per-key subhistory, with context for reports."""

    key: bytes
    ops: Tuple[KvOp, ...]

    def __str__(self) -> str:
        lines = [f"key {self.key!r}: no legal linearization of "
                 f"{len(self.ops)} ops:"]
        for op in self.ops:
            outcome = "pending" if not op.required else (
                "ok" if op.ok else
                ("existed" if op.existed else "failed"))
            detail = ""
            if op.kind in ("insert", "update"):
                detail = f" wrote={op.wrote!r}"
            elif op.kind == "search" and op.ok:
                detail = f" -> {op.value!r}"
            lines.append(f"  [{op.invoked:g},{op.completed:g}] "
                         f"{op.kind}{detail} ({outcome})")
        return "\n".join(lines)


def _legal(op: KvOp, state: Optional[bytes]
           ) -> Tuple[bool, Optional[bytes]]:
    """Map semantics: is ``op``'s reported result legal in ``state``
    (the key's current value, None = absent), and the state after it."""
    if op.lost and op.ok:
        # SNAPSHOT last-writer-wins: the op succeeded but lost its round,
        # so its effect was superseded by the concurrent winner before
        # anyone could observe it — a no-op.  A lost insert/update proved
        # the key present (conflict re-check / located slot); a lost
        # delete may have lost to another delete, so it is always legal.
        if op.kind == "delete":
            return True, state
        return state is not None, state
    if op.kind == "search":
        if op.ok:
            return (state is not None and op.value == state), state
        return state is None, state
    if op.kind == "insert":
        if op.ok:
            return state is None, op.wrote
        # A failed insert must be due to the key existing.
        return (op.existed and state is not None), state
    if op.kind == "update":
        if op.ok:
            return state is not None, op.wrote
        return state is None, state
    # delete.  Success is *idempotent*: a DELETE's v_new is the null slot
    # word, which aliases the empty slot, so a deleter whose CAS raced a
    # completed concurrent delete sees every replica already holding its
    # target value and (correctly, per SNAPSHOT's rules) reports a win.
    # The spec is therefore "ok means the key is absent afterwards", legal
    # from either state; a failed delete proved the key absent at locate
    # time.
    if op.ok:
        return True, None
    return state is None, state


def _segments(ops: Sequence[KvOp]) -> List[List[KvOp]]:
    """Split a per-key history at quiescent cuts.

    Sorted by invocation, a cut falls wherever every earlier op
    completed *strictly* before every later op invoked: real time then
    totally orders the two sides, so any linearization of the whole
    history is a linearization of the left segment followed by one of
    the right (and vice versa, threading the key's state across the
    cut).  Pending ops (``completed == inf``) glue everything after
    their invocation into one final segment, so only the last segment
    can ever contain them.
    """
    ordered = sorted(ops, key=lambda o: (o.invoked, o.completed))
    segments: List[List[KvOp]] = []
    current: List[KvOp] = []
    frontier = -math.inf
    for op in ordered:
        if current and frontier < op.invoked:
            segments.append(current)
            current = []
        current.append(op)
        if op.completed > frontier:
            frontier = op.completed
    if current:
        segments.append(current)
    return segments


def _segment_guard(n: int) -> None:
    if n > 63:
        raise ValueError(
            f"per-key concurrent burst too large for the bitmask "
            f"checker ({n} overlapping ops)")


def _final_states(ops: Sequence[KvOp], initial: Optional[bytes],
                  max_states: int) -> Set[Optional[bytes]]:
    """All states a complete linearization of ``ops`` can leave the key
    in (empty set = no legal linearization).  Only called on non-final
    segments, where every op is required and completed."""
    n = len(ops)
    _segment_guard(n)
    full = (1 << n) - 1
    seen: Set[Tuple[int, Optional[bytes]]] = set()
    finals: Set[Optional[bytes]] = set()
    states = 0

    def candidates(done_mask: int) -> List[int]:
        pending = [i for i in range(n) if not done_mask & (1 << i)]
        if not pending:
            return []
        min_completed = min(ops[i].completed for i in pending)
        return [i for i in pending if ops[i].invoked <= min_completed]

    def search(done_mask: int, state: Optional[bytes]) -> None:
        nonlocal states
        if done_mask == full:
            finals.add(state)
            return
        key = (done_mask, state)
        if key in seen:
            return
        seen.add(key)
        states += 1
        if states > max_states:
            raise RuntimeError("kv linearizability search exploded")
        for i in candidates(done_mask):
            ok, next_state = _legal(ops[i], state)
            if ok:
                search(done_mask | (1 << i), next_state)

    search(0, initial)
    return finals


def _segment_linearizable(ops: Sequence[KvOp], initial: Optional[bytes],
                          max_states: int) -> bool:
    n = len(ops)
    if n == 0:
        return True
    _segment_guard(n)
    all_required = 0
    for i, op in enumerate(ops):
        if op.required:
            all_required |= 1 << i
    seen: Set[Tuple[int, Optional[bytes]]] = set()
    states = 0

    def candidates(done_mask: int) -> List[int]:
        pending = [i for i in range(n) if not done_mask & (1 << i)]
        if not pending:
            return []
        min_completed = min(ops[i].completed for i in pending)
        return [i for i in pending if ops[i].invoked <= min_completed]

    def search(done_mask: int, state: Optional[bytes]) -> bool:
        nonlocal states
        if done_mask & all_required == all_required:
            return True
        key = (done_mask, state)
        if key in seen:
            return False
        seen.add(key)
        states += 1
        if states > max_states:
            raise RuntimeError("kv linearizability search exploded")
        for i in candidates(done_mask):
            ok, next_state = _legal(ops[i], state)
            if ok and search(done_mask | (1 << i), next_state):
                return True
        return False

    return search(0, initial)


def _check_partition(ops: Sequence[KvOp], initial: Optional[bytes],
                     max_states: int) -> bool:
    """Check one per-key subhistory, decomposed at quiescent cuts.

    Long paced histories (production traffic scenarios run thousands of
    ops against a hot key) are mostly sequential; the bitmask search
    only ever sees one concurrent burst at a time, so its 63-op cap
    applies to genuine overlap, not run length.  The set of states a
    burst can legally end in is threaded into the next burst.
    """
    if not ops:
        return True
    segments = _segments(ops)
    possible: Set[Optional[bytes]] = {initial}
    for segment in segments[:-1]:
        reached: Set[Optional[bytes]] = set()
        for state in possible:
            reached |= _final_states(segment, state, max_states)
        if not reached:
            return False
        possible = reached
    return any(_segment_linearizable(segments[-1], state, max_states)
               for state in sorted(possible,
                                   key=lambda s: (s is None, s)))


def check_kv_linearizable(
        ops: Sequence[KvOp],
        initial: Optional[Dict[bytes, bytes]] = None,
        max_states: int = 2_000_000) -> Optional[KvViolation]:
    """Check a concurrent whole-store history against map semantics.

    Returns ``None`` when the history is linearizable, else a
    :class:`KvViolation` naming the first key whose subhistory admits no
    legal total order.  ``initial`` seeds per-key starting values (keys
    absent from it start empty).

    Pending operations (``required=False``) may be linearized anywhere
    after their invocation or dropped; pending searches are ignored.
    """
    initial = initial or {}
    partitions: Dict[bytes, List[KvOp]] = {}
    for op in ops:
        if not op.required and op.kind == "search":
            continue
        partitions.setdefault(op.key, []).append(op)
    for key in sorted(partitions):
        part = partitions[key]
        if not _check_partition(part, initial.get(key), max_states):
            return KvViolation(key=key, ops=tuple(
                sorted(part, key=lambda o: (o.invoked, o.completed))))
    return None
