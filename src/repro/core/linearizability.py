"""A linearizability checker for replicated-slot histories (Appendix A).

The paper verifies SNAPSHOT with TLA+; here we mechanically check the same
safety property on *actual executions*: a history of READ/WRITE operations
on one replicated slot is linearizable iff there is a total order of the
operations that (1) respects real-time precedence and (2) is legal for a
register — every read returns the most recently written value.

The checker is the classical Wing & Gong search with memoisation on
(set of linearized ops, current register value), which is exact and fast
for the history sizes our protocol tests produce (well under ~25
operations per slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

__all__ = ["Op", "History", "check_linearizable"]


@dataclass(frozen=True)
class Op:
    """One completed operation on the replicated slot."""

    kind: str          # "r" or "w"
    value: int         # value written, or value returned by the read
    invoked: float
    completed: float
    op_id: int = 0

    def __post_init__(self):
        if self.kind not in ("r", "w"):
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.completed < self.invoked:
            raise ValueError("completion precedes invocation")


@dataclass
class History:
    """A mutable collection of operations, with recording helpers."""

    initial_value: int = 0
    ops: List[Op] = field(default_factory=list)
    _next_id: int = 0

    def record(self, kind: str, value: int, invoked: float,
               completed: float) -> Op:
        op = Op(kind=kind, value=value, invoked=invoked,
                completed=completed, op_id=self._next_id)
        self._next_id += 1
        self.ops.append(op)
        return op

    def __len__(self) -> int:
        return len(self.ops)


def check_linearizable(history: History,
                       max_states: int = 2_000_000) -> bool:
    """True iff the history linearizes against register semantics.

    Raises ``RuntimeError`` if the search exceeds ``max_states`` explored
    states (never observed for protocol-test-sized histories).
    """
    ops = history.ops
    n = len(ops)
    if n == 0:
        return True
    if n > 63:
        raise ValueError("history too large for the bitmask checker")

    # precedence: op i must come before op j if resp(i) < inv(j)
    all_mask = (1 << n) - 1
    seen: Set[Tuple[int, int]] = set()
    states = 0

    def candidates(done_mask: int) -> List[int]:
        """Ops that may be linearized next: not done, and no *other*
        pending op completes strictly before their invocation."""
        pending = [i for i in range(n) if not done_mask & (1 << i)]
        if not pending:
            return []
        min_completed = min(ops[i].completed for i in pending)
        return [i for i in pending if ops[i].invoked <= min_completed]

    def search(done_mask: int, value: int) -> bool:
        nonlocal states
        if done_mask == all_mask:
            return True
        key = (done_mask, value)
        if key in seen:
            return False
        seen.add(key)
        states += 1
        if states > max_states:
            raise RuntimeError("linearizability search exploded")
        for i in candidates(done_mask):
            op = ops[i]
            if op.kind == "r":
                if op.value != value:
                    continue
                if search(done_mask | (1 << i), value):
                    return True
            else:
                if search(done_mask | (1 << i), op.value):
                    return True
        return False

    return search(0, history.initial_value)
