"""The adaptive client-side index cache (§4.6).

For each cached key the client remembers the slot it lives in and the KV
block address the slot pointed to.  On a hit, UPDATE/DELETE/SEARCH read
the KV pair *in parallel* with the primary-slot read (one RTT saved); the
KV pair carries an invalidation bit so readers can detect that a writer
has since replaced it.

Fetching an invalidated pair wastes bandwidth, so the cache is *adaptive*:
per key it tracks ``invalid_ratio = invalid_count / access_count`` and
bypasses itself for keys whose ratio exceeds a threshold (write-intensive
keys).  The ratio self-heals when a key turns read-intensive because the
access counter keeps growing while the invalid counter stalls.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from .race import SlotRef

__all__ = ["AdaptiveIndexCache", "CacheEntry", "CacheStats"]


@dataclass
class CacheEntry:
    slot_ref: SlotRef
    slot_word: int      # last observed slot content (fp | len | pointer)
    access_count: int = 0
    invalid_count: int = 0

    @property
    def invalid_ratio(self) -> float:
        if self.access_count == 0:
            return 0.0
        return self.invalid_count / self.access_count


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    invalidations: int = 0
    evictions: int = 0


class AdaptiveIndexCache:
    """LRU cache of key -> (slot, KV address) with adaptive bypass."""

    def __init__(self, capacity: int = 65536, threshold: float = 0.5,
                 enabled: bool = True):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 <= threshold:
            raise ValueError("threshold must be non-negative")
        self.capacity = capacity
        self.threshold = threshold
        self.enabled = enabled
        self.stats = CacheStats()
        self._entries: "OrderedDict[bytes, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def lookup(self, key: bytes) -> Optional[CacheEntry]:
        """Return the entry to use for this access, or ``None`` on a miss
        or adaptive bypass (see :meth:`lookup_for_access`)."""
        entry, bypassed = self.lookup_for_access(key)
        return None if bypassed else entry

    def lookup_for_access(self, key: bytes):
        """Returns ``(entry, bypassed)``.

        A *bypassed* access still has the cached slot address available —
        the adaptive scheme only skips the parallel KV-pair fetch that
        would likely return an invalidated pair (§4.6).  The access
        counter is bumped in both cases, which is what lets a key's
        invalid ratio decay when it turns read-intensive.
        """
        if not self.enabled:
            return None, False
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None, False
        entry.access_count += 1
        self._entries.move_to_end(key)
        if entry.invalid_ratio > self.threshold:
            self.stats.bypasses += 1
            return entry, True
        self.stats.hits += 1
        return entry, False

    def peek(self, key: bytes) -> Optional[CacheEntry]:
        """Inspect without touching counters or LRU order (tests/recovery)."""
        return self._entries.get(key)

    def record_invalid(self, key: bytes) -> None:
        """The cached KV address turned out to point at an invalidated pair."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.invalid_count += 1
            self.stats.invalidations += 1

    def store(self, key: bytes, slot_ref: SlotRef, slot_word: int) -> None:
        """Install or refresh a mapping after an op observed the slot."""
        if not self.enabled:
            return
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._entries[key] = CacheEntry(slot_ref=slot_ref,
                                            slot_word=slot_word)
        else:
            entry.slot_ref = slot_ref
            entry.slot_word = slot_word
            self._entries.move_to_end(key)

    def drop(self, key: bytes) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
