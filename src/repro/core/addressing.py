"""The 48-bit global address space and its region layout (§4.4).

FUSEE shards memory into fixed-size *regions*, each replicated on ``r``
memory nodes chosen by consistent hashing (primary first).  A 48-bit global
address is::

    | region id (high bits) | offset within region (low bits) |

Every region replica has the same internal layout, so a global address
translates to a local offset on each replica MN with pure arithmetic —
no metadata server involved, which is the whole point of the design::

    +------------------+--------------------+---------------------------+
    | block alloc table| per-block bitmaps  | block 0 | block 1 | ...   |
    +------------------+--------------------+---------------------------+

* The block-allocation table records, per coarse-grained block, which
  client owns it (CID) — written by the MN on ALLOC and read by the master
  during crashed-client recovery (§5.3).
* Each block is preceded (logically; physically the bitmaps are grouped in
  one array for alignment) by a *free bitmap*: one bit per
  ``min_object_size`` unit; a freeing client sets the bit at the object's
  start with an RDMA_FAA and the owning client reclaims in the background.

The paper uses 2 GB regions and 16 MB blocks; the defaults here are scaled
down so simulations stay small, and are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .ring import ConsistentHashRing

__all__ = ["RegionConfig", "RegionLayout", "RegionMap", "GLOBAL_ADDR_BITS"]

GLOBAL_ADDR_BITS = 48
BLOCK_TABLE_ENTRY = 8


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class RegionConfig:
    """Geometry of a region (paper: 2 GB regions, 16 MB blocks)."""

    region_size: int = 1 << 22      # 4 MB in simulation (paper: 2 GB)
    block_size: int = 1 << 16       # 64 KB in simulation (paper: 16 MB)
    min_object_size: int = 64       # smallest slab size class

    def __post_init__(self):
        for name in ("region_size", "block_size", "min_object_size"):
            if not _is_pow2(getattr(self, name)):
                raise ValueError(f"{name} must be a power of two")
        if self.block_size > self.region_size:
            raise ValueError("block_size exceeds region_size")
        if self.min_object_size > self.block_size:
            raise ValueError("min_object_size exceeds block_size")

    @property
    def region_shift(self) -> int:
        return self.region_size.bit_length() - 1

    @property
    def offset_mask(self) -> int:
        return self.region_size - 1


class RegionLayout:
    """Pure arithmetic over the intra-region layout."""

    def __init__(self, config: RegionConfig):
        self.config = config
        self.bitmap_bytes_per_block = config.block_size // config.min_object_size // 8
        # Solve for the number of blocks that fit with their table entries
        # and bitmaps inside the region.
        per_block = (config.block_size + BLOCK_TABLE_ENTRY
                     + self.bitmap_bytes_per_block)
        self.n_blocks = config.region_size // per_block
        if self.n_blocks < 1:
            raise ValueError("region too small for a single block")
        self.table_offset = 0
        self.bitmap_offset = self.n_blocks * BLOCK_TABLE_ENTRY
        data_offset = self.bitmap_offset + self.n_blocks * self.bitmap_bytes_per_block
        # Align data to the min object size for tidy pointer math.
        align = config.min_object_size
        self.data_offset = (data_offset + align - 1) // align * align

    def block_table_entry_offset(self, block_index: int) -> int:
        self._check_block(block_index)
        return self.table_offset + block_index * BLOCK_TABLE_ENTRY

    def bitmap_offset_of(self, block_index: int) -> int:
        self._check_block(block_index)
        return self.bitmap_offset + block_index * self.bitmap_bytes_per_block

    def block_offset(self, block_index: int) -> int:
        self._check_block(block_index)
        return self.data_offset + block_index * self.config.block_size

    def block_index_of(self, region_offset: int) -> int:
        if region_offset < self.data_offset:
            raise ValueError(f"offset {region_offset} is in region metadata")
        index = (region_offset - self.data_offset) // self.config.block_size
        self._check_block(index)
        return index

    def object_bit(self, region_offset: int) -> Tuple[int, int]:
        """(bitmap byte offset within region, bit index within byte) for the
        free bit of the object starting at ``region_offset``."""
        block = self.block_index_of(region_offset)
        within = region_offset - self.block_offset(block)
        unit = within // self.config.min_object_size
        byte = self.bitmap_offset_of(block) + unit // 8
        return byte, unit % 8

    def _check_block(self, index: int) -> None:
        if not 0 <= index < self.n_blocks:
            raise IndexError(f"block index {index} out of [0, {self.n_blocks})")


class RegionMap:
    """Placement of replicated regions onto memory nodes.

    Built once at cluster-bootstrap time and distributed to every client
    and the master (the paper's clients learn it from the master during
    initialisation).  Translation is pure arithmetic plus one dict lookup.
    """

    def __init__(self, config: RegionConfig, ring: ConsistentHashRing,
                 replication_factor: int):
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.config = config
        self.layout = RegionLayout(config)
        self.ring = ring
        self.replication_factor = replication_factor
        # Hot-path copies of the config constants: translate()/split()
        # run several times per KV op, and the attribute chain through
        # the (immutable) config is measurable at scale.
        self._shift = config.region_shift
        self._mask = config.offset_mask
        # region id -> ordered [(mn_id, base offset on that MN)], primary first
        self._placement: Dict[int, List[Tuple[int, int]]] = {}
        self._primaries_per_mn: Dict[int, List[int]] = {}

    # -- bootstrap ------------------------------------------------------------
    def place_region(self, region_id: int, carve,
                     mn_ids: Optional[List[int]] = None
                     ) -> List[Tuple[int, int]]:
        """Place one region; ``carve(mn_id, nbytes) -> base``.

        By default the ring chooses the ``r`` replica nodes; pass
        ``mn_ids`` explicitly when growing the pool (a new memory node
        takes the primary so fresh allocations flow to it).  Returns the
        placement (primary first).
        """
        if region_id in self._placement:
            raise ValueError(f"region {region_id} already placed")
        if mn_ids is None:
            mn_ids = self.ring.replicas(region_id, self.replication_factor)
        elif len(mn_ids) != self.replication_factor:
            raise ValueError("explicit placement must name r nodes")
        placement = [(mn_id, carve(mn_id, self.config.region_size))
                     for mn_id in mn_ids]
        self._placement[region_id] = placement
        self._primaries_per_mn.setdefault(mn_ids[0], []).append(region_id)
        return placement

    # -- queries --------------------------------------------------------------
    @property
    def region_ids(self) -> List[int]:
        return sorted(self._placement)

    def primary_regions_of(self, mn_id: int) -> List[int]:
        return list(self._primaries_per_mn.get(mn_id, []))

    def placement(self, region_id: int) -> List[Tuple[int, int]]:
        return list(self._placement[region_id])

    def gaddr(self, region_id: int, region_offset: int) -> int:
        if not 0 <= region_offset < self.config.region_size:
            raise ValueError(f"offset {region_offset} outside region")
        return (region_id << self.config.region_shift) | region_offset

    def split(self, gaddr: int) -> Tuple[int, int]:
        return gaddr >> self._shift, gaddr & self._mask

    def translate(self, gaddr: int) -> List[Tuple[int, int]]:
        """All replica locations of a global address, primary first."""
        offset = gaddr & self._mask
        return [(mn_id, base + offset)
                for mn_id, base in self._placement[gaddr >> self._shift]]

    def translate_alive(self, gaddr: int, alive) -> List[Tuple[int, int]]:
        """Replica locations restricted to MNs in ``alive``."""
        return [(mn, addr) for mn, addr in self.translate(gaddr)
                if mn in alive]

    def translate_primary(self, gaddr: int) -> Tuple[int, int]:
        region_id, offset = self.split(gaddr)
        mn_id, base = self._placement[region_id][0]
        return mn_id, base + offset
