"""Pluggable index-slot replication: the ``ReplicationProtocol`` seam.

FUSEE replicates every 8-byte index slot across ``r`` memory nodes and
keeps the replicas linearizable from the client side only.  *How* is a
protocol decision, and this module makes it pluggable:

* ``snapshot`` — the paper's SNAPSHOT protocol (§4.3, Algorithms 1-2):
  out-of-place values, backup-CAS broadcast, local conflict resolution
  (Rules 1-3), log commit, then a pointer-install CAS on the primary.
* ``sequential`` — the FUSEE-CR ablation (§6.1): CAS replicas one at a
  time; r RTTs, conflicting writers serialize.
* ``swarm`` — SWARM-style in-place replication (PAPERS.md): one CAS
  broadcast to *all* replicas — primary included — in a single doorbell
  batch, so the conflict-free fast path completes in **1 RTT**.

Every strategy implements the same three hooks:

``write(fabric, ref, v_old, v_new, ...)``
    The replicated slot write (a DES generator returning a
    :class:`~repro.core.snapshot.WriteResult`).  Outcome semantics are
    shared: ``won`` means this writer is the round's unique last writer,
    ``LOSE``/``FINISH`` mean the write linearized immediately before the
    winner's (last-writer-wins register semantics), and ``NEED_MASTER``
    escalates to the master through the client's existing seam.
``read(fabric, ref)``
    The slot read (generator returning a
    :class:`~repro.core.snapshot.ReadResult`); ``value=None`` defers to
    the master.
``repair_choice(words, primary_alive)``
    The recovery hook: when the master repairs a subtable after an MN
    crash (Algorithm 3) and the surviving replicas of a slot disagree,
    this picks the index of the word to install everywhere.  SNAPSHOT
    prefers a backup (backups are never older than the committed
    primary); SWARM prefers the primary (the primary CAS *is* the commit
    point, and backups may hold uncommitted loser values).

The SWARM strategy
------------------

SWARM (arxiv 2409.16258) replicates shared disaggregated-memory data in
place with single-round-trip writes ordered by per-slot logical
timestamps.  This port maps the idea onto FUSEE's slot words:

* **Timestamps.**  Slot values are out-of-place object words whose
  48-bit pointer is freshly allocated per operation, so each round's
  committed word is unique — the word itself serves as the slot's
  logical timestamp, and the primary replica always carries the
  authoritative latest one.  (The 8-byte slot layout
  ``fingerprint | length | pointer`` has no spare bits for a separate
  counter; pointer freshness gives the same uniqueness-per-round
  property modulo allocator ABA, the assumption the paper itself makes
  for its CAS installs.)
* **WRITE** (:func:`swarm_write`) — broadcast
  ``CAS(expected=v_old, swap=v_new)`` to *every* replica, primary
  first, in one doorbell batch.  The primary CAS is the commit point:

  - all CASes succeed → ``WIN_SWARM`` in **1 RTT** (the conflict-free
    fast path);
  - primary CAS succeeds but some backups returned a conflicting
    writer's value → we won the round; converge the divergent backups
    with timestamp-guarded ``CAS(observed → v_new)`` (conflict path
    only) → ``WIN_SWARM_FIXUP``.  Each fixup round first re-reads the
    primary and abandons if it moved past ``v_new``: the observed
    conflict can be a *later* round's committed word (our backup CAS
    delivered late), and since any later-round word reaches a backup
    only after that round's primary commit, the guard read — issued
    after the observation — always catches it before the CAS could
    regress the replica;
  - primary CAS fails → another writer committed first; our write
    linearizes immediately before it (``LOSE``, still 1 RTT — swarm
    losers never spin).  Any backup our broadcast polluted was observed
    by the winner's own broadcast and is converged by its fixup;
  - any replica FAIL/TIMEOUT → ``NEED_MASTER`` (the CAS may have
    applied; only the master can resolve the slot, exactly as in
    SNAPSHOT).
* **READ** (:func:`swarm_read`) — read the least-loaded alive *backup*
  and the primary's timestamp word in the same doorbell batch (two
  8-byte READs to different MNs: still 1 RTT).  A value is returned
  only when the backup vouches for the primary's word (the broadcast
  reached both): a word the primary alone holds may still be in flight
  to every backup, and returning it would let a post-crash survivor
  read travel backwards in time.  On a torn mismatch the reader
  re-reads a bounded number of rounds (never repairing the slot itself
  — a reader CAS would race the writer's broadcast), then defers to
  the master.  When the primary is unreachable, a survivor read must
  be complete and unanimous; otherwise defer to the master
  (``value=None`` → the client's ``NEED_MASTER`` escalation).

The protocol functions are looked up dynamically
(``replication_mod.swarm_write``) so the seeded mutations in
:mod:`repro.check.mutations` can patch them per run, mirroring how the
scenarios treat ``snapshot_mod.snapshot_write``.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..rdma import CasOp, Fabric, ReadOp
from . import snapshot as snapshot_mod
from .race import SlotRef
from .snapshot import Outcome, ReadResult, WriteResult

__all__ = [
    "ReplicationProtocol",
    "SnapshotProtocol",
    "SequentialProtocol",
    "SwarmProtocol",
    "REPLICATION_PROTOCOLS",
    "register_protocol",
    "create_protocol",
    "registered_protocols",
    "validate_replication_mode",
    "swarm_write",
    "swarm_read",
]


# --------------------------------------------------------------------------
# The strategy interface + registry
# --------------------------------------------------------------------------

class ReplicationProtocol:
    """One slot-replication strategy; subclasses register by ``name``."""

    #: registry key; set by subclasses
    name: str = ""
    #: does a lost round mean "retry the op from a refreshed v_old"
    #: (chain replication serializes writers) rather than
    #: last-writer-wins "we linearized before the winner"?
    retry_on_lose: bool = False

    def __init__(self, cid: int = 0):
        self.cid = cid

    def write(self, fabric: Fabric, ref: SlotRef, v_old: int, v_new: int,
              on_win: Optional[Callable[[int], object]] = None,
              retry_sleep_us: float = 2.0,
              phase_guard: Optional[Callable[[], object]] = None):
        """Replicated slot write (generator -> WriteResult)."""
        raise NotImplementedError

    def read(self, fabric: Fabric, ref: SlotRef):
        """Slot read (generator -> ReadResult)."""
        raise NotImplementedError

    @staticmethod
    def repair_choice(words: List[int], primary_alive: bool) -> int:
        """Master recovery hook: index of the word to install when the
        surviving replicas of a slot disagree (Algorithm 3 repair)."""
        raise NotImplementedError


REPLICATION_PROTOCOLS: Dict[str, Type[ReplicationProtocol]] = {}


def register_protocol(cls: Type[ReplicationProtocol]
                      ) -> Type[ReplicationProtocol]:
    """Class decorator: add a strategy to the registry under its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no protocol name")
    REPLICATION_PROTOCOLS[cls.name] = cls
    return cls


def registered_protocols() -> List[str]:
    """Sorted names of every registered replication strategy."""
    return sorted(REPLICATION_PROTOCOLS)


def validate_replication_mode(name: str) -> None:
    """Registry-driven config validation: unknown protocols fail with
    the list of registered names."""
    if name not in REPLICATION_PROTOCOLS:
        raise ValueError(
            f"unknown replication mode {name!r}; registered protocols: "
            f"{', '.join(registered_protocols())}")


def create_protocol(name: str, cid: int = 0) -> ReplicationProtocol:
    """Instantiate a registered strategy (per client: strategies may
    keep per-client state such as a read-rotation seed)."""
    validate_replication_mode(name)
    return REPLICATION_PROTOCOLS[name](cid=cid)


# --------------------------------------------------------------------------
# snapshot / sequential: the existing protocols behind the seam
# --------------------------------------------------------------------------

@register_protocol
class SnapshotProtocol(ReplicationProtocol):
    """The paper's SNAPSHOT protocol (§4.3) — the default."""

    name = "snapshot"

    def write(self, fabric, ref, v_old, v_new, on_win=None,
              retry_sleep_us=2.0, phase_guard=None):
        return (yield from snapshot_mod.snapshot_write(
            fabric, ref, v_old, v_new, on_win=on_win,
            retry_sleep_us=retry_sleep_us, phase_guard=phase_guard))

    def read(self, fabric, ref):
        return (yield from snapshot_mod.snapshot_read(fabric, ref))

    @staticmethod
    def repair_choice(words: List[int], primary_alive: bool) -> int:
        # Prefer the first alive *backup*: backups are CASed before the
        # primary install, so they are never older than the committed
        # primary.  Fall back to the primary only with no backup left.
        return 1 if (primary_alive and len(words) > 1) else 0


@register_protocol
class SequentialProtocol(SnapshotProtocol):
    """FUSEE-CR ablation: CAS replicas one at a time (r RTTs)."""

    name = "sequential"
    retry_on_lose = True  # a lost CAS aborts the round; retry the op

    def write(self, fabric, ref, v_old, v_new, on_win=None,
              retry_sleep_us=2.0, phase_guard=None):
        return (yield from snapshot_mod.sequential_write(
            fabric, ref, v_old, v_new, on_win=on_win))


# --------------------------------------------------------------------------
# swarm: 1-RTT in-place broadcast writes
# --------------------------------------------------------------------------

def swarm_write(fabric: Fabric, ref: SlotRef, v_old: int, v_new: int,
                on_win: Optional[Callable[[int], object]] = None,
                retry_sleep_us: float = 2.0,
                max_fixup_rounds: int = 8,
                phase_guard: Optional[Callable[[], object]] = None):
    """SWARM-style replicated write (generator): one CAS broadcast to
    every replica — primary included — in a single doorbell batch.

    The primary CAS is the commit point; see the module docstring for
    the full state machine.  ``on_win`` (the embedded-log commit) runs
    *after* the win is decided — in SWARM the commit happens inside the
    broadcast, so the log write is post-commit durability for the
    crash-recovery path rather than a pre-install barrier.
    """
    if v_old == v_new:
        raise ValueError("out-of-place modification guarantees v_old != v_new")
    locations = ref.locations()  # primary first
    if phase_guard is not None:
        yield from phase_guard()
    fabric.trace_phase("repl.swarm_broadcast")
    comps = yield fabric.post([CasOp(mn, addr, expected=v_old, swap=v_new)
                               for mn, addr in locations])
    rtts = 1
    if any(c.failed for c in comps):
        # A FAIL/TIMEOUT CAS is uncertain — it may have applied with the
        # reply lost.  Never guessed here: the master resolves the slot.
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    primary_comp = comps[0]
    if not primary_comp.cas_succeeded():
        # Another writer's round committed at the primary first.  Ours
        # linearizes immediately before it (last-writer-wins) and — in
        # contrast to SNAPSHOT losers — never waits: the winner is
        # already committed, its value is in primary_comp.value, and any
        # backup our broadcast polluted was observed by the winner's own
        # broadcast returns, so its fixup converges them.
        return WriteResult(Outcome.LOSE, v_old, v_new, primary_comp.value,
                           rtts)
    # We won the round.  Backups whose CAS we lost hold exactly one
    # conflicting writer's value each (per-replica CAS atomicity), and
    # our broadcast returns tell us which — converge them with
    # timestamp-guarded CASes.
    divergent = [(loc, comp.value)
                 for loc, comp in zip(locations[1:], comps[1:])
                 if not comp.cas_succeeded()]
    outcome = Outcome.WIN_SWARM_FIXUP if divergent else Outcome.WIN_SWARM
    primary_mn, primary_addr = ref.primary()
    for _ in range(max_fixup_rounds):
        if not divergent:
            break
        # Guard read BEFORE the fixup CAS, every round.  The conflicting
        # value we observed on a backup is not always same-round debris:
        # our backup CAS can be delivered late, after a *newer* round
        # already committed and converged that replica, and a guarded
        # CAS(seen -> v_new) would then regress it.  Any later-round
        # value lands on a backup happens-after that round's primary
        # commit (its broadcast CAS there requires our round applied
        # first; its fixup runs post-commit), so a primary read issued
        # after the observation must see the newer round — making
        # "primary still holds v_new" a sound licence to CAS.
        if phase_guard is not None:
            yield from phase_guard()
        fabric.trace_phase("repl.swarm_recheck")
        check = yield fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
        rtts += 1
        if check.failed:
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
        if int.from_bytes(check.value, "big") != v_new:
            break  # a later round committed; its winner converges
        if phase_guard is not None:
            yield from phase_guard()
        fabric.trace_phase("repl.swarm_fixup")
        fix_comps = yield fabric.post(
            [CasOp(mn, addr, expected=seen, swap=v_new)
             for (mn, addr), seen in divergent])
        rtts += 1
        if any(c.failed for c in fix_comps):
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
        divergent = [(loc, comp.value)
                     for (loc, _seen), comp in zip(divergent, fix_comps)
                     if not comp.cas_succeeded() and comp.value != v_new]
    else:
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    if on_win is not None:
        yield from on_win(v_old)
        rtts += 1
    return WriteResult(outcome, v_old, v_new, v_new, rtts)


def swarm_read(fabric: Fabric, ref: SlotRef, rotation: int = 0,
               max_validate_rounds: int = 4):
    """SWARM local read (generator): least-loaded backup + the primary
    timestamp word in one doorbell batch (1 RTT fast path).

    ``rotation`` breaks backlog ties deterministically (per reader), so
    an idle fabric still spreads reads over the backups.  The primary
    word is the authoritative timestamp, but it is only *returned* when
    the chosen backup carries the same word — a value vouched for by
    the primary alone may not have reached any backup yet, and
    returning it would let a later primary-crash read travel backwards
    in time.  A mismatch is a torn in-flight broadcast: re-read (the
    lagging CAS is one fabric hop behind) up to ``max_validate_rounds``
    times, then defer to the master rather than guess.  Readers never
    repair slots themselves — a reader CAS would race the writer's own
    broadcast and fixup.

    With the primary unreachable, fall back to a survivor read that
    must be unanimous *and* complete (every alive replica answered) —
    any weaker quorum could miss the one backup that validated an
    already-returned read.
    """
    locations = ref.locations()
    primary = locations[0]
    rtts = 0
    if len(locations) == 1:
        fabric.trace_phase("read.swarm_local")
        comp = yield fabric.post_one(ReadOp(primary[0], primary[1], 8))
        if comp.failed:
            return ReadResult(value=None, from_backups=False, rtts=1)
        return ReadResult(value=int.from_bytes(comp.value, "big"),
                          from_backups=False, rtts=1, validated=True)
    now = fabric.env.now
    backups = [loc for loc in locations[1:]
               if not fabric.node(loc[0]).crashed]
    if backups and not fabric.node(primary[0]).crashed:
        chosen = min(
            enumerate(backups),
            key=lambda pair: (fabric.node(pair[1][0]).tx_backlog(now),
                              (pair[0] + rotation) % len(backups)))[1]
        for _ in range(max_validate_rounds):
            fabric.trace_phase("read.swarm_local")
            comps = yield fabric.post([ReadOp(chosen[0], chosen[1], 8),
                                       ReadOp(primary[0], primary[1], 8)])
            rtts += 1
            if comps[1].failed:
                break  # primary unreachable mid-read: degrade below
            ts_word = int.from_bytes(comps[1].value, "big")
            if (not comps[0].failed
                    and int.from_bytes(comps[0].value, "big") == ts_word):
                return ReadResult(value=ts_word, from_backups=False,
                                  rtts=rtts, validated=True)
        else:
            # Still torn after every round: a conflict storm is in
            # flight; the master (NEED_MASTER seam) resolves the slot.
            return ReadResult(value=None, from_backups=False, rtts=rtts)
    # Degraded: the primary is gone.  Read every alive replica; only a
    # complete, unanimous survivor set is safely committed.
    alive = [loc for loc in locations if not fabric.node(loc[0]).crashed]
    if not alive:
        return ReadResult(value=None, from_backups=True, rtts=rtts)
    fabric.trace_phase("read.swarm_majority")
    comps = yield fabric.post([ReadOp(mn, addr, 8) for mn, addr in alive])
    rtts += 1
    values = {int.from_bytes(c.value, "big") for c in comps if not c.failed}
    if len(values) == 1 and not any(c.failed for c in comps):
        return ReadResult(value=values.pop(), from_backups=True, rtts=rtts)
    return ReadResult(value=None, from_backups=True, rtts=rtts)


@register_protocol
class SwarmProtocol(ReplicationProtocol):
    """SWARM-style in-place replication: 1-RTT conflict-free writes."""

    name = "swarm"

    def write(self, fabric, ref, v_old, v_new, on_win=None,
              retry_sleep_us=2.0, phase_guard=None):
        # Dynamic lookup so repro.check.mutations can patch swarm_write.
        return (yield from _MODULE.swarm_write(
            fabric, ref, v_old, v_new, on_win=on_win,
            retry_sleep_us=retry_sleep_us, phase_guard=phase_guard))

    def read(self, fabric, ref):
        result = yield from _MODULE.swarm_read(fabric, ref,
                                               rotation=self.cid)
        return result

    @staticmethod
    def repair_choice(words: List[int], primary_alive: bool) -> int:
        # The primary CAS is the commit point, so the primary's word is
        # authoritative whenever it survived; backups may hold a loser's
        # never-committed value.  Without the primary, install the
        # majority word among the survivors (first index on ties).
        if primary_alive or len(words) == 1:
            return 0
        target, _count = Counter(words).most_common(1)[0]
        return words.index(target)


import sys as _sys  # noqa: E402  (after definitions: self-module handle)

_MODULE = _sys.modules[__name__]
