"""Cluster bootstrap and the public FUSEE API.

:class:`ClusterConfig` describes a whole deployment; :class:`FuseeCluster`
builds it — memory nodes, the consistent-hashing ring, replicated regions,
the replicated RACE index, the per-client metadata table, MN-side block
allocators, and the master — and hands out clients.

:class:`FuseeKV` is the synchronous façade for applications and examples:
each call drives the simulation until the operation completes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..rdma import Fabric, FabricConfig, MemoryNode
from ..sim import Environment, NicProfile
from .addressing import RegionConfig, RegionMap
from .client import ClientConfig, FuseeClient
from .master import Master, MasterConfig
from .memory import ClientTable, MnBlockAllocator, size_classes_for
from .race import RaceConfig, RaceHashing
from .ring import ConsistentHashRing

__all__ = ["ClusterConfig", "FuseeCluster", "FuseeKV"]

# Key-space offset separating index-subtable ring keys from region ring keys.
_SUBTABLE_RING_BASE = 1 << 40


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to stand up a FUSEE deployment."""

    n_memory_nodes: int = 2
    replication_factor: int = 2        # data AND index replicas (r)
    index_replication: Optional[int] = None  # override index replicas only
    regions_per_mn: int = 4            # primary regions per memory node
    max_clients: int = 256
    region: RegionConfig = field(default_factory=RegionConfig)
    race: RaceConfig = field(default_factory=RaceConfig)
    fabric: FabricConfig = field(default_factory=FabricConfig)
    nic: NicProfile = field(default_factory=NicProfile)
    master: MasterConfig = field(default_factory=MasterConfig)
    client: ClientConfig = field(default_factory=ClientConfig)
    mn_cpu_cores: int = 2
    # Multi-queue memory nodes: rx/tx NIC port pairs per MN and
    # independent RPC-serving CPU shards.  1/1 (the default) is the
    # paper-faithful single-queue node, byte-identical to older traces.
    nic_ports: int = 1
    rpc_shards: int = 1
    largest_object: Optional[int] = None
    virtual_nodes: int = 64
    # carve headroom per node for pool growth: backup replicas of regions
    # added with add_memory_node() land on existing nodes
    growth_headroom_regions: int = 2

    def __post_init__(self):
        if self.n_memory_nodes < 1:
            raise ValueError("need at least one memory node")
        if not 1 <= self.replication_factor <= self.n_memory_nodes:
            raise ValueError("replication factor must be in "
                             "[1, n_memory_nodes]")
        idx_r = self.index_replication
        if idx_r is not None and not 1 <= idx_r <= self.n_memory_nodes:
            raise ValueError("index replication must be in "
                             "[1, n_memory_nodes]")
        if self.nic_ports < 1:
            raise ValueError("nic_ports must be >= 1")
        if self.rpc_shards < 1:
            raise ValueError("rpc_shards must be >= 1")

    @property
    def index_replicas(self) -> int:
        return self.index_replication or self.replication_factor


class FuseeCluster:
    """A running deployment: memory pool + master + client factory."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 env: Optional[Environment] = None, tracer=None):
        self.config = config or ClusterConfig()
        self.env = env or Environment()
        cfg = self.config
        self.size_classes = size_classes_for(cfg.region.min_object_size,
                                             cfg.region.block_size,
                                             cfg.largest_object)
        self.fabric = Fabric(self.env, cfg.fabric, tracer=tracer)
        self.ring = ConsistentHashRing(range(cfg.n_memory_nodes),
                                       virtual_nodes=cfg.virtual_nodes)
        self._build_memory_pool()
        self._build_index()
        self._build_client_table()
        self._build_allocators()
        from .replication import create_protocol
        self.master = Master(self.env, self.fabric, self.region_map,
                             self.race, self.client_table, self.size_classes,
                             cfg.master,
                             replication=create_protocol(
                                 cfg.client.replication_mode))
        self.master.subtable_allocator = self._allocate_subtable
        self.master.start()
        self._cids = itertools.count(1)
        self.clients: List[FuseeClient] = []

    # ------------------------------------------------------------- bootstrap
    def _build_memory_pool(self) -> None:
        cfg = self.config
        n_regions = cfg.regions_per_mn * cfg.n_memory_nodes
        # First pass: compute placements to size each node's memory exactly.
        placements = {rid: self.ring.replicas(rid, cfg.replication_factor)
                      for rid in range(n_regions)}
        region_bytes: Dict[int, int] = {mn: 0 for mn in
                                        range(cfg.n_memory_nodes)}
        for mn_ids in placements.values():
            for mn in mn_ids:
                region_bytes[mn] += cfg.region.region_size
        index_bytes = cfg.race.subtable_bytes * cfg.race.n_subtables
        table_bytes = ClientTable.table_bytes(cfg.max_clients,
                                              len(self.size_classes))
        # headroom: room to double the index via extendible splits, plus
        # backup replicas of future pool-growth regions
        slack = ((1 << 16) + 2 * index_bytes
                 + cfg.growth_headroom_regions * cfg.region.region_size)
        for mn_id in range(cfg.n_memory_nodes):
            capacity = (region_bytes[mn_id] + index_bytes + table_bytes
                        + slack)
            node = MemoryNode(self.env, mn_id, capacity,
                              nic_profile=cfg.nic,
                              cpu_cores=cfg.mn_cpu_cores,
                              num_ports=cfg.nic_ports,
                              rpc_shards=cfg.rpc_shards)
            self.fabric.add_node(node)
        self.region_map = RegionMap(cfg.region, self.ring,
                                    cfg.replication_factor)
        for rid in range(n_regions):
            self.region_map.place_region(
                rid, lambda mn, nbytes: self.fabric.node(mn).carve(nbytes))

    def _build_index(self) -> None:
        cfg = self.config
        placements = {}
        for subtable in range(cfg.race.n_subtables):
            mn_ids = self.ring.replicas(_SUBTABLE_RING_BASE + subtable,
                                        cfg.index_replicas)
            placements[subtable] = [
                (mn, self.fabric.node(mn).carve(cfg.race.subtable_bytes))
                for mn in mn_ids]
        self.race = RaceHashing(cfg.race, placements)

    def _build_client_table(self) -> None:
        cfg = self.config
        nbytes = ClientTable.table_bytes(cfg.max_clients,
                                         len(self.size_classes))
        bases = {mn_id: self.fabric.node(mn_id).carve(nbytes)
                 for mn_id in range(cfg.n_memory_nodes)}
        self.client_table = ClientTable(bases, cfg.max_clients,
                                        len(self.size_classes))

    def _build_allocators(self) -> None:
        self.mn_allocators = {
            mn_id: MnBlockAllocator(self.fabric.node(mn_id), self.region_map,
                                    self.fabric.nodes)
            for mn_id in range(self.config.n_memory_nodes)}

    # ------------------------------------------------------- pool elasticity
    def add_memory_node(self, regions: Optional[int] = None) -> int:
        """Grow the memory pool at runtime (the DM elasticity promise).

        Creates a memory node, joins it to the ring, replicates the
        client table onto it, and places ``regions`` fresh regions with
        their primary there so new allocations flow to the new capacity.
        Existing data is untouched (consistent hashing moves nothing).
        Returns the new node id.
        """
        cfg = self.config
        regions = cfg.regions_per_mn if regions is None else regions
        mn_id = max(self.fabric.nodes) + 1
        index_bytes = cfg.race.subtable_bytes * cfg.race.n_subtables
        table_bytes = ClientTable.table_bytes(cfg.max_clients,
                                              len(self.size_classes))
        capacity = (regions * cfg.region.region_size
                    * cfg.replication_factor
                    + 2 * index_bytes + table_bytes + (1 << 16))
        node = MemoryNode(self.env, mn_id, capacity,
                          nic_profile=cfg.nic, cpu_cores=cfg.mn_cpu_cores,
                          num_ports=cfg.nic_ports,
                          rpc_shards=cfg.rpc_shards)
        self.fabric.add_node(node)
        self.ring.add_node(mn_id)
        # replicate the client table (copy current contents from an alive MN)
        base = node.carve(table_bytes)
        for src_mn, src_base in self.client_table.bases.items():
            src_node = self.fabric.node(src_mn)
            if not src_node.crashed:
                node.memory[base:base + table_bytes] = \
                    src_node.memory[src_base:src_base + table_bytes]
                break
        self.client_table.bases[mn_id] = base
        # fresh regions: primary on the new node, backups via the ring —
        # preferring nodes with enough carve headroom left
        next_region = max(self.region_map.region_ids, default=-1) + 1

        def headroom(mn):
            other = self.fabric.node(mn)
            return other.capacity - other._carve_cursor

        for rid in range(next_region, next_region + regions):
            candidates = [mn for mn in self.ring.replicas(
                rid, len(self.fabric.nodes)) if mn != mn_id]
            candidates.sort(key=lambda mn: -headroom(mn))
            backups = [mn for mn in candidates
                       if headroom(mn) >= cfg.region.region_size
                       ][:cfg.replication_factor - 1]
            if len(backups) < cfg.replication_factor - 1:
                raise MemoryError(
                    "existing nodes lack carve headroom for backup "
                    "replicas; raise growth_headroom_regions")
            self.region_map.place_region(
                rid, lambda mn, nbytes: self.fabric.node(mn).carve(nbytes),
                mn_ids=[mn_id] + backups)
        self.mn_allocators[mn_id] = MnBlockAllocator(
            node, self.region_map, self.fabric.nodes)
        # a node joining mid-campaign lives on the same imperfect fabric
        self.mn_allocators[mn_id].injector = self.fabric.injector
        return mn_id

    def grow_pool(self, regions: Optional[int] = None):
        """Timed pool growth (generator): the elasticity cost model.

        :meth:`add_memory_node` is deliberately instantaneous — it
        answers *what* a grow changes.  This process answers *what it
        costs*, splitting rebalance time into its two phases and
        emitting a tracer span per phase so the profiler can attribute
        them (``fig21_elasticity --saturate``):

        * ``rebalance.snapshot_window`` — the read-only quiesce: the
          master holds writers off placement changes for one lease
          (``MasterConfig.lease_us``) while the region map snapshot is
          taken, exactly the barrier an index split pays.
        * ``rebalance.copy`` — streaming the client-table replica and
          the index subtable images onto the new node at the NIC's line
          rate.

        The actual metadata mutation then reuses
        :meth:`add_memory_node` unchanged.  Returns the new node id.
        """
        cfg = self.config
        n_regions = cfg.regions_per_mn if regions is None else regions
        tracer = self.fabric.tracer
        traced = tracer is not None and getattr(tracer, "enabled", False)
        parent = tracer.begin_span("rebalance.grow", -1) if traced else None

        span = (tracer.begin_span("rebalance.snapshot_window", -1)
                if traced else None)
        yield self.env.timeout(self.master.config.lease_us)
        if span is not None:
            tracer.end_span(span, ok=True)

        table_bytes = ClientTable.table_bytes(cfg.max_clients,
                                              len(self.size_classes))
        index_bytes = cfg.race.subtable_bytes * cfg.race.n_subtables
        copy_bytes = table_bytes + index_bytes
        gbps = cfg.nic.bandwidth_gbps
        copy_us = (copy_bytes * 8.0 / (gbps * 1e3)
                   if gbps not in (0, float("inf")) else 0.0)
        span = tracer.begin_span("rebalance.copy", -1) if traced else None
        if copy_us > 0.0:
            yield self.env.timeout(copy_us)
        if span is not None:
            tracer.end_span(span, ok=True)

        mn_id = self.add_memory_node(n_regions)
        if parent is not None:
            tracer.end_span(parent, ok=True)
        return mn_id

    def _allocate_subtable(self, new_id: int, n_replicas: int):
        """Carve a fresh replicated subtable for an index split."""
        mn_ids = [mn for mn in self.ring.replicas(
            _SUBTABLE_RING_BASE + new_id, min(n_replicas,
                                              len(self.fabric.alive_nodes())))
                  if not self.fabric.node(mn).crashed]
        if not mn_ids:
            mn_ids = self.fabric.alive_nodes()[:n_replicas]
        if not mn_ids:
            raise MemoryError("no alive memory node for a new subtable")
        return [(mn, self.fabric.node(mn).carve(
            self.config.race.subtable_bytes)) for mn in mn_ids]

    # ------------------------------------------------------------- clients
    def new_client(self, config: Optional[ClientConfig] = None,
                   **overrides) -> FuseeClient:
        """Create a client; keyword overrides patch the cluster default
        client config (e.g. ``cache_enabled=False`` for FUSEE-NC)."""
        base = config or self.config.client
        if overrides:
            base = replace(base, **overrides)
        cid = next(self._cids)
        # Each client posts through its own queue pair: the QP-bound
        # fabric view stamps the client's identity on every verb/RPC so
        # multi-queue port affinity can hash it onto a NIC port.
        client = FuseeClient(self.env, self.fabric.bind_qp(cid),
                             self.region_map,
                             self.race, self.client_table,
                             cid=cid,
                             size_classes=self.size_classes,
                             master=self.master, config=base)
        monitor = getattr(self, "_monitor", None)
        if monitor is not None and monitor.wants_keys:
            client.key_hook = monitor.on_key
        self.clients.append(client)
        return client

    def revive_client(self, crashed: FuseeClient, state) -> FuseeClient:
        """Restart a crashed client with recovered allocator state."""
        client = self.new_client(config=crashed.config)
        for region_id, block, class_idx in state.blocks:
            client.allocator.adopt_recovered(
                region_id, block, class_idx,
                state.free_lists.get(class_idx, []),
                state.heads.get(class_idx, 0),
                state.last_allocs.get(class_idx, 0))
        return client

    def attach_tracer(self, tracer) -> None:
        """Attach (or swap) an observability tracer on the running fabric."""
        if tracer.env is None:
            tracer.env = self.env
        self.fabric.tracer = tracer
        monitor = getattr(self, "_monitor", None)
        if monitor is not None and tracer.enabled:
            tracer.monitor = monitor

    def attach_monitor(self, monitor):
        """Attach (or detach, with ``None``) an online telemetry monitor.

        Wires the fabric service/drop hooks, the tracer span hook and
        the per-client key-touch hook, then starts the monitor's
        pane-boundary evaluation process (docs/monitoring.md).  Returns
        the monitor.
        """
        if monitor is None:
            self.fabric.monitor = None
            tracer = self.fabric.tracer
            if getattr(tracer, "monitor", None) is not None:
                tracer.monitor = None
            for client in self.clients:
                client.key_hook = None
            self._monitor = None
            return None
        self._monitor = monitor
        self.fabric.monitor = monitor
        tracer = self.fabric.tracer
        if tracer.enabled:
            tracer.monitor = monitor
        hook = monitor.on_key if monitor.wants_keys else None
        for client in self.clients:
            client.key_hook = hook
        monitor.start()
        return monitor

    # --------------------------------------------------------------- faults
    def install_faults(self, plan, retry=None):
        """Install a fault plan (or a prebuilt injector) on the cluster.

        Wires the injector into the fabric (verb/RPC delivery), the master
        (RPC idempotency dedup), and every MN block allocator (replica
        mirror writes honour partitions).  ``retry`` overrides the client
        retry policy.  Pass ``None`` to uninstall.  Returns the injector.
        """
        from ..faults.model import FaultInjector, FaultPlan

        if plan is None:
            injector = None
        elif isinstance(plan, FaultInjector):
            injector = plan
            if retry is not None:
                injector.retry = retry
        else:
            if not isinstance(plan, FaultPlan):
                raise TypeError(f"expected FaultPlan or FaultInjector, "
                                f"got {type(plan).__name__}")
            injector = FaultInjector(plan, retry=retry)
        self.fabric.injector = injector
        self.master.fault_injector = injector
        for allocator in self.mn_allocators.values():
            allocator.injector = injector
        return injector

    def clear_faults(self):
        """Remove any installed fault injector (the fabric heals)."""
        self.install_faults(None)

    # -------------------------------------------------------------- helpers
    def crash_memory_node(self, mn_id: int) -> None:
        self.fabric.node(mn_id).crash()

    def run(self, until=None):
        return self.env.run(until=until)

    def run_op(self, generator, fast: bool = True):
        """Drive one client operation to completion; returns its result.

        ``fast=True`` (the default) asserts the kernel's fast drain loop
        is eligible — no controlled scheduler, profiler, or access hook
        installed — so a bed that accidentally left a hook active fails
        loudly instead of silently running an order of magnitude slower.
        Pass ``fast=False`` for checked/profiled runs where the hook is
        the point.
        """
        if fast:
            self.env.require_fast()
        return self.env.run(until=self.env.process(generator))


class FuseeKV:
    """Synchronous single-client façade over a cluster.

    The quickest way to use the store::

        kv = FuseeKV()
        kv.insert(b"k", b"v")
        assert kv.search(b"k") == b"v"
    """

    def __init__(self, config: Optional[ClusterConfig] = None,
                 cluster: Optional[FuseeCluster] = None):
        self.cluster = cluster or FuseeCluster(config)
        self.client = self.cluster.new_client()

    def insert(self, key: bytes, value: bytes) -> bool:
        """Insert a new key; False if it already exists."""
        result = self._run(self.client.insert(key, value))
        return result.ok

    def search(self, key: bytes) -> Optional[bytes]:
        """Return the key's value, or None if absent."""
        result = self._run(self.client.search(key))
        return result.value if result.ok else None

    def update(self, key: bytes, value: bytes) -> bool:
        """Replace an existing key's value; False if the key is absent."""
        result = self._run(self.client.update(key, value))
        return result.ok

    def delete(self, key: bytes) -> bool:
        """Remove a key; False if it was absent."""
        result = self._run(self.client.delete(key))
        return result.ok

    def maintenance(self) -> int:
        """Run one background free/reclaim cycle; returns objects reclaimed."""
        return self._run(self.client.maintenance())

    @property
    def now_us(self) -> float:
        return self.cluster.env.now

    def _run(self, generator):
        return self.cluster.run_op(generator)
