"""The FUSEE client: SEARCH / INSERT / UPDATE / DELETE (§4, Fig. 9).

Each operation is a DES generator composed of *phases*; every phase posts
one doorbell batch (1 RTT), reproducing the paper's RTT counts:

* INSERT — ① write KV to all data replicas + read primary combined
  buckets; ② CAS backup slots; ③ commit old value into the embedded log;
  ④ CAS primary slot.
* UPDATE / DELETE — ① write KV (or the DELETE temp object) + read the
  primary slot + (cache hit) read the KV pair in parallel; ②-④ as above.
* SEARCH — ① read primary slot + cached KV pair in parallel; ② read the
  KV pair on a miss/invalidation.

Index replication is pluggable: the SNAPSHOT protocol (default) or
sequential CAS replication (the FUSEE-CR ablation).  Disabling the cache
yields FUSEE-NC.  Crash points ``c0``-``c3`` (Fig. 9) can be armed to
leave real partial state behind for the recovery path (§5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rdma import CasOp, Fabric, ReadOp, TIMEOUT, WriteOp
from .addressing import RegionMap
from .cache import AdaptiveIndexCache, CacheEntry
from .memory import AllocResult, ClientAllocator, ClientTable
from .oplog import clear_used_ops, commit_old_value_ops, entry_for_alloc
from .race import IndexFullError, KeyMeta, RaceHashing, SlotRef
from .readpolicy import READ_SPREAD_MODES, ReplicaReadPolicy
from .replication import create_protocol, validate_replication_mode
# snapshot_write/sequential_write are re-exported for backwards
# compatibility (repro.check.mutations patches them by name here too).
from .snapshot import Outcome, snapshot_write, sequential_write  # noqa: F401
from .wire import (
    FLAG_INVALID,
    LOG_ENTRY_SIZE,
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    decode_kv_payload,
    encode_kv_body,
    encode_log_entry,
    kv_block_size,
    kv_len_units,
    pack_slot,
    unpack_slot,
)

__all__ = ["FuseeClient", "ClientConfig", "OpResult", "ClientCrashed",
           "CrashPoint"]


class ClientCrashed(Exception):
    """Raised when an armed crash point fires; the client is dead after."""


class CrashPoint(str, enum.Enum):
    C0 = "c0"  # mid KV write: torn object
    C1 = "c1"  # winner decided, log not committed
    C2 = "c2"  # log committed, primary slot not CASed
    C3 = "c3"  # primary CASed, cleanup not done


@dataclass
class ClientConfig:
    """Behavioural switches; defaults are full FUSEE."""

    # Slot-replication strategy, resolved against the protocol registry
    # in repro.core.replication: "snapshot" (default), "sequential"
    # (FUSEE-CR) or "swarm" (1-RTT in-place broadcast writes).
    replication_mode: str = "snapshot"
    cache_enabled: bool = True          # False => FUSEE-NC
    cache_capacity: int = 1 << 16
    cache_threshold: float = 0.5        # adaptive bypass threshold (Fig. 16)
    retry_sleep_us: float = 2.0
    max_op_retries: int = 64
    # Fig. 17 ablation: allocate every object via an MN-side RPC.
    mn_centric_alloc: bool = False
    # Log-maintenance ablation: False adds the separate log-entry write
    # RTT that the embedded scheme (§4.5) eliminates.
    embedded_log: bool = True
    # Which alive data replica serves KV-block READs: "primary" is the
    # paper-faithful first-alive replica; "round_robin"/"least_loaded"
    # spread reads across replicas (see repro.core.readpolicy).
    read_spread: str = "primary"
    # How long a replica stays deprioritised after a READ timeout.
    read_suspect_window_us: float = 500.0

    def __post_init__(self):
        validate_replication_mode(self.replication_mode)
        if self.read_spread not in READ_SPREAD_MODES:
            raise ValueError(f"unknown read_spread {self.read_spread!r}; "
                             f"pick from {READ_SPREAD_MODES}")


@dataclass(frozen=True)
class OpResult:
    ok: bool
    value: Optional[bytes] = None
    existed: bool = False       # INSERT: the key was already present
    outcome: Optional[Outcome] = None
    error: Optional[str] = None


class _Unavailable:
    """Sentinel: a locate/refresh could not determine whether the key
    exists (transport timeouts under fault injection) — distinct from a
    definite absence (None).  Ops that see it fail with a typed error
    instead of claiming the key was missing, which keeps fault-injected
    histories honest for the linearizability checker.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "UNAVAILABLE"


_UNAVAILABLE = _Unavailable()

#: Link id of the client<->master connection for fault-fate draws (the
#: master lives in the compute pool, not on a memory node).
_MASTER_LINK = -1


@dataclass
class ClientStats:
    ops: Dict[str, int] = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    master_escalations: int = 0

    def count_op(self, kind: str) -> None:
        self.ops[kind] = self.ops.get(kind, 0) + 1

    def count_outcome(self, outcome: Outcome) -> None:
        self.outcomes[outcome.value] = self.outcomes.get(outcome.value, 0) + 1


@dataclass(frozen=True)
class _PreparedKv:
    """A freshly allocated, not-yet-linked KV object."""

    alloc: AllocResult
    slot_word: int
    write_ops: List[WriteOp]


class FuseeClient:
    """One compute-pool client of the fully memory-disaggregated store."""

    def __init__(self, env, fabric: Fabric, region_map: RegionMap,
                 race: RaceHashing, client_table: ClientTable,
                 cid: int, size_classes: List[int],
                 master=None, config: Optional[ClientConfig] = None):
        self.env = env
        self.fabric = fabric
        self.region_map = region_map
        self.race = race
        self.cid = cid
        # the queue pair this client posts through (multi-queue port
        # affinity hashes on it); a raw Fabric means the shared QP 0
        self.qp = getattr(fabric, "qp", 0)
        self.config = config or ClientConfig()
        self.master = master
        self.allocator = ClientAllocator(
            env, fabric, region_map, client_table, cid, size_classes,
            mn_centric=self.config.mn_centric_alloc)
        self.cache = AdaptiveIndexCache(capacity=self.config.cache_capacity,
                                        threshold=self.config.cache_threshold,
                                        enabled=self.config.cache_enabled)
        self.read_policy = ReplicaReadPolicy(
            fabric, mode=self.config.read_spread, cid=cid,
            suspect_window_us=self.config.read_suspect_window_us)
        self.protocol = create_protocol(self.config.replication_mode,
                                        cid=cid)
        self.stats = ClientStats()
        self.crashed = False
        self._crash_point: Optional[CrashPoint] = None
        # Optional monitor key-touch hook (repro.obs.monitor hot-key
        # tracking): called with (op, key) at the top of every KV op.
        # None keeps the hot path at a single attribute check.
        self.key_hook = None

    # ------------------------------------------------------------------ utils
    def arm_crash(self, point: CrashPoint) -> None:
        """Make the next operation crash at the given Fig. 9 point."""
        self._crash_point = CrashPoint(point)

    def _maybe_crash(self, point: CrashPoint) -> None:
        if self._crash_point is point:
            self.crashed = True
            raise ClientCrashed(point.value)

    def _require_alive(self) -> None:
        if self.crashed:
            raise ClientCrashed("client has crashed")

    def _traced(self, op: str, impl, key: Optional[bytes] = None,
                wrote: Optional[bytes] = None):
        """Wrap an operation generator in a tracer span (generator).

        With tracing disabled this adds one attribute check and a plain
        ``yield from`` delegation to the hot path.  ``key`` and ``wrote``
        (the value argument, for insert/update) flow into the span so
        concurrent histories can be reconstructed for linearizability
        checking (docs/checking.md).
        """
        if self.key_hook is not None and key is not None:
            self.key_hook(op, key)
        tracer = self.fabric.tracer
        if not tracer.enabled:
            return (yield from impl)
        span = tracer.begin_span(op, self.cid, key=key, wrote=wrote)
        try:
            result = yield from impl
        except BaseException as exc:
            tracer.end_span(span, ok=False, error=type(exc).__name__)
            raise
        tracer.end_span(
            span, ok=result.ok,
            outcome=result.outcome.value if result.outcome else None,
            error=result.error, value=result.value, existed=result.existed)
        return result

    def _retry(self) -> None:
        self.stats.retries += 1
        self.fabric.tracer.note_retry()

    def _slot_word_for(self, meta: KeyMeta, key: bytes, value: bytes,
                       alloc: AllocResult) -> int:
        return pack_slot(meta.fingerprint, kv_len_units(len(key), len(value)),
                         alloc.gaddr)

    def _kv_read_op(self, gaddr: int, nbytes: int) -> Optional[ReadOp]:
        """READ a KV block from an alive data replica.

        The replica is chosen by the ``read_spread`` policy — the
        paper-faithful default reads the first alive (primary-most)
        replica; spreading modes rotate or load-balance across them.
        """
        candidates = [(mn_id, addr)
                      for mn_id, addr in self.region_map.translate(gaddr)
                      if not self.fabric.node(mn_id).crashed]
        if not candidates:
            return None
        mn_id, addr = self.read_policy.choose(candidates)
        return ReadOp(mn_id, addr, nbytes)

    def _note_kv_timeout(self, comp) -> None:
        """Tell the read policy a KV READ timed out, so its retry avoids
        that replica (gray/partitioned node) for the suspect window."""
        if comp.value is TIMEOUT and isinstance(comp.op, ReadOp):
            self.read_policy.note_timeout(comp.op.mn_id)

    def _prepare_kv(self, key: bytes, value: bytes, opcode: int,
                    meta: KeyMeta):
        """Allocate an object and build its replica WRITE ops (generator)."""
        self.fabric.trace_phase("alloc")
        need = kv_block_size(len(key), len(value))
        class_idx = self.allocator.class_for(need)
        alloc = yield from self.allocator.alloc(class_idx)
        entry = entry_for_alloc(alloc, opcode)
        if alloc.size < need:
            raise ValueError(
                f"block of {alloc.size}B cannot hold {need}B KV pair")
        # The padding between the KV body and the trailing log entry is
        # never transmitted: one doorbell batch carries two WRITEs per
        # replica (body, then entry — order-preserving, so the used bit
        # still lands last), so only the two wire images are built.
        body = encode_kv_body(key, value)
        entry_bytes = encode_log_entry(entry)
        if self._crash_point is CrashPoint.C0:
            body = body[:len(body) // 2]  # torn write: no used bit
            entry_bytes = b""
        ops = []
        for mn_id, addr in self.region_map.translate(alloc.gaddr):
            if self.fabric.node(mn_id).crashed:
                continue
            ops.append(WriteOp(mn_id, addr, body))
            if entry_bytes:
                ops.append(WriteOp(mn_id, addr + alloc.size - LOG_ENTRY_SIZE,
                                   entry_bytes))
        return _PreparedKv(alloc=alloc,
                           slot_word=self._slot_word_for(meta, key, value,
                                                         alloc),
                           write_ops=ops)

    def _discard_object(self, alloc: AllocResult, opcode: int) -> None:
        """Free an object that lost its round (used bit reset, §4.5).

        The used-bit write is posted unsignaled (fire-and-forget): the
        fabric applies it immediately and the client does not block, which
        is the paper's off-critical-path behaviour.
        """
        ops = clear_used_ops(self.region_map, self.fabric, alloc.gaddr,
                             alloc.size, opcode)
        if ops:
            self.fabric.trace_phase("cleanup.discard")
            self.fabric.post(ops, unsignaled=True)
        self.allocator.note_free(alloc.gaddr)

    def _invalidate_object_ops(self, slot_word: int) -> List[WriteOp]:
        """WRITEs setting the invalidation flag of an old KV pair (§4.6)."""
        gaddr = unpack_slot(slot_word).pointer
        ops = []
        for mn_id, addr in self.region_map.translate(gaddr):
            if not self.fabric.node(mn_id).crashed:
                ops.append(WriteOp(mn_id, addr, bytes([FLAG_INVALID])))
        return ops

    def _maybe_separate_log(self, prepared: _PreparedKv):
        """Ablation: a conventional (non-embedded) operation log writes its
        entry in its own round trip (generator)."""
        if self.config.embedded_log:
            return
        from .wire import LOG_ENTRY_SIZE
        entry_off = prepared.alloc.size - LOG_ENTRY_SIZE
        ops = []
        for mn_id, addr in self.region_map.translate(prepared.alloc.gaddr):
            if not self.fabric.node(mn_id).crashed:
                ops.append(WriteOp(mn_id, addr + entry_off,
                                   bytes(LOG_ENTRY_SIZE)))
        if ops:
            self.fabric.trace_phase("log.separate_write")
            yield self.fabric.post(ops)

    def _log_committer(self, prepared: _PreparedKv):
        """The ``on_win`` hook: Fig. 9 phase ③ plus crash points c1/c2.

        With a single index replica the paper skips the commit (it exists
        to make multi-replica rounds recoverable), so the hook is only
        installed when there are backups — see ``_replicated_write``.
        """
        def hook(v_old: int):
            self._maybe_crash(CrashPoint.C1)
            ops = commit_old_value_ops(self.region_map, self.fabric,
                                       prepared.alloc.gaddr,
                                       prepared.alloc.size, v_old)
            if ops:
                self.fabric.trace_phase("log.commit")
                yield self.fabric.post(ops)
            self._maybe_crash(CrashPoint.C2)
        return hook

    def _replicated_write(self, ref: SlotRef, v_old: int, v_new: int,
                          prepared: Optional[_PreparedKv]):
        """Run the configured replication protocol on one slot (generator)."""
        on_win = None
        if prepared is not None and len(ref.placement) > 1:
            on_win = self._log_committer(prepared)
        result = yield from self.protocol.write(
            self.fabric, ref, v_old, v_new, on_win=on_win,
            retry_sleep_us=self.config.retry_sleep_us,
            phase_guard=lambda: self._wait_if_blocked(ref.subtable))
        self._maybe_crash(CrashPoint.C3)
        self.stats.count_outcome(result.outcome)
        return result

    # ------------------------------------------------------------- SEARCH
    def search(self, key: bytes):
        """SEARCH (generator): returns OpResult with the value or ok=False."""
        if not self.fabric.tracer.enabled:
            # Skip the tracing wrapper frame entirely: a delegating
            # generator costs every event resume of the operation, not
            # just its start (same for the other op entry points).
            return self._search_impl(key)
        return self._traced("search", self._search_impl(key), key=key)

    def _search_impl(self, key: bytes):
        self._require_alive()
        self.stats.count_op("search")
        result = OpResult(ok=False)
        for _attempt in range(4):
            epoch0 = self.master.epoch if self.master else -1
            meta = self.race.key_meta(key)
            yield from self._wait_if_blocked(meta.subtable)
            entry, bypassed = self.cache.lookup_for_access(key)
            if entry is not None:
                if bypassed:
                    result = yield from self._search_bypass(key, meta,
                                                            entry)
                else:
                    result = yield from self._search_via_cache(key, meta,
                                                               entry)
                if result is not None:
                    return result
            result = yield from self._search_full(key, meta)
            if result.ok or self.master is None \
                    or self.master.epoch == epoch0:
                return result
            # a membership/directory change (failover or index split)
            # raced with this op: re-hash the key and retry
            self._retry()
        return result

    def _search_via_cache(self, key: bytes, meta: KeyMeta,
                          entry: CacheEntry):
        """The 1-RTT fast path; returns None to fall back to the full path."""
        slot = unpack_slot(entry.slot_word)
        # Re-materialise the ref: the master may have reconfigured the
        # subtable placement since this entry was cached (§5.2).
        ref = self.race.slot_ref(entry.slot_ref.subtable,
                                 entry.slot_ref.slot_index)
        primary_mn, primary_addr = ref.primary()
        kv_read = self._kv_read_op(slot.pointer, slot.block_bytes)
        if self.fabric.node(primary_mn).crashed or kv_read is None:
            return None
        self.fabric.trace_phase("search.cached_read")
        comps = yield self.fabric.post(
            [ReadOp(primary_mn, primary_addr, 8), kv_read])
        if comps[0].failed or comps[1].failed:
            self._note_kv_timeout(comps[1])
            return None
        word_now = int.from_bytes(comps[0].value, "big")
        if word_now == entry.slot_word:
            try:
                header, kv_key, kv_value = decode_kv_payload(comps[1].value)
            except ValueError:
                header = None
            if header is not None and not header.invalid and kv_key == key:
                return OpResult(ok=True, value=kv_value)
        # The cached address was stale: charge the invalid counter (§4.6).
        self.cache.record_invalid(key)
        if word_now == 0:
            self.cache.drop(key)
            return None  # likely deleted; confirm via the full path
        now = unpack_slot(word_now)
        if now.fingerprint == meta.fingerprint:
            # Same slot, new version: one more RTT fetches it.
            self.fabric.trace_phase("search.kv_refetch")
            comp = yield self.fabric.post_one(
                self._kv_read_op(now.pointer, now.block_bytes))
            self._note_kv_timeout(comp)
            if not comp.failed:
                try:
                    header, kv_key, kv_value = decode_kv_payload(comp.value)
                    if not header.invalid and kv_key == key:
                        self.cache.store(key, ref, word_now)
                        return OpResult(ok=True, value=kv_value)
                except ValueError:
                    pass
        return None

    def _search_bypass(self, key: bytes, meta: KeyMeta,
                       entry: CacheEntry):
        """Write-intensive key: read the cached *slot* first, then the KV
        pair it currently names — 2 RTTs, but no bandwidth wasted on a
        probably-invalidated pair (§4.6)."""
        ref = self.race.slot_ref(entry.slot_ref.subtable,
                                 entry.slot_ref.slot_index)
        primary_mn, primary_addr = ref.primary()
        if self.fabric.node(primary_mn).crashed:
            return None
        self.fabric.trace_phase("search.bypass_slot_read")
        comp = yield self.fabric.post_one(
            ReadOp(primary_mn, primary_addr, 8))
        if comp.failed:
            return None
        word = int.from_bytes(comp.value, "big")
        if word == 0:
            self.cache.drop(key)
            return None
        slot = unpack_slot(word)
        if slot.fingerprint != meta.fingerprint:
            return None
        kv_read = self._kv_read_op(slot.pointer, slot.block_bytes)
        if kv_read is None:
            return None
        self.fabric.trace_phase("search.bypass_kv_read")
        comp = yield self.fabric.post_one(kv_read)
        if comp.failed:
            self._note_kv_timeout(comp)
            return None
        try:
            header, kv_key, kv_value = decode_kv_payload(comp.value)
        except ValueError:
            return None
        if kv_key != key:
            return None
        if header.invalid:
            self.cache.record_invalid(key)
            return None
        self.cache.store(key, ref, word)
        return OpResult(ok=True, value=kv_value)

    def _search_full(self, key: bytes, meta: KeyMeta):
        for _ in range(self.config.max_op_retries):
            self.fabric.trace_phase("search.bucket_read")
            view = yield from self._read_buckets(meta)
            if view is None:
                return OpResult(ok=False, error="index unavailable")
            if not view.matches:
                return OpResult(ok=False)
            found, saw_invalid, unreadable = yield from \
                self._match_candidates(key, view.matches)
            if found is not None:
                ref, word, value = found
                self.cache.store(key, ref, word)
                return OpResult(ok=True, value=value)
            if not saw_invalid and not unreadable:
                return OpResult(ok=False)
            # The key's pair was invalidation-marked (a writer is
            # mid-replacement) or unreadable (transport timeout); re-read
            # the slot shortly rather than conclude absence.
            self._retry()
            yield self.env.attributed_timeout(
                self.config.retry_sleep_us, "backoff", "client.retry")
        return OpResult(ok=False, error="retries exhausted")

    def _read_buckets(self, meta: KeyMeta, extra_ops: Optional[list] = None):
        """Read the key's combined buckets (generator); returns a
        BucketView or None.

        Normally reads the primary index replica.  When the primary has
        crashed, Algorithm 4 READ applies: backup values may be *newer*
        than the committed primary value during write conflicts, so the
        backups are only safe to read if they all agree; on disagreement
        the client waits for the master's repair and retries.
        """
        placement = self.race.placement(meta.subtable)
        if not self.fabric.node(placement[0][0]).crashed:
            view, aborted = yield from self._primary_bucket_read(meta,
                                                                 extra_ops)
            if aborted:
                # A KV replica write timed out: it may never have applied,
                # so the op cannot go on to install a pointer to it.
                return None
            if view is not None:
                return view
            extra_ops = None  # crashed mid-read; writes were still posted
        elif extra_ops:
            # honour the piggy-backed KV writes exactly once
            comps = yield self.fabric.post(list(extra_ops))
            if any(c.value is TIMEOUT for c in comps):
                return None
        for _attempt in range(self.config.max_op_retries):
            placement = self.race.placement(meta.subtable)
            if not self.fabric.node(placement[0][0]).crashed:
                # the master reconfigured a new primary while we waited
                view, _aborted = yield from self._primary_bucket_read(meta)
                if view is not None:
                    return view
                yield self.env.attributed_timeout(
                    self.config.retry_sleep_us, "backoff", "client.retry")
                continue
            alive = [replica for replica, (mn, _b) in enumerate(placement)
                     if not self.fabric.node(mn).crashed]
            if not alive:
                return None
            all_ops = []
            per_replica = 2
            for replica in alive:
                ops = self.race.bucket_read_ops(meta, replica=replica)
                per_replica = len(ops)
                all_ops.extend(ops)
            comps = yield self.fabric.post(all_ops)
            payload_sets = []
            for i in range(0, len(comps), per_replica):
                group = comps[i:i + per_replica]
                if not any(c.failed for c in group):
                    payload_sets.append(tuple(c.value for c in group))
            if not payload_sets:
                return None
            if all(p == payload_sets[0] for p in payload_sets):
                return self.race.parse_buckets(meta, list(payload_sets[0]))
            # Backups disagree: a write was in flight when the primary
            # died; wait for the master to act as representative last
            # writer (Algorithm 4), then retry.
            self.stats.master_escalations += 1
            yield from self._wait_if_blocked(meta.subtable)
            yield self.env.attributed_timeout(
                self.config.retry_sleep_us, "backoff", "client.retry")
        return None

    def _primary_bucket_read(self, meta: KeyMeta,
                             extra_ops: Optional[list] = None):
        """One combined-bucket READ of the primary index replica, with
        any piggy-backed KV writes in the same doorbell batch (generator).

        The single place ``bucket_read_ops(meta, replica=0)`` is built for
        the non-degraded path.  Returns ``(view, aborted)``: ``aborted``
        is True when a piggy-backed write timed out (the caller must not
        go on to install a pointer at possibly-unwritten memory); ``view``
        is None when the bucket read itself failed (primary crashed
        mid-read) and the caller should retry or degrade.
        """
        ops = self.race.bucket_read_ops(meta, replica=0)
        comps = yield self.fabric.post(ops + list(extra_ops or []))
        if any(c.value is TIMEOUT for c in comps[len(ops):]):
            return None, True
        if any(c.failed for c in comps[:len(ops)]):
            return None, False
        payloads = [c.value for c in comps[:len(ops)]]
        return self.race.parse_buckets(meta, payloads), False

    def _match_candidates(self, key: bytes, matches):
        """Read fingerprint-hit KV blocks and return the true key match
        (lowest slot index wins so concurrent readers agree), as
        ``((ref, word, value) | None, saw_invalid_match, unreadable)``
        (generator).

        ``saw_invalid_match`` is True when a candidate held the key but was
        invalidation-marked — i.e. a concurrent writer is mid-replacement
        and the caller should re-read the slot rather than conclude the
        key is absent.  ``unreadable`` is True when a candidate read timed
        out (fault injection): the key's presence is unknown, so callers
        must not conclude absence from this view.
        """
        reads = []
        usable = []
        for snap in matches:
            op = self._kv_read_op(snap.slot.pointer, snap.slot.block_bytes)
            if op is not None:
                reads.append(op)
                usable.append(snap)
        if not reads:
            return None, False, False
        saw_invalid = False
        unreadable = False
        self.fabric.trace_phase("kv.match_read")
        comps = yield self.fabric.post(reads)
        for snap, comp in zip(usable, comps):
            if comp.failed:
                if comp.value is TIMEOUT:
                    unreadable = True
                    self._note_kv_timeout(comp)
                continue
            try:
                header, kv_key, kv_value = decode_kv_payload(comp.value)
            except ValueError:
                saw_invalid = True  # torn read: a writer is mid-flight
                continue
            if kv_key != key:
                continue
            if header.invalid:
                saw_invalid = True
                continue
            return (snap.ref, snap.word, kv_value), saw_invalid, False
        return None, saw_invalid, unreadable

    # ------------------------------------------------------------- INSERT
    def insert(self, key: bytes, value: bytes):
        """INSERT (generator): ok=False with existed=True if already present."""
        if not self.fabric.tracer.enabled:
            return self._insert_impl(key, value)
        return self._traced("insert", self._insert_impl(key, value),
                            key=key, wrote=value)

    def _insert_impl(self, key: bytes, value: bytes):
        self._require_alive()
        self.stats.count_op("insert")
        meta = self.race.key_meta(key)
        yield from self._wait_if_blocked(meta.subtable)
        prepared = yield from self._prepare_kv(key, value, OP_INSERT, meta)
        # Phase ①: KV replica writes + combined-bucket read, one batch.
        self.fabric.trace_phase("insert.kv_write+bucket_read")
        view = yield from self._read_buckets(meta,
                                             extra_ops=prepared.write_ops)
        yield from self._maybe_separate_log(prepared)
        self._maybe_crash(CrashPoint.C0)
        if view is None:
            self._discard_object(prepared.alloc, OP_INSERT)
            return OpResult(ok=False, error="index unavailable")
        for _expansion in range(8):
            if view.matches:
                found, saw_invalid, unreadable = yield from \
                    self._match_candidates(key, view.matches)
                if found is not None or saw_invalid:
                    # present (or mid-replacement by a concurrent writer)
                    self._discard_object(prepared.alloc, OP_INSERT)
                    return OpResult(ok=False, existed=True)
                if unreadable:
                    # A candidate KV read timed out: we cannot rule out
                    # that this key already exists, so we must not insert.
                    self._discard_object(prepared.alloc, OP_INSERT)
                    return OpResult(ok=False, error="index unavailable")
            if view.empties:
                break
            # Candidate buckets are full: ask the master to split the
            # subtable (RACE extendible resize), re-hash, and retry.
            if self.master is None:
                self._discard_object(prepared.alloc, OP_INSERT)
                raise IndexFullError(
                    f"no free slot for key {key!r} in subtable "
                    f"{meta.subtable} and no master to expand it")
            expanded = yield from self._master_rpc(
                "expand",
                lambda token: self.master.request_expand(meta.subtable,
                                                         token=token))
            if expanded is _UNAVAILABLE:
                self._discard_object(prepared.alloc, OP_INSERT)
                return OpResult(ok=False, error="master unavailable")
            if not expanded:
                self._discard_object(prepared.alloc, OP_INSERT)
                raise IndexFullError(
                    f"subtable {meta.subtable} full and expansion failed")
            meta = self.race.key_meta(key)
            self.fabric.trace_phase("insert.bucket_reread")
            view = yield from self._read_buckets(meta)
            if view is None:
                self._discard_object(prepared.alloc, OP_INSERT)
                return OpResult(ok=False, error="index unavailable")
        empties = list(view.empties)
        for attempt in range(self.config.max_op_retries):
            if not empties:
                self._discard_object(prepared.alloc, OP_INSERT)
                raise IndexFullError(
                    f"no free slot for key {key!r} in subtable "
                    f"{meta.subtable} after conflict retries")
            ref = empties.pop(0)
            ref = self.race.slot_ref(ref.subtable, ref.slot_index)
            result = yield from self._replicated_write(ref, 0,
                                                       prepared.slot_word,
                                                       prepared)
            if result.outcome.won:
                kept = yield from self._insert_dedup(key, meta, ref, prepared)
                if not kept:
                    self._discard_object(prepared.alloc, OP_INSERT)
                    return OpResult(ok=False, existed=True)
                self.cache.store(key, ref, prepared.slot_word)
                return OpResult(ok=True, outcome=result.outcome)
            if result.outcome is Outcome.NEED_MASTER:
                resolved = yield from self._escalate(ref, 0)
                if resolved == prepared.slot_word:
                    kept = yield from self._insert_dedup(key, meta, ref,
                                                         prepared)
                    if not kept:
                        self._discard_object(prepared.alloc, OP_INSERT)
                        return OpResult(ok=False, existed=True)
                    self.cache.store(key, ref, prepared.slot_word)
                    return OpResult(ok=True, outcome=result.outcome)
                # fall through: treat like a lost round on this slot
                result = result
            # Lost the slot to a concurrent writer.  If it was a concurrent
            # INSERT of the same key, ours linearizes right before it.
            same_key = yield from self._insert_conflict_recheck(
                key, meta, result.committed)
            if same_key is None:
                # Could not read the winner's object (timeout): unknown
                # whether it holds our key, so neither success nor another
                # slot attempt is safe.
                self._discard_object(prepared.alloc, OP_INSERT)
                return OpResult(ok=False, error="conflict check unavailable")
            if same_key:
                self._discard_object(prepared.alloc, OP_INSERT)
                return OpResult(ok=True, outcome=result.outcome)
            self._retry()
            if not empties:
                self.fabric.trace_phase("insert.bucket_reread")
                view = yield from self._read_buckets(meta)
                if view is None:
                    break
                empties = list(view.empties)
        self._discard_object(prepared.alloc, OP_INSERT)
        return OpResult(ok=False, error="retries exhausted")

    def _insert_dedup(self, key: bytes, meta: KeyMeta, ref: SlotRef,
                      prepared: _PreparedKv):
        """Post-install duplicate sweep — RACE's insert re-read check
        (generator; returns True to keep the slot, False after conceding).

        Winning an *empty-slot CAS* is not enough to rule out a duplicate:
        two inserters of the same key can pick **different** empty slots
        when a concurrent mutation (e.g. a DELETE freeing a slot in a
        candidate bucket) shifts the bucket view between their reads, so
        neither the fingerprint pre-check nor the CAS-conflict recheck
        fires and both CASes succeed.  The cross-protocol linearizability
        suite (``tests/test_model_based.py``) finds exactly this under
        every replication strategy.

        So, like RACE hashing's published insert, every winner re-reads its
        candidate buckets before returning.  A clean re-read (no foreign
        copy of the key) keeps the slot — and because any later duplicate
        winner's own re-read necessarily *sees us*, at most one inserter
        per episode gets a clean re-read.  An observer of a foreign copy
        escalates to the master, which serialises the verdicts
        (:meth:`repro.core.master.Master.arbitrate_insert`): last one
        standing wins, everyone else invalidates its object and zeroes its
        slot — batched in one post, so readers never see a committed
        duplicate.
        """
        self.fabric.trace_phase("insert.dedup_check")
        view = yield from self._read_buckets(meta)
        if view is None:
            # Bucket read failed (primary crashed mid-failover): keep the
            # slot; the master's subtable repair owns consistency now.
            return True
        own_id = (ref.subtable, ref.slot_index)
        reads, usable = [], []
        for snap in view.matches:
            if (snap.ref.subtable, snap.ref.slot_index) == own_id:
                continue
            op = self._kv_read_op(snap.slot.pointer, snap.slot.block_bytes)
            if op is not None:
                reads.append(op)
                usable.append(snap)
        foreigns = []
        if reads:
            self.fabric.trace_phase("insert.dedup_match_read")
            comps = yield self.fabric.post(reads)
            for snap, comp in zip(usable, comps):
                if comp.failed:
                    continue
                try:
                    header, kv_key, _v = decode_kv_payload(comp.value)
                except ValueError:
                    continue
                # Invalidation-marked copies are already mid-concession
                # (or mid-replacement); they never reach a reader.
                if kv_key == key and not header.invalid:
                    foreigns.append(snap)
        if not foreigns:
            return True
        if self.master is None:
            # No arbiter: deterministic position rule.  Sound only when
            # every contender observes the other, which the master rule
            # does not require — master-less deployments are single-writer.
            verdict = ("win" if own_id < min(
                (s.ref.subtable, s.ref.slot_index) for s in foreigns)
                else "concede")
        else:
            verdict = yield from self._master_rpc(
                "arbitrate_insert",
                lambda token: self.master.arbitrate_insert(
                    key, own=own_id + (prepared.slot_word,),
                    foreigns=[(s.ref.subtable, s.ref.slot_index, s.word)
                              for s in foreigns],
                    token=token))
            if verdict is _UNAVAILABLE:
                return True
        if verdict == "win":
            doomed = foreigns
            clear = [(self.race.slot_ref(s.ref.subtable, s.ref.slot_index),
                      s.word) for s in doomed]
        else:
            clear = [(ref, prepared.slot_word)]
        ops = []
        for slot_ref, word in clear:
            ops.extend(self._invalidate_object_ops(word))
            for mn_id, addr in slot_ref.locations():
                if not self.fabric.node(mn_id).crashed:
                    ops.append(CasOp(mn_id, addr, expected=word, swap=0))
        if ops:
            self.fabric.trace_phase("insert.dedup_clear")
            yield self.fabric.post(ops)
        return verdict == "win"

    def _insert_conflict_recheck(self, key: bytes, meta: KeyMeta,
                                 committed: Optional[int]):
        """After losing a slot CAS, decide whether the winner inserted the
        *same* key (generator; returns bool, or None when the winner's
        object was unreadable under fault injection).

        A protocol decision point: skipping this re-check makes a losing
        inserter grab another empty slot and double-insert the key — the
        ``insert-skip-conflict-recheck`` mutation in ``repro.check``
        exercises exactly that, and the KV linearizability checker flags
        the resulting pair of ok=True inserts.
        """
        if committed is None or committed == 0:
            return False
        other = unpack_slot(committed)
        if other.fingerprint != meta.fingerprint:
            return False
        comp_op = self._kv_read_op(other.pointer, other.block_bytes)
        if comp_op is None:
            return False
        self.fabric.trace_phase("insert.conflict_check")
        comp = yield self.fabric.post_one(comp_op)
        if comp.failed:
            self._note_kv_timeout(comp)
            # TIMEOUT means "could not tell" (None), not "different key".
            return None if comp.value is TIMEOUT else False
        try:
            _h, kv_key, _v = decode_kv_payload(comp.value)
        except ValueError:
            return False
        return kv_key == key

    # ------------------------------------------------------------- UPDATE
    def update(self, key: bytes, value: bytes):
        """UPDATE (generator): ok=False if the key does not exist."""
        if not self.fabric.tracer.enabled:
            return self._update_impl(key, value)
        return self._traced("update", self._update_impl(key, value),
                            key=key, wrote=value)

    def _update_impl(self, key: bytes, value: bytes):
        self._require_alive()
        self.stats.count_op("update")
        meta = self.race.key_meta(key)
        yield from self._wait_if_blocked(meta.subtable)
        prepared = yield from self._prepare_kv(key, value, OP_UPDATE, meta)
        epoch0 = self.master.epoch if self.master else -1
        located = yield from self._locate_for_write(key, meta,
                                                    prepared.write_ops)
        yield from self._maybe_separate_log(prepared)
        self._maybe_crash(CrashPoint.C0)
        if (located is None or located is _UNAVAILABLE) \
                and self.master is not None and self.master.epoch != epoch0:
            # directory/membership changed under us: re-hash and re-locate
            meta = self.race.key_meta(key)
            located = yield from self._locate_for_write(key, meta, [])
        if located is _UNAVAILABLE:
            self._discard_object(prepared.alloc, OP_UPDATE)
            return OpResult(ok=False, error="index unavailable")
        if located is None:
            self._discard_object(prepared.alloc, OP_UPDATE)
            return OpResult(ok=False)
        ref, v_old = located
        return (yield from self._write_slot(key, meta, prepared, ref, v_old,
                                            prepared.slot_word, OP_UPDATE))

    # ------------------------------------------------------------- DELETE
    def delete(self, key: bytes):
        """DELETE (generator): sets the slot to null; ok=False if absent.

        A temporary object carries the operation's log entry and target
        key; it is freed once the request completes (§4.5).
        """
        if not self.fabric.tracer.enabled:
            return self._delete_impl(key)
        return self._traced("delete", self._delete_impl(key), key=key)

    def _delete_impl(self, key: bytes):
        self._require_alive()
        self.stats.count_op("delete")
        meta = self.race.key_meta(key)
        yield from self._wait_if_blocked(meta.subtable)
        prepared = yield from self._prepare_kv(key, b"", OP_DELETE, meta)
        epoch0 = self.master.epoch if self.master else -1
        located = yield from self._locate_for_write(key, meta,
                                                    prepared.write_ops)
        yield from self._maybe_separate_log(prepared)
        self._maybe_crash(CrashPoint.C0)
        if (located is None or located is _UNAVAILABLE) \
                and self.master is not None and self.master.epoch != epoch0:
            meta = self.race.key_meta(key)
            located = yield from self._locate_for_write(key, meta, [])
        if located is _UNAVAILABLE:
            self._discard_object(prepared.alloc, OP_DELETE)
            return OpResult(ok=False, error="index unavailable")
        if located is None:
            self._discard_object(prepared.alloc, OP_DELETE)
            return OpResult(ok=False)
        ref, v_old = located
        result = yield from self._write_slot(key, meta, prepared, ref, v_old,
                                             0, OP_DELETE)
        # The temp object is reclaimed on completion regardless of outcome.
        self._discard_object(prepared.alloc, OP_DELETE)
        self.cache.drop(key)
        return result

    # --------------------------------------------------------- write common
    def _write_slot(self, key: bytes, meta: KeyMeta, prepared: _PreparedKv,
                    ref: SlotRef, v_old: int, v_new: int, opcode: int):
        """Phases ②-④ for UPDATE/DELETE, including conflict retries."""
        for attempt in range(self.config.max_op_retries):
            # Pick up any placement reconfiguration done by the master.
            ref = self.race.slot_ref(ref.subtable, ref.slot_index)
            result = yield from self._replicated_write(ref, v_old, v_new,
                                                       prepared)
            if result.outcome.won:
                self._after_win(key, meta, ref, v_old, v_new, opcode)
                return OpResult(ok=True, outcome=result.outcome)
            if result.outcome is Outcome.NEED_MASTER:
                resolved = yield from self._escalate(ref, v_old)
                if resolved is None:
                    # the op failed for good: reclaim the staged object so
                    # recovery never replays a request we reported failed
                    self._discard_object(prepared.alloc, opcode)
                    return OpResult(ok=False, error="unresolvable failure")
                if resolved == v_new:
                    # The master completed our round on our behalf.
                    self._after_win(key, meta, ref, v_old, v_new, opcode)
                    return OpResult(ok=True, outcome=result.outcome)
                if resolved == v_old:
                    self._retry()
                    continue  # retry the write (Algorithm 4 line 38)
                v_old = resolved
                self._retry()
                continue
            if result.outcome in (Outcome.LOSE, Outcome.FINISH):
                if self.protocol.retry_on_lose:
                    # FUSEE-CR serializes: a lost CAS means retry the op.
                    refreshed = yield from self._refresh_v_old(key, meta, ref)
                    if refreshed is _UNAVAILABLE:
                        if opcode == OP_UPDATE:
                            self._discard_object(prepared.alloc, opcode)
                        return OpResult(ok=False, error="index unavailable")
                    if refreshed is None:
                        if opcode == OP_UPDATE:
                            self._discard_object(prepared.alloc, opcode)
                        return OpResult(ok=False)
                    v_old = refreshed
                    self._retry()
                    continue
                if (result.committed == 0 and v_new != 0
                        and result.outcome is Outcome.LOSE):
                    # The slot emptied under us: a concurrent DELETE won,
                    # or an index split moved the key.  Re-resolve the key
                    # (the directory may have changed) and retry; if it is
                    # gone, the op fails like any update of a missing key.
                    meta = self.race.key_meta(key)
                    located = yield from self._locate_for_write(key, meta,
                                                                [])
                    if located is _UNAVAILABLE:
                        self._discard_object(prepared.alloc, opcode)
                        return OpResult(ok=False, error="index unavailable")
                    if located is None:
                        self._discard_object(prepared.alloc, opcode)
                        return OpResult(ok=False)
                    ref, v_old = located
                    self._retry()
                    continue
                # SNAPSHOT: last-writer-wins — ours linearized just before
                # the winner's; the installed object is garbage now.
                if opcode == OP_UPDATE:
                    self._discard_object(prepared.alloc, opcode)
                if result.committed is not None and result.committed != 0:
                    self.cache.store(key, ref, result.committed)
                return OpResult(ok=True, outcome=result.outcome)
        return OpResult(ok=False, error="retries exhausted")

    def _after_win(self, key: bytes, meta: KeyMeta, ref: SlotRef,
                   v_old: int, v_new: int, opcode: int) -> None:
        """Winner cleanup: invalidate + free the old object, fix the cache.

        Posted unsignaled (no await): coherence marking and freeing are off
        the critical path (§4.4, §4.6).
        """
        if v_old != 0:
            ops = self._invalidate_object_ops(v_old)
            if ops:
                self.fabric.trace_phase("cleanup.invalidate")
                self.fabric.post(ops, unsignaled=True)
            self.allocator.note_free(unpack_slot(v_old).pointer)
        if opcode == OP_DELETE:
            self.cache.drop(key)
        else:
            self.cache.store(key, ref, v_new)

    def _locate_for_write(self, key: bytes, meta: KeyMeta,
                          kv_write_ops: List[WriteOp]):
        """Phase ① of UPDATE/DELETE: find the key's slot and read its
        primary value, batching the new-KV writes into the same RTT.

        Returns ``(ref, v_old)``, None if the key is definitely absent, or
        :data:`_UNAVAILABLE` when transport timeouts left its presence
        unknown (generator).
        """
        entry, bypassed = self.cache.lookup_for_access(key)
        if entry is not None and bypassed:
            located = yield from self._locate_bypass(key, meta, entry,
                                                     kv_write_ops)
            if located is _UNAVAILABLE:
                return _UNAVAILABLE
            if located is not None:
                return located
            kv_write_ops = []  # the KV writes were posted by the bypass
            entry = None
        if entry is not None:
            slot = unpack_slot(entry.slot_word)
            ref = self.race.slot_ref(entry.slot_ref.subtable,
                                     entry.slot_ref.slot_index)
            primary_mn, primary_addr = ref.primary()
            kv_read = self._kv_read_op(slot.pointer, slot.block_bytes)
            if not self.fabric.node(primary_mn).crashed and kv_read:
                batch = list(kv_write_ops)
                batch.append(ReadOp(primary_mn, primary_addr, 8))
                batch.append(kv_read)
                self.fabric.trace_phase("write.locate_cached")
                comps = yield self.fabric.post(batch)
                for c in comps:
                    self._note_kv_timeout(c)
                if any(c.value is TIMEOUT for c in comps):
                    # A piggy-backed KV replica write (or the slot read)
                    # may not have applied; the op must not proceed to CAS
                    # a pointer at possibly-unwritten memory.
                    return _UNAVAILABLE
                slot_comp, kv_comp = comps[-2], comps[-1]
                if not slot_comp.failed:
                    word_now = int.from_bytes(slot_comp.value, "big")
                    verified = False
                    if not kv_comp.failed:
                        try:
                            _h, kv_key, _v = decode_kv_payload(kv_comp.value)
                            verified = kv_key == key
                        except ValueError:
                            verified = False
                    if word_now == entry.slot_word and verified:
                        return ref, word_now
                    self.cache.record_invalid(key)
                    if word_now != 0 and (
                            unpack_slot(word_now).fingerprint
                            == meta.fingerprint):
                        # Same slot, newer version: verify the key (1 RTT).
                        now = unpack_slot(word_now)
                        op = self._kv_read_op(now.pointer, now.block_bytes)
                        if op is not None:
                            self.fabric.trace_phase("write.locate_refetch")
                            comp = yield self.fabric.post_one(op)
                            self._note_kv_timeout(comp)
                            if not comp.failed:
                                try:
                                    _h, kv_key, _v = decode_kv_payload(
                                        comp.value)
                                    if kv_key == key:
                                        return ref, word_now
                                except ValueError:
                                    pass
                    self.cache.drop(key)
                # fall through to the full path (the KV writes already
                # happened; do not post them again)
                kv_write_ops = []
        # Cache miss / bypass / stale: full bucket path.
        for attempt in range(self.config.max_op_retries):
            self.fabric.trace_phase("write.locate_buckets")
            view = yield from self._read_buckets(
                meta, extra_ops=kv_write_ops if kv_write_ops else None)
            kv_write_ops = []  # only piggy-back the KV writes once
            if view is None:
                return _UNAVAILABLE
            if not view.matches:
                return None
            found, saw_invalid, unreadable = yield from \
                self._match_candidates(key, view.matches)
            if found is not None:
                ref, word, _value = found
                return ref, word
            if not saw_invalid and not unreadable:
                return None
            self._retry()
            yield self.env.attributed_timeout(
                self.config.retry_sleep_us, "backoff", "client.retry")
        return _UNAVAILABLE

    def _locate_bypass(self, key: bytes, meta: KeyMeta,
                       entry: CacheEntry, kv_write_ops: List[WriteOp]):
        """Write path for a bypassed key: read the cached slot (batched
        with the new-KV writes), then verify the key with one KV read."""
        ref = self.race.slot_ref(entry.slot_ref.subtable,
                                 entry.slot_ref.slot_index)
        primary_mn, primary_addr = ref.primary()
        if self.fabric.node(primary_mn).crashed:
            if kv_write_ops:
                comps = yield self.fabric.post(kv_write_ops)
                if any(c.value is TIMEOUT for c in comps):
                    return _UNAVAILABLE
            return None
        batch = list(kv_write_ops) + [ReadOp(primary_mn, primary_addr, 8)]
        self.fabric.trace_phase("write.locate_bypass")
        comps = yield self.fabric.post(batch)
        if any(c.value is TIMEOUT for c in comps):
            # The piggy-backed KV writes (or the slot read) may not have
            # applied: neither proceeding nor falling back is safe.
            return _UNAVAILABLE
        if comps[-1].failed:
            return None
        word = int.from_bytes(comps[-1].value, "big")
        if word == 0:
            self.cache.drop(key)
            return None
        slot = unpack_slot(word)
        if slot.fingerprint != meta.fingerprint:
            return None
        kv_read = self._kv_read_op(slot.pointer, slot.block_bytes)
        if kv_read is None:
            return None
        comp = yield self.fabric.post_one(kv_read)
        if comp.failed:
            self._note_kv_timeout(comp)
            return _UNAVAILABLE if comp.value is TIMEOUT else None
        try:
            _h, kv_key, _v = decode_kv_payload(comp.value)
        except ValueError:
            return None
        return (ref, word) if kv_key == key else None

    def _refresh_v_old(self, key: bytes, meta: KeyMeta, ref: SlotRef):
        """Re-read the slot and confirm it still holds our key (generator)."""
        primary_mn, primary_addr = ref.primary()
        if self.fabric.node(primary_mn).crashed:
            return None
        self.fabric.trace_phase("write.refresh_slot")
        comp = yield self.fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
        if comp.failed:
            return _UNAVAILABLE if comp.value is TIMEOUT else None
        word = int.from_bytes(comp.value, "big")
        if word == 0:
            return None
        slot = unpack_slot(word)
        if slot.fingerprint != meta.fingerprint:
            return None
        op = self._kv_read_op(slot.pointer, slot.block_bytes)
        if op is None:
            return None
        kv = yield self.fabric.post_one(op)
        if kv.failed:
            self._note_kv_timeout(kv)
            return _UNAVAILABLE if kv.value is TIMEOUT else None
        try:
            _h, kv_key, _v = decode_kv_payload(kv.value)
        except ValueError:
            return None
        return word if kv_key == key else None

    # ------------------------------------------------------------ failures
    def _wait_if_blocked(self, subtable: int):
        """Honour the master's membership barrier during MN failover."""
        if self.master is None:
            return
        barrier = self.master.blocked_barrier(subtable)
        while barrier is not None:
            yield barrier
            barrier = self.master.blocked_barrier(subtable)

    def _escalate(self, ref: SlotRef, v_old: int):
        """fail_query RPC to the master (Algorithm 4); returns the resolved
        slot value, or None without a master / an unreachable one
        (generator)."""
        if self.master is None:
            return None
        self.stats.master_escalations += 1
        resolved = yield from self._master_rpc(
            "fail_query",
            lambda token: self.master.fail_query(ref, v_old, token=token))
        return None if resolved is _UNAVAILABLE else resolved

    def _master_rpc(self, name: str, make_call):
        """Call a master RPC with fault-aware timeout/retry semantics
        (generator).

        Without a fault injector this is a plain call.  With one, the
        client↔master link suffers the plan's faults: a dropped request
        means this attempt never reached the master; a dropped reply
        means the call *did* run — the idempotency ``token`` (threaded to
        the master by ``make_call``) lets it answer the retry from its
        reply cache instead of re-applying.  Returns the RPC result, or
        :data:`_UNAVAILABLE` once the retry budget is exhausted.
        """
        inj = self.fabric.injector
        if inj is None:
            return (yield from make_call(None))
        stats = self.fabric.stats
        policy = inj.retry
        token = self.env.next_uid()
        ident = ("master", name, token)
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                stats.rpc_retries += 1
                self.fabric.tracer.note_transport_retry()
            t0 = self.env.now
            fate = inj.fate(ident, _MASTER_LINK, attempt, t0)
            backoff = policy.backoff_us(attempt, fate.backoff_u)
            if fate.drop_request:
                stats.dropped_requests += 1
                yield self.env.attributed_timeout(
                    policy.rpc_timeout_us + backoff, "backoff",
                    "master.retry")
                continue
            result = yield from make_call(token)
            if fate.drop_reply:
                stats.dropped_replies += 1
                waited = self.env.now - t0
                yield self.env.attributed_timeout(
                    max(0.0, policy.rpc_timeout_us - waited) + backoff,
                    "backoff", "master.retry")
                continue
            return result
        stats.rpc_timeouts += 1
        return _UNAVAILABLE

    # ----------------------------------------------------------- background
    def maintenance(self, release_blocks: bool = False):
        """One background cycle: flush batched frees, reclaim bitmaps, and
        optionally hand fully-free blocks back to the memory nodes."""
        self._require_alive()
        yield from self.allocator.flush_frees()
        reclaimed = yield from self.allocator.reclaim()
        if release_blocks:
            yield from self.allocator.release_empty_blocks()
        return reclaimed

    def start_background(self, interval_us: float = 200.0,
                         release_every: int = 8):
        """Spawn the periodic free/reclaim thread (§4.4's background
        batched reclamation).  Every ``release_every``-th cycle also
        returns fully-free blocks to the pool.  Returns the process."""
        def loop():
            cycle = 0
            while not self.crashed:
                yield self.env.timeout(interval_us)
                cycle += 1
                try:
                    yield from self.maintenance(
                        release_blocks=(release_every > 0
                                        and cycle % release_every == 0))
                except ClientCrashed:
                    return
        return self.env.process(loop(), name=f"bg-client-{self.cid}")
