"""The embedded operation log (§4.5).

Log entries live in the last 22 bytes of every KV block, so the single
RDMA_WRITE that installs a KV pair also persists its log entry — no extra
round trip on the write path.  Order is reconstructed from per-size-class
doubly linked lists whose pointers are *pre-positioned* at allocation time
(the FIFO free list makes the allocation order pre-determined).

This module provides:

* entry construction from an allocation (:func:`entry_for_alloc`);
* the verb lists for the three log mutations the client issues —
  committing the winner's old value (Fig. 9 phase 3), clearing a loser's
  used bit, and nothing else (that is the whole log-maintenance cost);
* :class:`LogWalker` — the recovery-side traversal that walks a crashed
  client's per-size-class lists over the fabric and classifies the tail
  requests into the paper's c0-c3 crash cases (§5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..rdma import Fabric, ReadOp, WriteOp
from .addressing import RegionMap
from .memory import AllocResult
from .wire import (
    LOG_ENTRY_SIZE,
    LogEntry,
    NULL_ADDR,
    committed_old_value_bytes,
    decode_kv_block,
    decode_log_entry,
    old_value_offset,
)

__all__ = [
    "entry_for_alloc",
    "commit_old_value_ops",
    "clear_used_ops",
    "LogWalker",
    "WalkedObject",
    "CrashCase",
]


def entry_for_alloc(alloc: AllocResult, opcode: int) -> LogEntry:
    """The log entry written together with a fresh KV pair.

    The old-value field is left unwritten (zero, with a CRC that cannot
    verify) — only the decided last writer commits it later.
    """
    return LogEntry(next_ptr=alloc.next_ptr, prev_ptr=alloc.prev_ptr,
                    old_value=0, old_value_crc=0, opcode=opcode, used=True)


def _replica_ops(region_map: RegionMap, fabric: Fabric, gaddr: int,
                 offset_in_block: int, data: bytes) -> List[WriteOp]:
    ops = []
    for mn_id, addr in region_map.translate(gaddr):
        if fabric.node(mn_id).crashed:
            continue
        ops.append(WriteOp(mn_id, addr + offset_in_block, data))
    return ops


def commit_old_value_ops(region_map: RegionMap, fabric: Fabric, gaddr: int,
                         block_size: int, old_value: int) -> List[WriteOp]:
    """Phase-3 verbs: write (old value, CRC) into the embedded entry of the
    object at ``gaddr`` on every alive replica (one doorbell batch)."""
    return _replica_ops(region_map, fabric, gaddr,
                        old_value_offset(block_size),
                        committed_old_value_bytes(old_value))


def clear_used_ops(region_map: RegionMap, fabric: Fabric, gaddr: int,
                   block_size: int, opcode: int) -> List[WriteOp]:
    """Verbs resetting the used bit of a losing writer's object, marking it
    free for recovery and reclamation."""
    data = bytes([(opcode << 1) | 0])
    return _replica_ops(region_map, fabric, gaddr, block_size - 1, data)


# ---------------------------------------------------------------------------
# Recovery-side traversal
# ---------------------------------------------------------------------------
class CrashCase(enum.Enum):
    """The paper's classification of a potentially crashed request (Fig. 9)."""

    C0_INCOMPLETE_OBJECT = "c0"   # used bit unset / object torn: reclaim
    C1_UNCOMMITTED = "c1"         # old value not committed: redo the request
    C2_BEFORE_PRIMARY = "c2"      # committed, primary not yet CASed: finish it
    C3_FINISHED = "c3"            # committed and primary moved on: nothing


@dataclass
class WalkedObject:
    """One object visited during log traversal."""

    gaddr: int
    class_idx: int
    entry: Optional[LogEntry]     # None if the trailing bytes were torn
    key: Optional[bytes]          # decoded KV payload when intact
    value: Optional[bytes]
    decode_error: Optional[str]
    is_blank: bool = False        # the whole object is zero bytes
    is_tail: bool = False

    @property
    def allocated(self) -> bool:
        return self.entry is not None and self.entry.used


class LogWalker:
    """Walks a crashed client's per-size-class log lists over the fabric.

    The walk follows pre-positioned ``next`` pointers from the stored list
    head and validates each hop with the successor's back pointer and used
    bit: a hop whose target was never written (or was freed and
    re-allocated, so its ``prev`` no longer points back) terminates the
    chain — everything at a chain end is a *potentially crashed* request,
    which is safe to over-approximate because redo is guarded (§5.3).
    """

    def __init__(self, fabric: Fabric, region_map: RegionMap,
                 size_classes: List[int]):
        self.fabric = fabric
        self.region_map = region_map
        self.size_classes = size_classes

    def read_object(self, gaddr: int, class_idx: int):
        """Fetch one object from the first alive replica (generator)."""
        size = self.size_classes[class_idx]
        for mn_id, addr in self.region_map.translate(gaddr):
            if self.fabric.node(mn_id).crashed:
                continue
            comp = yield self.fabric.post_one(ReadOp(mn_id, addr, size))
            if comp.failed:
                continue
            return self._parse(gaddr, class_idx, comp.value)
        return None

    def _parse(self, gaddr: int, class_idx: int, data: bytes) -> WalkedObject:
        entry = decode_log_entry(data[len(data) - LOG_ENTRY_SIZE:])
        blank = not any(data)
        try:
            _header, key, value, _ = decode_kv_block(data)
            return WalkedObject(gaddr=gaddr, class_idx=class_idx, entry=entry,
                                key=key, value=value, decode_error=None,
                                is_blank=blank)
        except ValueError as exc:
            return WalkedObject(gaddr=gaddr, class_idx=class_idx, entry=entry,
                                key=None, value=None, decode_error=str(exc),
                                is_blank=blank)

    def walk_class(self, head: int, class_idx: int,
                   max_objects: int = 1_000_000):
        """Traverse one size class's list (generator).

        Returns ``(visited, terminator)``: the visited objects in
        allocation order (the last has ``is_tail=True``), plus the object
        that ended the walk, if one was read.  A terminator with an unset
        used bit is "either incomplete data or free data" (Appendix A.4.2)
        — a torn c0 write is reclaimed simply by not being in the used set.
        """
        visited: List[WalkedObject] = []
        terminator: Optional[WalkedObject] = None
        seen = set()
        gaddr = head
        prev_gaddr = NULL_ADDR
        while gaddr != NULL_ADDR and len(visited) < max_objects:
            if gaddr in seen:
                break  # defensive: cycle via recycled objects
            seen.add(gaddr)
            obj = yield from self.read_object(gaddr, class_idx)
            if obj is None:
                break
            if obj.entry is None or not obj.entry.used:
                # Never (fully) written: predecessor is the true tail.
                terminator = obj
                break
            if prev_gaddr != NULL_ADDR and obj.entry.prev_ptr != prev_gaddr:
                # Freed and re-linked elsewhere: chain ends at predecessor.
                terminator = obj
                break
            visited.append(obj)
            prev_gaddr = gaddr
            gaddr = obj.entry.next_ptr
        if visited:
            visited[-1].is_tail = True
        return visited, terminator

    @staticmethod
    def classify_tail(obj: WalkedObject,
                      primary_slot_value: Optional[int]) -> CrashCase:
        """Map a tail object to the paper's c0-c3 crash cases.

        ``primary_slot_value`` is the current primary slot word of the
        key's slot (None when the object is too torn to locate a key).
        """
        if obj.entry is None or not obj.entry.used or obj.key is None:
            return CrashCase.C0_INCOMPLETE_OBJECT
        if not obj.entry.old_value_committed:
            return CrashCase.C1_UNCOMMITTED
        if (primary_slot_value is not None
                and primary_slot_value == obj.entry.old_value):
            return CrashCase.C2_BEFORE_PRIMARY
        return CrashCase.C3_FINISHED
