"""FUSEE core: the paper's primary contribution and its metadata machinery."""

from .addressing import RegionConfig, RegionLayout, RegionMap
from .cache import AdaptiveIndexCache, CacheEntry, CacheStats
from .client import ClientConfig, ClientCrashed, CrashPoint, FuseeClient, OpResult
from .kvstore import ClusterConfig, FuseeCluster, FuseeKV
from .master import Master, MasterConfig, RecoveredClientState, RecoveryReport
from .memory import (
    AllocationError,
    AllocResult,
    ClientAllocator,
    ClientTable,
    MnBlockAllocator,
    size_classes_for,
)
from .oplog import CrashCase, LogWalker, WalkedObject
from .race import (
    BucketView,
    IndexFullError,
    KeyMeta,
    RaceConfig,
    RaceHashing,
    SlotRef,
)
from .ring import ConsistentHashRing
from .snapshot import (
    Outcome,
    ReadResult,
    RuleDecision,
    WriteResult,
    evaluate_rules,
    sequential_write,
    snapshot_read,
    snapshot_write,
)
from .wire import (
    LogEntry,
    Slot,
    kv_block_size,
    pack_slot,
    unpack_slot,
)

__all__ = [
    "RegionConfig", "RegionLayout", "RegionMap",
    "AdaptiveIndexCache", "CacheEntry", "CacheStats",
    "ClientConfig", "ClientCrashed", "CrashPoint", "FuseeClient", "OpResult",
    "ClusterConfig", "FuseeCluster", "FuseeKV",
    "Master", "MasterConfig", "RecoveredClientState", "RecoveryReport",
    "AllocationError", "AllocResult", "ClientAllocator", "ClientTable",
    "MnBlockAllocator", "size_classes_for",
    "CrashCase", "LogWalker", "WalkedObject",
    "BucketView", "IndexFullError", "KeyMeta", "RaceConfig", "RaceHashing",
    "SlotRef",
    "ConsistentHashRing",
    "Outcome", "ReadResult", "RuleDecision", "WriteResult",
    "evaluate_rules", "sequential_write", "snapshot_read", "snapshot_write",
    "LogEntry", "Slot", "kv_block_size", "pack_slot", "unpack_slot",
]
