"""Two-level memory management (§4.4).

Level 1 — **coarse-grained, MN-side**: each memory node runs a
compute-light block allocator over its *primary* regions.  An ALLOC RPC
picks a free block, records the requesting client's CID (and the block's
size class) in the block-allocation table of the primary *and* backup
region replicas, and returns the block's global address.  This is the only
allocation work the weak MN cores ever do.

Level 2 — **fine-grained, client-side**: clients carve the blocks they own
into objects with slab allocators (one free list per size class).  Because
objects are always popped from the head of a FIFO free list, the allocation
order of each class is pre-determined, which lets the embedded operation
log pre-position its ``next`` pointer (§4.5).

Freeing is decoupled from reclaiming: any client can free any object by
setting its bit in the block's free bitmap with an RDMA_FAA; only the
owning client reclaims, in the background, by atomically draining bitmap
words with CAS and appending the objects to its free lists.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..rdma import FAIL, CasOp, Fabric, FaaOp, MemoryNode, ReadOp, WriteOp
from .addressing import RegionMap
from .wire import NULL_ADDR

__all__ = [
    "size_classes_for",
    "MnBlockAllocator",
    "ClientAllocator",
    "AllocResult",
    "AllocationError",
    "pack_block_entry",
    "unpack_block_entry",
    "ClientTable",
]


class AllocationError(Exception):
    """Raised when the memory pool cannot satisfy an allocation."""


def size_classes_for(min_object_size: int, block_size: int,
                     largest: Optional[int] = None,
                     growth: float = 1.25) -> List[int]:
    """Slab size classes from ``min_object_size`` upward.

    Classes grow geometrically (~25% steps) and stay multiples of the
    minimum object size so that free-bitmap bits map back to exact object
    offsets.  Finer classes keep internal fragmentation (and hence write
    amplification on the fabric) low.
    """
    largest = largest or max(min_object_size, block_size // 8)
    classes = []
    size = min_object_size
    while size <= largest:
        classes.append(size)
        nxt = int(size * growth)
        nxt = (nxt + min_object_size - 1) // min_object_size * min_object_size
        size = max(size + min_object_size, nxt)
    return classes


# ---------------------------------------------------------------------------
# Block-allocation-table entries (8 bytes, CAS-able)
# ---------------------------------------------------------------------------
_ALLOCATED = 1 << 63


def pack_block_entry(cid: int, class_idx: int) -> int:
    if not 0 <= cid < (1 << 16):
        raise ValueError("cid out of range")
    if not 0 <= class_idx < (1 << 8):
        raise ValueError("class index out of range")
    return _ALLOCATED | (cid << 32) | (class_idx << 24)


def unpack_block_entry(word: int) -> Optional[Tuple[int, int]]:
    """``(cid, class_idx)`` if the block is allocated, else ``None``."""
    if not word & _ALLOCATED:
        return None
    return (word >> 32) & 0xFFFF, (word >> 24) & 0xFF


# ---------------------------------------------------------------------------
# Level 1: MN-side block allocation
# ---------------------------------------------------------------------------
class MnBlockAllocator:
    """Block allocator installed on one memory node.

    Registers the ``alloc_block`` and ``find_client_blocks`` RPC handlers.
    Replication of the block-table entry to backup regions is done by
    writing the backup MNs' memory directly from the handler: in the real
    system the MN issues the mirror writes itself, and their latency is
    amortised over the thousands of KV allocations a 16 MB block serves, so
    charging it to the (already-priced) ALLOC RPC preserves behaviour.
    """

    MN_CENTRAL_CID = 0xFFFF  # owner recorded for MN-side central slabs

    def __init__(self, node: MemoryNode, region_map: RegionMap,
                 nodes: Dict[int, MemoryNode],
                 alloc_cpu_us: float = 2.0,
                 alloc_object_cpu_us: float = 12.0):
        self.node = node
        self.region_map = region_map
        self.nodes = nodes
        self.alloc_cpu_us = alloc_cpu_us
        # Per-object allocation on the weak MN cores — only used by the
        # MN-centric ablation of Fig. 17; deliberately expensive.
        self.alloc_object_cpu_us = alloc_object_cpu_us
        layout = region_map.layout
        self._free_blocks: Deque[Tuple[int, int]] = deque(
            (region_id, block)
            for region_id in region_map.primary_regions_of(node.mn_id)
            for block in range(layout.n_blocks))
        self._central_free: Dict[int, Deque[int]] = {}
        # Optional fault injection: MN->MN mirror writes are skipped while
        # an injected MN<->MN partition blocks the replica (repro.faults).
        self.injector = None
        node.register_rpc("alloc_block", self._handle_alloc)
        node.register_rpc("free_block", self._handle_free)
        node.register_rpc("find_client_blocks", self._handle_find_blocks)
        node.register_rpc("alloc_object", self._handle_alloc_object)

    @property
    def free_block_count(self) -> int:
        return len(self._free_blocks)

    def _replica_reachable(self, mn_id: int) -> bool:
        """Is the replica MN reachable for a mirror write right now?"""
        if mn_id == self.node.mn_id or self.injector is None:
            return True
        return self.injector.mn_reachable(self.node.mn_id, mn_id,
                                          self.node.env.now)

    def _handle_alloc(self, payload: dict):
        cid = payload["cid"]
        class_idx = payload["class_idx"]
        if not self._free_blocks:
            return {"error": "no_space"}, self.alloc_cpu_us
        region_id, block = self._free_blocks.popleft()
        layout = self.region_map.layout
        entry = pack_block_entry(cid, class_idx)
        table_off = layout.block_table_entry_offset(block)
        bitmap_off = layout.bitmap_offset_of(block)
        bitmap_len = layout.bitmap_bytes_per_block
        for mn_id, base in self.region_map.placement(region_id):
            replica = self.nodes[mn_id]
            if replica.crashed or not self._replica_reachable(mn_id):
                continue
            replica.write_word(base + table_off, entry)
            replica.memory[base + bitmap_off:base + bitmap_off + bitmap_len] = (
                bytes(bitmap_len))
        gaddr = self.region_map.gaddr(region_id, layout.block_offset(block))
        return ({"region": region_id, "block": block, "gaddr": gaddr},
                self.alloc_cpu_us)

    def _handle_free(self, payload: dict):
        """FREE interface (§2.1): a client returns a fully-free block.

        The MN clears the block-table entry and bitmap on every region
        replica and returns the block to its free pool.  The caller must
        own the block and hold every object of it on its free lists.
        """
        region_id = payload["region"]
        block = payload["block"]
        cid = payload["cid"]
        layout = self.region_map.layout
        if region_id not in self.region_map.primary_regions_of(
                self.node.mn_id):
            return {"error": "not_primary"}, self.alloc_cpu_us
        table_off = layout.block_table_entry_offset(block)
        primary_base = dict(self.region_map.placement(region_id))[
            self.node.mn_id]
        owner = unpack_block_entry(self.node.read_word(
            primary_base + table_off))
        if owner is None or owner[0] != cid:
            return {"error": "not_owner"}, self.alloc_cpu_us
        bitmap_off = layout.bitmap_offset_of(block)
        bitmap_len = layout.bitmap_bytes_per_block
        for mn_id, base in self.region_map.placement(region_id):
            replica = self.nodes[mn_id]
            if replica.crashed or not self._replica_reachable(mn_id):
                continue
            replica.write_word(base + table_off, 0)
            replica.memory[base + bitmap_off:base + bitmap_off + bitmap_len]                 = bytes(bitmap_len)
        self._free_blocks.append((region_id, block))
        return {"ok": True}, self.alloc_cpu_us

    def _handle_alloc_object(self, payload: dict):
        """Fig. 17 ablation: fine-grained allocation on the MN's weak CPU.

        The MN runs its own slab allocator over blocks it keeps for
        itself; every KV allocation costs a full RPC plus MN CPU time,
        which is exactly the bottleneck the two-level scheme removes."""
        class_idx = payload["class_idx"]
        size = payload["size"]
        free = self._central_free.setdefault(class_idx, deque())
        if not free:
            if not self._free_blocks:
                return {"error": "no_space"}, self.alloc_object_cpu_us
            region_id, block = self._free_blocks.popleft()
            layout = self.region_map.layout
            entry = pack_block_entry(self.MN_CENTRAL_CID, class_idx)
            table_off = layout.block_table_entry_offset(block)
            for mn_id, base in self.region_map.placement(region_id):
                replica = self.nodes[mn_id]
                if not replica.crashed and self._replica_reachable(mn_id):
                    replica.write_word(base + table_off, entry)
            start = layout.block_offset(block)
            for off in range(0, layout.config.block_size - size + 1, size):
                free.append(self.region_map.gaddr(region_id, start + off))
        gaddr = free.popleft()
        return {"gaddr": gaddr}, self.alloc_object_cpu_us

    def _handle_find_blocks(self, payload: dict):
        """Recovery support: all blocks in this MN's primary regions owned
        by the given client (§5.3 memory re-management)."""
        cid = payload["cid"]
        layout = self.region_map.layout
        found = []
        for region_id in self.region_map.primary_regions_of(self.node.mn_id):
            base = dict(self.region_map.placement(region_id))[self.node.mn_id]
            for block in range(layout.n_blocks):
                word = self.node.read_word(
                    base + layout.block_table_entry_offset(block))
                owner = unpack_block_entry(word)
                if owner and owner[0] == cid:
                    found.append({"region": region_id, "block": block,
                                  "class_idx": owner[1]})
        # CPU cost scales with the table scan.
        scan_us = 0.01 * layout.n_blocks * max(
            1, len(self.region_map.primary_regions_of(self.node.mn_id)))
        return {"blocks": found}, max(self.alloc_cpu_us, scan_us)


# ---------------------------------------------------------------------------
# Client-table: per-client, per-size-class list heads, for recovery (§4.5)
# ---------------------------------------------------------------------------
class ClientTable:
    """Locations of the per-client log-list heads, replicated on every MN.

    Laid out at cluster bootstrap: ``heads[cid][class_idx]`` is an 8-byte
    word at a fixed per-MN base.  Clients write their head pointer (once,
    at the first allocation of a class); the master reads any alive replica
    during recovery.
    """

    def __init__(self, bases: Dict[int, int], max_clients: int,
                 n_classes: int):
        self.bases = dict(bases)  # mn_id -> base offset on that MN
        self.max_clients = max_clients
        self.n_classes = n_classes

    @staticmethod
    def table_bytes(max_clients: int, n_classes: int) -> int:
        return max_clients * n_classes * 8

    def slot_offset(self, cid: int, class_idx: int) -> int:
        if not 0 <= cid < self.max_clients:
            raise ValueError(f"cid {cid} out of range")
        if not 0 <= class_idx < self.n_classes:
            raise ValueError(f"class {class_idx} out of range")
        return (cid * self.n_classes + class_idx) * 8

    def locations(self, cid: int, class_idx: int) -> List[Tuple[int, int]]:
        off = self.slot_offset(cid, class_idx)
        return [(mn_id, base + off) for mn_id, base in self.bases.items()]


# ---------------------------------------------------------------------------
# Level 2: client-side slab allocation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AllocResult:
    """An allocated object plus the pre-positioned log-list pointers."""

    gaddr: int
    class_idx: int
    size: int
    next_ptr: int  # head of the free list after this pop (0 if none known)
    prev_ptr: int  # previously allocated object of this class (0 if first)


class _ClassState:
    __slots__ = ("free", "last_alloc", "head", "head_written")

    def __init__(self):
        self.free: Deque[int] = deque()
        self.last_alloc = NULL_ADDR
        self.head = NULL_ADDR
        self.head_written = False


class ClientAllocator:
    """The fine-grained, client-side half of two-level memory management."""

    def __init__(self, env, fabric: Fabric, region_map: RegionMap,
                 client_table: ClientTable, cid: int,
                 size_classes: List[int],
                 mn_ids: Optional[List[int]] = None,
                 refill_watermark: int = 2,
                 mn_centric: bool = False):
        if refill_watermark < 2:
            # The watermark keeps >= 1 object in the list after every pop so
            # the embedded log's next pointer is always pre-positionable.
            raise ValueError("refill_watermark must be >= 2")
        self.env = env
        self.fabric = fabric
        self.region_map = region_map
        self.client_table = client_table
        self.cid = cid
        self.size_classes = list(size_classes)
        self.refill_watermark = refill_watermark
        self.mn_centric = mn_centric
        # None = discover dynamically (the memory pool may grow)
        self._mn_ids = list(mn_ids) if mn_ids else None
        self._rr = cid  # round-robin cursor, staggered per client
        self._classes = [_ClassState() for _ in size_classes]
        self._owned_blocks: List[Tuple[int, int, int]] = []  # (region, block, class)
        self._pending_frees: List[int] = []
        self.stats_blocks_allocated = 0

    # -- helpers ---------------------------------------------------------------
    def class_for(self, nbytes: int) -> int:
        for idx, size in enumerate(self.size_classes):
            if size >= nbytes:
                return idx
        raise AllocationError(
            f"object of {nbytes}B exceeds largest size class "
            f"{self.size_classes[-1]}B")

    def free_list_len(self, class_idx: int) -> int:
        return len(self._classes[class_idx].free)

    def head(self, class_idx: int) -> int:
        return self._classes[class_idx].head

    def last_allocated(self, class_idx: int) -> int:
        return self._classes[class_idx].last_alloc

    def owned_blocks(self) -> List[Tuple[int, int, int]]:
        return list(self._owned_blocks)

    # -- allocation --------------------------------------------------------------
    def alloc(self, class_idx: int):
        """Allocate one object (DES generator).

        Returns an :class:`AllocResult` whose ``next_ptr``/``prev_ptr`` are
        the pre-positioned embedded-log pointers.  Refills from the MN-side
        block allocator when the free list runs low, *before* popping, so
        the next pointer is always known (§4.5 co-design).
        """
        if self.mn_centric:
            return (yield from self._alloc_mn_centric(class_idx))
        state = self._classes[class_idx]
        while len(state.free) < self.refill_watermark:
            yield from self._refill(class_idx)
        gaddr = state.free.popleft()
        result = AllocResult(gaddr=gaddr, class_idx=class_idx,
                             size=self.size_classes[class_idx],
                             next_ptr=state.free[0],
                             prev_ptr=state.last_alloc)
        state.last_alloc = gaddr
        if state.head == NULL_ADDR:
            state.head = gaddr
            yield from self._publish_head(class_idx, gaddr)
        return result

    def _candidate_mns(self) -> List[int]:
        return self._mn_ids if self._mn_ids is not None \
            else list(self.fabric.nodes)

    def _alloc_mn_centric(self, class_idx: int):
        """Fig. 17 ablation: one RPC to a weak MN core per object."""
        size = self.size_classes[class_idx]
        mns = self._candidate_mns()
        for _ in range(len(mns)):
            mn_id = mns[self._rr % len(mns)]
            self._rr += 1
            if self.fabric.node(mn_id).crashed:
                continue
            reply = yield self.fabric.rpc(mn_id, "alloc_object",
                                          {"class_idx": class_idx,
                                           "size": size})
            if reply is FAIL or "error" in reply:
                continue
            return AllocResult(gaddr=reply["gaddr"], class_idx=class_idx,
                               size=size, next_ptr=NULL_ADDR,
                               prev_ptr=NULL_ADDR)
        raise AllocationError(
            f"client {self.cid}: MN-centric allocation failed on all MNs")

    def _refill(self, class_idx: int):
        last_error = None
        mns = self._candidate_mns()
        for _ in range(len(mns)):
            mn_id = mns[self._rr % len(mns)]
            self._rr += 1
            if self.fabric.node(mn_id).crashed:
                continue
            reply = yield self.fabric.rpc(mn_id, "alloc_block",
                                          {"cid": self.cid,
                                           "class_idx": class_idx})
            if reply is FAIL:
                continue
            if "error" in reply:
                last_error = reply["error"]
                continue
            self._adopt_block(reply["region"], reply["block"], class_idx)
            return
        raise AllocationError(
            f"client {self.cid}: no MN could allocate a block "
            f"({last_error or 'all MNs unreachable'})")

    def _adopt_block(self, region_id: int, block: int, class_idx: int) -> None:
        layout = self.region_map.layout
        size = self.size_classes[class_idx]
        start = layout.block_offset(block)
        state = self._classes[class_idx]
        for off in range(0, layout.config.block_size - size + 1, size):
            state.free.append(self.region_map.gaddr(region_id, start + off))
        self._owned_blocks.append((region_id, block, class_idx))
        self.stats_blocks_allocated += 1

    def adopt_recovered(self, region_id: int, block: int, class_idx: int,
                        free_gaddrs: List[int], head: int,
                        last_alloc: int) -> None:
        """Install state reconstructed by the recovery process (§5.3)."""
        state = self._classes[class_idx]
        state.free.extend(free_gaddrs)
        state.head = head
        state.head_written = head != NULL_ADDR
        state.last_alloc = last_alloc
        self._owned_blocks.append((region_id, block, class_idx))

    def _publish_head(self, class_idx: int, gaddr: int):
        """Record the list head on the MNs so recovery can find it."""
        ops = [WriteOp(mn_id, addr, gaddr.to_bytes(8, "big"))
               for mn_id, addr in self.client_table.locations(self.cid,
                                                              class_idx)
               if not self.fabric.node(mn_id).crashed]
        if ops:
            yield self.fabric.post(ops)
        self._classes[class_idx].head_written = True

    # -- freeing and reclaiming ----------------------------------------------------
    def note_free(self, gaddr: int) -> None:
        """Queue an object for the batched background free (§4.4)."""
        self._pending_frees.append(gaddr)

    @property
    def pending_free_count(self) -> int:
        return len(self._pending_frees)

    def flush_frees(self):
        """Set the free bit of every queued object with RDMA_FAAs (generator).

        One FAA per (object, replica); all are posted as a single doorbell
        batch — this is the off-critical-path background work.
        """
        if not self._pending_frees:
            return
        pending, self._pending_frees = self._pending_frees, []
        layout = self.region_map.layout
        ops = []
        for gaddr in pending:
            region_id, offset = self.region_map.split(gaddr)
            byte_off, bit = layout.object_bit(offset)
            # FAA operates on the aligned 8-byte word containing the byte.
            word_off = byte_off - (byte_off % 8)
            shift = (7 - (byte_off % 8)) * 8 + bit  # big-endian bit position
            for mn_id, base in self.region_map.placement(region_id):
                if self.fabric.node(mn_id).crashed:
                    continue
                ops.append(FaaOp(mn_id, base + word_off, 1 << shift))
        if ops:
            yield self.fabric.post(ops)

    def release_empty_blocks(self):
        """Return fully-free blocks to their memory nodes (generator).

        A block is releasable when every one of its objects is on this
        client's free lists.  Releasing shrinks the client's footprint,
        closing the loop of the two-level scheme (ALLOC/FREE, §2.1).
        Returns the number of blocks released.
        """
        layout = self.region_map.layout
        released = 0
        # group free objects by (region, block)
        free_by_block: Dict[Tuple[int, int], int] = {}
        for state in self._classes:
            for gaddr in state.free:
                region_id, offset = self.region_map.split(gaddr)
                try:
                    block = layout.block_index_of(offset)
                except ValueError:
                    continue
                key = (region_id, block)
                free_by_block[key] = free_by_block.get(key, 0) + 1
        for region_id, block, class_idx in list(self._owned_blocks):
            size = self.size_classes[class_idx]
            objects = sum(1 for _ in range(
                0, layout.config.block_size - size + 1, size))
            if free_by_block.get((region_id, block), 0) != objects:
                continue
            # never release the block feeding the pre-positioned next ptr
            state = self._classes[class_idx]
            head_block = None
            if state.free:
                rid, off = self.region_map.split(state.free[0])
                try:
                    head_block = (rid, layout.block_index_of(off))
                except ValueError:
                    head_block = None
            if head_block == (region_id, block) and                     len(state.free) <= objects:
                continue
            primary_mn = self.region_map.placement(region_id)[0][0]
            if self.fabric.node(primary_mn).crashed:
                continue
            reply = yield self.fabric.rpc(primary_mn, "free_block",
                                          {"region": region_id,
                                           "block": block,
                                           "cid": self.cid})
            if reply is FAIL or "error" in reply:
                continue
            block_start = layout.block_offset(block)
            block_end = block_start + layout.config.block_size
            keep = []
            for gaddr in state.free:
                rid, off = self.region_map.split(gaddr)
                if rid == region_id and block_start <= off < block_end:
                    continue
                keep.append(gaddr)
            state.free.clear()
            state.free.extend(keep)
            self._owned_blocks.remove((region_id, block, class_idx))
            released += 1
        return released

    def reclaim(self):
        """Drain free bitmaps of owned blocks back into free lists (generator).

        For each owned block: read its bitmap from the primary replica,
        and for every non-zero word CAS it to zero (expected = read value).
        A lost CAS race with a concurrent freeing FAA simply leaves the bit
        for the next reclaim cycle.  Returns the number of objects
        reclaimed.
        """
        layout = self.region_map.layout
        reclaimed = 0
        for region_id, block, class_idx in self._owned_blocks:
            primary_mn, base = self.region_map.placement(region_id)[0]
            if self.fabric.node(primary_mn).crashed:
                continue
            bitmap_off = layout.bitmap_offset_of(block)
            nbytes = layout.bitmap_bytes_per_block
            comps = yield self.fabric.post(
                [ReadOp(primary_mn, base + bitmap_off, nbytes)])
            if comps[0].failed:
                continue
            bitmap = comps[0].value
            for word_idx in range(0, nbytes, 8):
                word = int.from_bytes(bitmap[word_idx:word_idx + 8], "big")
                if word == 0:
                    continue
                cas_ops = []
                for mn_id, rep_base in self.region_map.placement(region_id):
                    if self.fabric.node(mn_id).crashed:
                        continue
                    cas_ops.append(CasOp(mn_id, rep_base + bitmap_off + word_idx,
                                         expected=word, swap=0))
                comps = yield self.fabric.post(cas_ops)
                if not comps or not comps[0].cas_succeeded():
                    continue  # racing FAA; retry next cycle
                reclaimed += self._reclaim_word(region_id, block, class_idx,
                                                word_idx, word)
        return reclaimed

    def _reclaim_word(self, region_id: int, block: int, class_idx: int,
                      word_idx: int, word: int) -> int:
        layout = self.region_map.layout
        size = self.size_classes[class_idx]
        state = self._classes[class_idx]
        block_start = layout.block_offset(block)
        count = 0
        for byte_in_word in range(8):
            byte = (word >> ((7 - byte_in_word) * 8)) & 0xFF
            for bit in range(8):
                if not byte & (1 << bit):
                    continue
                unit = (word_idx + byte_in_word) * 8 + bit
                offset = block_start + unit * layout.config.min_object_size
                # Only units at object starts are set by note_free().
                state.free.append(self.region_map.gaddr(region_id, offset))
                count += 1
        return count
