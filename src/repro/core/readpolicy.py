"""Replica selection for KV-block READs (read-spreading).

FUSEE replicates every KV block across ``replication_factor`` memory
nodes (§4.3), yet the paper's client always reads the first alive
replica.  At NIC saturation that leaves backup tx ports under-used while
the primary's serialisation line queues — part of the Fig. 13 plateau.
:class:`ReplicaReadPolicy` lets each client spread its KV READs over the
alive replicas instead:

* ``primary`` — paper-faithful first-alive replica (the default);
* ``round_robin`` — rotate over the alive replicas, seeded by client id
  so a fleet of clients decorrelates;
* ``least_loaded`` — pick the replica whose memory node has the smallest
  tx-NIC backlog right now (ties go to the primary-most replica, so an
  idle fabric behaves like ``primary``).

Spreading is safe because KV blocks are immutable out-of-place objects:
every replica is written in the same doorbell batch *before* a pointer
to the object can be installed, and invalidation flags are broadcast to
all alive replicas (§4.6) — any alive replica is as fresh as the
primary.  Index (slot) reads are unaffected, and the degraded read path
of Algorithm 4 still goes through the index placement.

Under fault injection a replica whose read just timed out is marked
*suspect* for ``suspect_window_us`` and deprioritised, so the client's
retry lands on a different replica instead of hammering a partitioned or
gray node (``primary`` mode skips this to stay byte-identical to the
paper's behaviour).  Every choice increments
``fabric.stats.kv_replica_reads`` — the per-replica read-skew counter
sampled into the ``kv_read_skew`` metrics series.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["ReplicaReadPolicy", "READ_SPREAD_MODES"]

READ_SPREAD_MODES = ("primary", "round_robin", "least_loaded")


class ReplicaReadPolicy:
    """Per-client choice of which alive data replica serves a KV READ."""

    def __init__(self, fabric, mode: str = "primary", cid: int = 0,
                 suspect_window_us: float = 500.0):
        if mode not in READ_SPREAD_MODES:
            raise ValueError(f"unknown read_spread mode {mode!r}; "
                             f"pick from {READ_SPREAD_MODES}")
        self.fabric = fabric
        self.mode = mode
        self.suspect_window_us = suspect_window_us
        self._rr = cid  # seeded rotation offset: clients start staggered
        self._suspects: Dict[int, float] = {}

    def note_timeout(self, mn_id: int) -> None:
        """Deprioritise a replica whose READ just timed out."""
        self._suspects[mn_id] = (self.fabric.env.now
                                 + self.suspect_window_us)

    def _fresh(self, candidates: List[Tuple[int, int]]
               ) -> List[Tuple[int, int]]:
        if not self._suspects:
            return candidates
        now = self.fabric.env.now
        fresh = [c for c in candidates
                 if self._suspects.get(c[0], -1.0) <= now]
        return fresh or candidates

    def choose(self, candidates: List[Tuple[int, int]]) -> Tuple[int, int]:
        """Pick one ``(mn_id, addr)`` from alive replicas, primary first."""
        if self.mode == "primary" or len(candidates) == 1:
            choice = candidates[0]
        else:
            usable = self._fresh(candidates)
            if self.mode == "round_robin":
                choice = usable[self._rr % len(usable)]
                self._rr += 1
            else:  # least_loaded
                now = self.fabric.env.now
                choice = None
                best = None
                for index, cand in enumerate(usable):
                    # total queued tx work across the node's ports —
                    # identical to nic_tx.backlog on single-queue MNs
                    backlog = self.fabric.node(cand[0]).tx_backlog(now)
                    rank = (backlog, index)
                    if best is None or rank < best:
                        choice, best = cand, rank
        reads = self.fabric.stats.kv_replica_reads
        reads[choice[0]] = reads.get(choice[0], 0) + 1
        return choice
