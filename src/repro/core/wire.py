"""On-wire / in-memory data formats.

Everything FUSEE stores on a memory node is real bytes; this module is the
single place that knows how to encode and decode them.

Formats (all integers big-endian):

**Index slot** — 8 bytes, the atomic unit of RACE hashing (§4.2)::

    | fingerprint (8 bits) | length (8 bits) | pointer (48 bits) |

  ``fingerprint`` is one byte of the key hash used to filter candidate
  slots without fetching KV pairs; ``length`` is the KV block size in
  64-byte units (so a one-sided READ knows how many bytes to fetch);
  ``pointer`` is the 48-bit global address of the KV block.  The empty
  slot is the all-zero word.

**KV block** — the object a slot points to::

    | header (16 B) | key | value | padding | embedded log entry (22 B) |

  header: flags(1) keylen(2) vallen(4) crc32(4) reserved(5).
  flags bit 0 = INVALID (set by an UPDATE/DELETE writer to invalidate
  cached copies, §4.6).  The embedded log entry sits at the *end* of the
  block so that the order-preserving RDMA_WRITE makes its trailing used
  bit an integrity marker for the whole object (§4.5).

**Embedded log entry** — 22 bytes (§4.5, Fig. 8a)::

    | next ptr (6 B) | prev ptr (6 B) | old value (8 B) | CRC (1 B) |
    | opcode (7 bits) + used bit (1 bit)                             |

  The 1-byte CRC covers the old-value field; an *uncommitted* entry (old
  value never written) fails the CRC check, which is how recovery
  distinguishes committed winners from in-flight operations (§5.3).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "SLOT_SIZE",
    "SLOT_LEN_UNIT",
    "LOG_ENTRY_SIZE",
    "KV_HEADER_SIZE",
    "NULL_ADDR",
    "MASTER_COMMIT_OLD_VALUE",
    "OP_INSERT",
    "OP_UPDATE",
    "OP_DELETE",
    "FLAG_INVALID",
    "committed_old_value_bytes",
    "old_value_offset",
    "Slot",
    "KvHeader",
    "LogEntry",
    "pack_slot",
    "unpack_slot",
    "make_fingerprint",
    "kv_block_size",
    "kv_len_units",
    "encode_kv_block",
    "encode_kv_body",
    "decode_kv_block",
    "decode_kv_payload",
    "encode_log_entry",
    "decode_log_entry",
    "log_entry_offset",
    "crc8",
]

SLOT_SIZE = 8
SLOT_LEN_UNIT = 64
LOG_ENTRY_SIZE = 22
KV_HEADER_SIZE = 16
NULL_ADDR = 0

# Special old-value the master writes to commit a log on a crashed client's
# behalf so recovery never redoes the operation (§5.4 / Appendix A.4.3).
MASTER_COMMIT_OLD_VALUE = 0

OP_INSERT = 1
OP_UPDATE = 2
OP_DELETE = 3

_POINTER_MASK = (1 << 48) - 1

FLAG_INVALID = 0x01

_KV_HEADER = struct.Struct(">BHLL5x")
_LOG_TAIL = struct.Struct(">QBB")  # old value, crc, opcode|used


# ---------------------------------------------------------------------------
# CRC-8 (poly 0x07, init 0x9E).  The non-zero init guarantees that the
# all-zero "old value never written" state fails verification, which the
# recovery path relies on.
# ---------------------------------------------------------------------------
def _build_crc8_table():
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        table.append(crc)
    return tuple(table)


_CRC8_TABLE = _build_crc8_table()


def crc8(data: bytes, init: int = 0x9E) -> int:
    crc = init
    for byte in data:
        crc = _CRC8_TABLE[crc ^ byte]
    return crc


# ---------------------------------------------------------------------------
# Index slots
# ---------------------------------------------------------------------------
# Decoded on every index READ (several per KV operation), so a
# hand-written __slots__ class instead of a frozen dataclass: plain
# attribute assignment beats object.__setattr__ several times over,
# while eq/hash/repr mirror the dataclass exactly.
class Slot:
    """Decoded 8-byte index slot."""

    __slots__ = ("fingerprint", "length_units", "pointer")

    def __init__(self, fingerprint: int, length_units: int, pointer: int):
        self.fingerprint = fingerprint
        self.length_units = length_units  # KV block size in SLOT_LEN_UNIT units
        self.pointer = pointer  # 48-bit global address

    def __repr__(self) -> str:
        return (f"Slot(fingerprint={self.fingerprint!r}, "
                f"length_units={self.length_units!r}, "
                f"pointer={self.pointer!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not Slot:
            return NotImplemented
        return (self.fingerprint == other.fingerprint
                and self.length_units == other.length_units
                and self.pointer == other.pointer)

    def __hash__(self) -> int:
        return hash((self.fingerprint, self.length_units, self.pointer))

    @property
    def empty(self) -> bool:
        return self.pointer == NULL_ADDR

    @property
    def block_bytes(self) -> int:
        return self.length_units * SLOT_LEN_UNIT


def pack_slot(fingerprint: int, length_units: int, pointer: int) -> int:
    """Pack slot fields into the 8-byte integer stored in the index."""
    if not 0 <= fingerprint < 256:
        raise ValueError(f"fingerprint {fingerprint} out of range")
    if not 0 <= length_units < 256:
        raise ValueError(f"length {length_units} out of range (in 64B units)")
    if not 0 <= pointer <= _POINTER_MASK:
        raise ValueError(f"pointer {pointer:#x} exceeds 48 bits")
    return (fingerprint << 56) | (length_units << 48) | pointer


def unpack_slot(word: int) -> Slot:
    return Slot(fingerprint=(word >> 56) & 0xFF,
                length_units=(word >> 48) & 0xFF,
                pointer=word & _POINTER_MASK)


def make_fingerprint(key_hash: int) -> int:
    """One byte of the key hash, guaranteed non-zero for non-empty slots.

    A zero fingerprint with a non-null pointer would be fine, but keeping
    it non-zero makes hexdumps easier to read and mirrors RACE.
    """
    fp = (key_hash >> 40) & 0xFF
    return fp or 1


# ---------------------------------------------------------------------------
# KV blocks
# ---------------------------------------------------------------------------
class KvHeader:
    """Decoded KV-block header (one per SEARCH-path READ — see Slot)."""

    __slots__ = ("invalid", "key_len", "value_len", "crc32")

    def __init__(self, invalid: bool, key_len: int, value_len: int,
                 crc32: int):
        self.invalid = invalid
        self.key_len = key_len
        self.value_len = value_len
        self.crc32 = crc32

    def __repr__(self) -> str:
        return (f"KvHeader(invalid={self.invalid!r}, "
                f"key_len={self.key_len!r}, value_len={self.value_len!r}, "
                f"crc32={self.crc32!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not KvHeader:
            return NotImplemented
        return (self.invalid == other.invalid
                and self.key_len == other.key_len
                and self.value_len == other.value_len
                and self.crc32 == other.crc32)

    def __hash__(self) -> int:
        return hash((self.invalid, self.key_len, self.value_len,
                     self.crc32))


def kv_block_size(key_len: int, value_len: int) -> int:
    """Minimum bytes a KV pair needs, including header and log entry."""
    return KV_HEADER_SIZE + key_len + value_len + LOG_ENTRY_SIZE


def kv_len_units(key_len: int, value_len: int) -> int:
    """Slot ``Len`` field: the KV pair's size in 64-byte units (§4.2) —
    the *actual* pair size, so a SEARCH reads only what it needs, not the
    whole slab class."""
    need = KV_HEADER_SIZE + key_len + value_len
    return (need + SLOT_LEN_UNIT - 1) // SLOT_LEN_UNIT


def encode_kv_block(key: bytes, value: bytes, block_size: int,
                    log_entry: "LogEntry") -> bytes:
    """Serialise a KV pair + its embedded log entry into one block image.

    The block image is what a single order-preserving RDMA_WRITE carries:
    header, key, value, padding, then the log entry whose trailing used bit
    doubles as the whole-object integrity marker.
    """
    need = kv_block_size(len(key), len(value))
    if block_size < need:
        raise ValueError(f"block of {block_size}B cannot hold {need}B KV pair")
    body = encode_kv_body(key, value)
    padding = bytes(block_size - len(body) - LOG_ENTRY_SIZE)
    return body + padding + encode_log_entry(log_entry)


def encode_kv_body(key: bytes, value: bytes) -> bytes:
    """Serialise just the KV payload (header + key + value).

    This is the first WRITE of the two-WRITE doorbell batch a client
    posts per replica (body, then log entry); the padding between them
    is never transmitted, so callers that only need the wire images can
    skip materialising the whole block.
    """
    header = _KV_HEADER.pack(0, len(key), len(value),
                             zlib.crc32(key + value) & 0xFFFFFFFF)
    return header + key + value


def decode_kv_payload(data: bytes):
    """Decode just the KV payload (header + key + value) of a block image.

    This is what SEARCH-path reads decode: a slot's ``Len`` field covers
    only the payload (``kv_len_units``), not the trailing log entry.
    Returns ``(header, key, value)``; raises ``ValueError`` on torn or
    inconsistent data.
    """
    if len(data) < KV_HEADER_SIZE:
        raise ValueError("block too small")
    flags, key_len, value_len, crc = _KV_HEADER.unpack_from(data, 0)
    end = KV_HEADER_SIZE + key_len + value_len
    if end > len(data):
        raise ValueError("header lengths exceed payload")
    body = bytes(data[KV_HEADER_SIZE:end])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ValueError("KV body CRC mismatch")
    key = body[:key_len]
    value = body[key_len:]
    header = KvHeader(invalid=bool(flags & FLAG_INVALID),
                      key_len=key_len, value_len=value_len, crc32=crc)
    return header, key, value


def decode_kv_block(data: bytes):
    """Decode a block image; returns ``(header, key, value, log_entry)``.

    Raises ``ValueError`` if the header is inconsistent with the data or
    the body CRC does not match (torn write / reclaimed object detection,
    the check RACE hashing performs on every data access, §4.4).
    """
    if len(data) < KV_HEADER_SIZE + LOG_ENTRY_SIZE:
        raise ValueError("block too small")
    flags, key_len, value_len, crc = _KV_HEADER.unpack_from(data, 0)
    end = KV_HEADER_SIZE + key_len + value_len
    if end > len(data) - LOG_ENTRY_SIZE:
        raise ValueError("header lengths exceed block")
    key = bytes(data[KV_HEADER_SIZE:KV_HEADER_SIZE + key_len])
    value = bytes(data[KV_HEADER_SIZE + key_len:end])
    if zlib.crc32(key + value) & 0xFFFFFFFF != crc:
        raise ValueError("KV body CRC mismatch")
    header = KvHeader(invalid=bool(flags & FLAG_INVALID),
                      key_len=key_len, value_len=value_len, crc32=crc)
    entry = decode_log_entry(data[len(data) - LOG_ENTRY_SIZE:])
    return header, key, value, entry


def log_entry_offset(block_size: int) -> int:
    """Byte offset of the embedded log entry within a block."""
    return block_size - LOG_ENTRY_SIZE


def old_value_offset(block_size: int) -> int:
    """Byte offset of the (old value, CRC) pair — the log *header* that the
    winner commits in phase 3 of Fig. 9."""
    return block_size - LOG_ENTRY_SIZE + 12


# ---------------------------------------------------------------------------
# Embedded log entries
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LogEntry:
    """Decoded 22-byte embedded operation log entry (§4.5)."""

    next_ptr: int
    prev_ptr: int
    old_value: int
    old_value_crc: int
    opcode: int
    used: bool

    @property
    def old_value_committed(self) -> bool:
        """True iff the old-value field was written with a matching CRC."""
        return self.old_value_crc == crc8(struct.pack(">Q", self.old_value))


def encode_log_entry(entry: LogEntry) -> bytes:
    for name, ptr in (("next", entry.next_ptr), ("prev", entry.prev_ptr)):
        if not 0 <= ptr <= _POINTER_MASK:
            raise ValueError(f"{name} pointer {ptr:#x} exceeds 48 bits")
    if not 0 <= entry.opcode < 128:
        raise ValueError(f"opcode {entry.opcode} exceeds 7 bits")
    head = entry.next_ptr.to_bytes(6, "big") + entry.prev_ptr.to_bytes(6, "big")
    tail = _LOG_TAIL.pack(entry.old_value & ((1 << 64) - 1),
                          entry.old_value_crc & 0xFF,
                          (entry.opcode << 1) | (1 if entry.used else 0))
    return head + tail


def decode_log_entry(data: bytes) -> LogEntry:
    if len(data) != LOG_ENTRY_SIZE:
        raise ValueError(f"log entry must be {LOG_ENTRY_SIZE}B, got {len(data)}")
    next_ptr = int.from_bytes(data[0:6], "big")
    prev_ptr = int.from_bytes(data[6:12], "big")
    old_value, crc, op_used = _LOG_TAIL.unpack_from(data, 12)
    return LogEntry(next_ptr=next_ptr, prev_ptr=prev_ptr,
                    old_value=old_value, old_value_crc=crc,
                    opcode=op_used >> 1, used=bool(op_used & 1))


def committed_old_value_bytes(old_value: int) -> bytes:
    """The 9-byte (old value, CRC) image the winner writes in phase 3."""
    payload = struct.pack(">Q", old_value & ((1 << 64) - 1))
    return payload + bytes([crc8(payload)])
