"""The SNAPSHOT client-centric replication protocol (§4.3, Algorithms 1-2).

SNAPSHOT keeps ``r`` replicas of each 8-byte index slot linearizable
without server CPUs and without serializing conflicting writers:

* READ — fetch the primary slot with one RDMA_READ (1 RTT).
* WRITE — all conflicting writers broadcast RDMA_CAS to the *backup*
  slots (expected = the old primary value, swap = their own new value).
  The atomicity of CAS fixes each backup exactly once per round, and the
  returned old values (``v_list``) let every writer *locally* decide the
  unique last writer via three rules:

  - **Rule 1**: a writer that modified *all* backups wins (fast path).
  - **Rule 2**: a writer that modified a *majority* of backups wins.
  - **Rule 3**: otherwise, after confirming via one extra READ that the
    primary is still unmodified, the writer whose proposed value is the
    *minimum* value present in ``v_list`` wins.

  The winner makes all backups hold its value, commits its operation log,
  and finally CASes the primary.  Losers spin on the primary until it
  changes; their writes linearize immediately before the winner's
  (last-writer-wins register semantics), so they report success.

Bounded worst-case cost (§4.3 "Performance"): 1 RTT for the backup
broadcast, +1 for Rule-2/3 fix-up, +1 for the Rule-3 check read, +1 for
the primary CAS — 3/4/5 RTTs for Rules 1/2/3 on top of the caller's
initial primary read.

Failure handling (Algorithm 4) surfaces as the ``NEED_MASTER`` outcome:
the caller (client) escalates to the master, which acts as a
representative last writer (§5.2).

``sequential_write`` implements the FUSEE-CR ablation: CAS every replica
in order, which costs ``r`` RTTs and serializes conflicting writers.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..rdma import FAIL, CasOp, Fabric, ReadOp
from .race import SlotRef

__all__ = [
    "Outcome",
    "WriteResult",
    "ReadResult",
    "evaluate_rules",
    "snapshot_read",
    "snapshot_write",
    "sequential_write",
    "RuleDecision",
]


class Outcome(enum.Enum):
    WIN_RULE1 = "rule1"
    WIN_RULE2 = "rule2"
    WIN_RULE3 = "rule3"
    # SWARM strategy wins (repro.core.replication): the broadcast CAS won
    # the primary — conflict-free in 1 RTT, or after backup fix-up.
    WIN_SWARM = "swarm"
    WIN_SWARM_FIXUP = "swarm_fixup"
    LOSE = "lose"          # another writer won; our write linearized before it
    FINISH = "finish"      # round already committed when Rule 3 was checked
    NEED_MASTER = "need_master"  # a replica failed; escalate (Algorithm 4)

    @property
    def won(self) -> bool:
        return self in (Outcome.WIN_RULE1, Outcome.WIN_RULE2,
                        Outcome.WIN_RULE3, Outcome.WIN_SWARM,
                        Outcome.WIN_SWARM_FIXUP)

    @property
    def completed(self) -> bool:
        """Did the WRITE operation take effect (win or linearized-before)?"""
        return self is not Outcome.NEED_MASTER


class RuleDecision(enum.Enum):
    """Raw result of Algorithm 2 before the caller acts on it."""

    RULE1 = 1
    RULE2 = 2
    RULE3 = 3
    LOSE = 4
    FINISH = 5
    FAIL = 6
    NEED_CHECK = 7  # Rule 3 requires the extra primary read first


@dataclass(frozen=True)
class WriteResult:
    outcome: Outcome
    v_old: int
    v_new: int
    committed: Optional[int]  # value observed/known committed for this round
    rtts: int


@dataclass(frozen=True)
class ReadResult:
    value: Optional[int]   # None when escalation to the master is required
    from_backups: bool
    rtts: int
    # SWARM reads only: did the least-loaded local replica's word match
    # the primary's timestamp word (None for protocols without local
    # read validation)?
    validated: Optional[bool] = None


def evaluate_rules(v_list: List[object], v_new: int,
                   check_value: Optional[int] = None,
                   v_old: Optional[int] = None) -> RuleDecision:
    """Algorithm 2, as a pure function.

    ``v_list`` holds, per backup slot, the value known to be in that slot
    after the CAS broadcast (or FAIL).  ``check_value`` is the primary
    value from the Rule-3 check read; pass ``None`` on the first call and
    re-invoke with the read value if ``NEED_CHECK`` is returned.
    """
    if any(v is FAIL for v in v_list):
        return RuleDecision.FAIL
    if not v_list:
        raise ValueError("evaluate_rules requires at least one backup")
    counts = Counter(v_list)
    v_maj, cnt_maj = counts.most_common(1)[0]
    if cnt_maj == len(v_list):
        return RuleDecision.RULE1 if v_maj == v_new else RuleDecision.LOSE
    if 2 * cnt_maj > len(v_list):
        return RuleDecision.RULE2 if v_maj == v_new else RuleDecision.LOSE
    if v_new not in v_list:
        return RuleDecision.LOSE
    if check_value is None:
        return RuleDecision.NEED_CHECK
    if check_value is FAIL:
        return RuleDecision.FAIL
    if check_value != v_old:
        return RuleDecision.FINISH
    if min(v_list) == v_new:  # type: ignore[type-var]
        return RuleDecision.RULE3
    return RuleDecision.LOSE


def snapshot_read(fabric: Fabric, ref: SlotRef):
    """Algorithm 4 READ (generator).

    Reads the primary slot; on primary failure reads all backups and
    returns their common value if they agree, else defers to the master
    (``value=None``).
    """
    primary_mn, primary_addr = ref.primary()
    fabric.trace_phase("read.primary")
    comp = yield fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
    if not comp.failed:
        return ReadResult(value=int.from_bytes(comp.value, "big"),
                          from_backups=False, rtts=1)
    backups = ref.backups()
    if not backups:
        return ReadResult(value=None, from_backups=False, rtts=1)
    fabric.trace_phase("read.backups")
    comps = yield fabric.post([ReadOp(mn, addr, 8) for mn, addr in backups])
    values = {int.from_bytes(c.value, "big") for c in comps if not c.failed}
    if len(values) == 1:
        return ReadResult(value=values.pop(), from_backups=True, rtts=2)
    return ReadResult(value=None, from_backups=True, rtts=2)


def snapshot_write(fabric: Fabric, ref: SlotRef, v_old: int, v_new: int,
                   on_win: Optional[Callable[[int], object]] = None,
                   retry_sleep_us: float = 2.0,
                   max_wait_rounds: int = 10_000,
                   phase_guard: Optional[Callable[[], object]] = None):
    """Algorithm 1 WRITE (generator), starting after the caller has read
    the primary slot (the read is batched into the caller's first phase).

    ``on_win(v_old)`` — optional generator factory run by the decided last
    writer after conflict resolution but *before* the primary CAS: FUSEE
    commits the embedded operation log there (Fig. 9 phase 3).

    Returns a :class:`WriteResult`; ``NEED_MASTER`` means a replica failed
    mid-protocol and the caller must consult the master (Algorithm 4).
    """
    if v_old == v_new:
        raise ValueError("out-of-place modification guarantees v_old != v_new")
    backups = ref.backups()
    rtts = 0

    if not backups:
        # Degenerate r=1 configuration: plain RACE-style CAS on the only
        # replica.  A failed CAS means a conflicting writer committed first;
        # last-writer-wins lets us linearize immediately before it.
        if on_win is not None:
            yield from on_win(v_old)
            rtts += 1
        primary_mn, primary_addr = ref.primary()
        fabric.trace_phase("repl.primary_cas")
        comp = yield fabric.post_one(CasOp(primary_mn, primary_addr,
                                           expected=v_old, swap=v_new))
        rtts += 1
        if comp.failed:
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
        if comp.cas_succeeded():
            return WriteResult(Outcome.WIN_RULE1, v_old, v_new, v_new, rtts)
        return WriteResult(Outcome.LOSE, v_old, v_new, comp.value, rtts)

    # Phase: broadcast CAS to all backup slots (one doorbell batch, 1 RTT).
    # Lease check before each phase: clients must not modify slots the
    # master is repairing (Appendix A.4, "clients check and extend their
    # leases before performing each read and write").  The None-check is
    # inlined at each phase: a guard() sub-generator would allocate a
    # generator per phase even with no guard installed.
    if phase_guard is not None:
        yield from phase_guard()
    fabric.trace_phase("repl.backup_cas")
    comps = yield fabric.post([CasOp(mn, addr, expected=v_old, swap=v_new)
                               for mn, addr in backups])
    rtts += 1
    v_list: List[object] = []
    for comp in comps:
        if comp.failed:
            # Covers both crashed-replica FAIL and fault-injected TIMEOUT:
            # an uncertain CAS (it may have applied with the reply lost)
            # escalates to NEED_MASTER, and fail_query resolves the slot's
            # true committed value once the link heals — never guessed here.
            v_list.append(FAIL)
        elif comp.value == v_old:   # our CAS took effect: slot now holds v_new
            v_list.append(v_new)
        else:                       # someone else's value is in the slot
            v_list.append(comp.value)

    decision = evaluate_rules(v_list, v_new)
    if decision is RuleDecision.NEED_CHECK:
        primary_mn, primary_addr = ref.primary()
        fabric.trace_phase("repl.rule3_check")
        comp = yield fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
        rtts += 1
        check = FAIL if comp.failed else int.from_bytes(comp.value, "big")
        decision = evaluate_rules(v_list, v_new, check_value=check,
                                  v_old=v_old)

    if decision is RuleDecision.FAIL:
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)

    if decision is RuleDecision.FINISH:
        # The primary moved past v_old: a last writer for this round has
        # already committed; our write linearizes before it.
        return WriteResult(Outcome.FINISH, v_old, v_new, None, rtts)

    if decision in (RuleDecision.RULE1, RuleDecision.RULE2, RuleDecision.RULE3):
        if decision is not RuleDecision.RULE1:
            # Fix-up: make every backup hold v_new (CAS from the observed
            # values; only the unique winner does this, so no races).
            fix = [CasOp(mn, addr, expected=seen, swap=v_new)
                   for (mn, addr), seen in zip(backups, v_list)
                   if seen != v_new]
            if fix:
                if phase_guard is not None:
                    yield from phase_guard()
                fabric.trace_phase("repl.fixup")
                fix_comps = yield fabric.post(fix)
                rtts += 1
                if any(c.failed for c in fix_comps):
                    return WriteResult(Outcome.NEED_MASTER, v_old, v_new,
                                       None, rtts)
        if on_win is not None:
            yield from on_win(v_old)
            rtts += 1
        if phase_guard is not None:
            yield from phase_guard()
        primary_mn, primary_addr = ref.primary()
        fabric.trace_phase("repl.primary_cas")
        comp = yield fabric.post_one(CasOp(primary_mn, primary_addr,
                                           expected=v_old, swap=v_new))
        rtts += 1
        if comp.failed:
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
        outcome = {RuleDecision.RULE1: Outcome.WIN_RULE1,
                   RuleDecision.RULE2: Outcome.WIN_RULE2,
                   RuleDecision.RULE3: Outcome.WIN_RULE3}[decision]
        return WriteResult(outcome, v_old, v_new, v_new, rtts)

    # LOSE: wait until the last writer commits the primary slot.
    env = fabric.env
    primary_mn, primary_addr = ref.primary()
    for _ in range(max_wait_rounds):
        yield env.attributed_timeout(retry_sleep_us, "backoff",
                                     "write.wait_primary")
        fabric.trace_phase("repl.wait_primary")
        comp = yield fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
        rtts += 1
        if comp.failed:
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
        v_check = int.from_bytes(comp.value, "big")
        if v_check != v_old:
            return WriteResult(Outcome.LOSE, v_old, v_new, v_check, rtts)
    # The winner must have crashed without committing: escalate.
    return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)


def sequential_write(fabric: Fabric, ref: SlotRef, v_old: int, v_new: int,
                     on_win: Optional[Callable[[int], object]] = None):
    """FUSEE-CR ablation (§6.1): CAS replicas one at a time, backups first.

    Costs one RTT per replica (latency grows linearly with r, Fig. 19) and
    serializes conflicting writers: losing the first CAS aborts the round.
    """
    rtts = 0
    locations = ref.backups() + [ref.primary()]
    committed: List[Tuple[int, int]] = []
    for i, (mn, addr) in enumerate(locations):
        is_primary = i == len(locations) - 1
        if is_primary and on_win is not None:
            yield from on_win(v_old)
            rtts += 1
        fabric.trace_phase("repl.seq_primary_cas" if is_primary
                           else "repl.seq_backup_cas")
        comp = yield fabric.post_one(CasOp(mn, addr, expected=v_old,
                                           swap=v_new))
        rtts += 1
        if comp.failed:
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
        if not comp.cas_succeeded():
            # Conflict: roll back our partial modifications and lose.
            if committed:
                undo = [CasOp(mn2, addr2, expected=v_new, swap=v_old)
                        for mn2, addr2 in committed]
                fabric.trace_phase("repl.seq_undo")
                yield fabric.post(undo)
                rtts += 1
            return WriteResult(Outcome.LOSE, v_old, v_new, comp.value, rtts)
        committed.append((mn, addr))
    return WriteResult(Outcome.WIN_RULE1, v_old, v_new, v_new, rtts)
