"""RACE hashing — the one-sided-RDMA-friendly hash index (§4.2).

Implemented from the RACE paper's description (Zuo et al., ATC'21), as
FUSEE did ("we implement RACE hashing carefully according to the paper"):

* The index is split into ``n_subtables`` subtables, each placed on ``r``
  memory nodes by consistent hashing (primary replica first) — this is
  what lets index load spread across the memory pool.
* A subtable is an array of *bucket groups*.  Each group holds three
  buckets ``[main0 | overflow | main1]``; the overflow bucket is shared by
  its two neighbours.  A key hashes to two groups (two independent hash
  functions); its *combined buckets* are ``(main0, overflow)`` of the
  first and ``(overflow, main1)`` of the second — each a single contiguous
  READ, so one doorbell batch (1 RTT) fetches all candidate slots.
* Each slot is the 8-byte fingerprint/length/pointer word of
  :mod:`repro.core.wire`; modifications are out-of-place: write the KV
  block elsewhere, then CAS the slot.

This module is deliberately **pure**: it computes verb lists and parses
payloads but never talks to the fabric, so the protocol layers above own
all timing.  RACE's extendible-resize directory is implemented here
(``staged_split`` / ``commit_split``); the split itself — a stop-the-world
per-subtable reorganisation — is executed by the master
(``Master.expand_subtable``), reusing the same barrier machinery as MN
failover, since the FUSEE paper leaves replicated resizing undefined.
A subtable whose candidate buckets are all full raises
:class:`IndexFullError`, which clients escalate into an expansion request.
"""

from __future__ import annotations

import hashlib
import struct as _struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..rdma import ReadOp
from .wire import SLOT_SIZE, Slot, make_fingerprint, unpack_slot

__all__ = [
    "RaceConfig",
    "KeyMeta",
    "SlotRef",
    "SlotSnapshot",
    "BucketView",
    "RaceHashing",
    "IndexFullError",
]

BUCKETS_PER_GROUP = 3


class IndexFullError(Exception):
    """Both combined buckets of a key are full; the index needs a split."""


@dataclass(frozen=True)
class RaceConfig:
    """Geometry of the replicated RACE index."""

    n_subtables: int = 16
    n_groups: int = 128         # bucket groups per subtable
    slots_per_bucket: int = 7

    def __post_init__(self):
        if self.n_subtables < 1 or self.n_groups < 2 or self.slots_per_bucket < 1:
            raise ValueError("invalid RACE geometry")
        if self.n_subtables & (self.n_subtables - 1):
            raise ValueError("n_subtables must be a power of two "
                             "(extendible directory addressing)")

    @property
    def bucket_bytes(self) -> int:
        return self.slots_per_bucket * SLOT_SIZE

    @property
    def slots_per_subtable(self) -> int:
        return self.n_groups * BUCKETS_PER_GROUP * self.slots_per_bucket

    @property
    def subtable_bytes(self) -> int:
        return self.slots_per_subtable * SLOT_SIZE

    @property
    def slots_per_key(self) -> int:
        """Associativity: total candidate slots for any key."""
        return 4 * self.slots_per_bucket


def hash_key(key: bytes) -> int:
    """128-bit stable hash of a key."""
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=16).digest(), "big")


@dataclass(frozen=True)
class KeyMeta:
    """Everything derived from hashing one key."""

    subtable: int
    group1: int
    group2: int
    fingerprint: int


@dataclass(frozen=True)
class SlotRef:
    """Identity of one logical slot across all index replicas."""

    subtable: int
    slot_index: int  # within the subtable's slot array
    placement: Tuple[Tuple[int, int], ...]  # ((mn_id, subtable base), ...)

    def locations(self) -> List[Tuple[int, int]]:
        """(mn_id, byte address) of every replica of this slot, primary first."""
        off = self.slot_index * SLOT_SIZE
        return [(mn_id, base + off) for mn_id, base in self.placement]

    def primary(self) -> Tuple[int, int]:
        mn_id, base = self.placement[0]
        return mn_id, base + self.slot_index * SLOT_SIZE

    def backups(self) -> List[Tuple[int, int]]:
        off = self.slot_index * SLOT_SIZE
        return [(mn_id, base + off) for mn_id, base in self.placement[1:]]

    @property
    def key(self) -> Tuple[int, int]:
        return (self.subtable, self.slot_index)


# SlotSnapshot and BucketView are built on every bucket parse (several
# per KV op); hand-written __slots__ classes keep construction to plain
# attribute stores while eq/repr mirror the frozen dataclasses they
# replaced.
class SlotSnapshot:
    """A slot reference plus the value observed in the primary replica."""

    __slots__ = ("ref", "word")

    def __init__(self, ref: SlotRef, word: int):
        self.ref = ref
        self.word = word

    def __repr__(self) -> str:
        return f"SlotSnapshot(ref={self.ref!r}, word={self.word!r})"

    def __eq__(self, other) -> bool:
        if other.__class__ is not SlotSnapshot:
            return NotImplemented
        return self.ref == other.ref and self.word == other.word

    def __hash__(self) -> int:
        return hash((self.ref, self.word))

    @property
    def slot(self) -> Slot:
        return unpack_slot(self.word)


class BucketView:
    """Parsed candidate slots for one key, from one bucket read."""

    __slots__ = ("matches", "empties", "occupied")

    def __init__(self, matches: Tuple[SlotSnapshot, ...],
                 empties: Tuple[SlotRef, ...], occupied: int):
        self.matches = matches   # fingerprint hits, ordered by slot index
        self.empties = empties   # free slots, preferred insert order
        self.occupied = occupied  # non-empty slots seen (load metric)

    def __repr__(self) -> str:
        return (f"BucketView(matches={self.matches!r}, "
                f"empties={self.empties!r}, occupied={self.occupied!r})")

    def __eq__(self, other) -> bool:
        if other.__class__ is not BucketView:
            return NotImplemented
        return (self.matches == other.matches
                and self.empties == other.empties
                and self.occupied == other.occupied)

    def __hash__(self) -> int:
        return hash((self.matches, self.empties, self.occupied))


class RaceHashing:
    """Pure helper owning the geometry and placement of the index."""

    def __init__(self, config: RaceConfig,
                 placements: Dict[int, Sequence[Tuple[int, int]]]):
        """``placements[subtable] = [(mn_id, base offset), ...]``, primary
        replica first.  All replicas of a subtable share the layout.

        Subtables are addressed through an *extendible directory* (the
        RACE design): a key's hash suffix indexes the directory, which
        names a physical subtable.  Initially the directory is the
        identity over ``n_subtables`` entries; splits (driven by the
        master, see ``Master.expand_subtable``) grow it.
        """
        if set(placements) != set(range(config.n_subtables)):
            raise ValueError("placements must cover every subtable")
        self.config = config
        self._placements: Dict[int, Tuple[Tuple[int, int], ...]] = {
            st: tuple(pl) for st, pl in placements.items()}
        depth = config.n_subtables.bit_length() - 1
        self._directory: List[int] = list(range(config.n_subtables))
        self._local_depth: Dict[int, int] = {
            st: depth for st in range(config.n_subtables)}
        # SlotRef objects are immutable and hot (every bucket parse builds
        # dozens); memoise them per (subtable, index).  Any placement
        # change invalidates the cache — refs embed the placement tuple.
        self._slot_ref_cache: Dict[Tuple[int, int], SlotRef] = {}
        self._n_slots = config.slots_per_subtable
        # parse_buckets-local view of the same memo: one list per
        # subtable indexed by slot (a list index beats a tuple-keyed
        # dict hit on the per-slot path).  Invalidated together with
        # _slot_ref_cache.
        self._subtable_refs: Dict[int, list] = {}
        # (meta, payload bytes) -> BucketView.  parse_buckets is a pure
        # function of its arguments given fixed bucket geometry, and hot
        # zipfian keys re-read identical bucket states constantly, so a
        # content-keyed memo is exact.  Invalidated with _slot_ref_cache
        # because the cached views embed SlotRefs.
        self._parse_cache: Dict[tuple, "BucketView"] = {}
        # (group1, group2) -> combined-bucket ranges; geometry-only, so
        # it never needs invalidation.
        self._range_cache: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        # key -> KeyMeta; dropped on directory changes (see key_meta).
        self._meta_cache: Dict[bytes, KeyMeta] = {}
        # One combined bucket = 2 adjacent buckets; unpack all its slot
        # words with a single struct call (big-endian u64s, identical to
        # per-slot int.from_bytes(..., "big")).
        self._cb_struct = _struct.Struct(
            ">%dQ" % (2 * config.slots_per_bucket))

    # -- placement management (master reconfiguration, §5.2) -------------------
    def placement(self, subtable: int) -> Tuple[Tuple[int, int], ...]:
        return self._placements[subtable]

    def reconfigure(self, subtable: int,
                    placement: Sequence[Tuple[int, int]]) -> None:
        if not placement:
            raise ValueError("placement cannot be empty")
        self._placements[subtable] = tuple(placement)
        self._slot_ref_cache.clear()
        self._subtable_refs.clear()
        self._parse_cache.clear()

    def subtables_on(self, mn_id: int) -> List[int]:
        return [st for st, pl in self._placements.items()
                if any(mn == mn_id for mn, _ in pl)]

    # -- extendible directory ---------------------------------------------------
    @property
    def global_depth(self) -> int:
        return len(self._directory).bit_length() - 1

    @property
    def directory(self) -> List[int]:
        return list(self._directory)

    def physical_tables(self) -> List[int]:
        return sorted(self._placements)

    def local_depth(self, subtable: int) -> int:
        return self._local_depth[subtable]

    def table_for_digest(self, digest: int) -> int:
        return self._directory[digest & (len(self._directory) - 1)]

    def staged_split(self, old: int):
        """Plan a split of physical table ``old`` (pure, no mutation).

        Returns ``(new_id, staged_directory, key_router)`` where
        ``key_router(digest)`` maps a digest to ``old`` or ``new_id``
        under the post-split directory.
        """
        if old not in self._placements:
            raise ValueError(f"unknown subtable {old}")
        depth = self._local_depth[old]
        directory = list(self._directory)
        if depth == self.global_depth:
            # suffix addressing: doubling appends a copy of the directory
            directory = directory + directory
        new_id = max(self._placements) + 1
        for i, table in enumerate(directory):
            if table == old and (i >> depth) & 1:
                directory[i] = new_id
        mask = len(directory) - 1

        def key_router(digest: int) -> int:
            return directory[digest & mask]

        return new_id, directory, key_router

    def commit_split(self, old: int, new_id: int, directory: List[int],
                     placement: Sequence[Tuple[int, int]]) -> None:
        """Install a split planned by :meth:`staged_split`."""
        self._directory = list(directory)
        self._local_depth[old] += 1
        self._local_depth[new_id] = self._local_depth[old]
        self._placements[new_id] = tuple(placement)
        self._slot_ref_cache.clear()
        self._subtable_refs.clear()
        self._parse_cache.clear()
        self._meta_cache.clear()

    def check_directory_invariants(self) -> None:
        """Every physical table owns exactly 2^(G-L) directory entries,
        all congruent modulo 2^L (raise AssertionError otherwise)."""
        size = len(self._directory)
        assert size & (size - 1) == 0
        for table, depth in self._local_depth.items():
            entries = [i for i, t in enumerate(self._directory)
                       if t == table]
            assert len(entries) == size >> depth, (table, entries)
            low = entries[0] & ((1 << depth) - 1)
            assert all(e & ((1 << depth) - 1) == low for e in entries),                 (table, entries)

    # -- key hashing -------------------------------------------------------------
    def key_meta(self, key: bytes) -> KeyMeta:
        """Hash a key; memoised (the blake2b digest plus two modular
        reductions run for every client operation).  The memo is dropped
        whenever the extendible directory changes — a key's subtable
        routing may move on a split — and capped so insert-heavy runs
        with endless fresh keys cannot grow it without bound."""
        meta = self._meta_cache.get(key)
        if meta is None:
            if len(self._meta_cache) > 131072:
                self._meta_cache.clear()
            meta = self.key_meta_for_digest(hash_key(key))
            self._meta_cache[key] = meta
        return meta

    def key_meta_for_digest(self, digest: int) -> KeyMeta:
        cfg = self.config
        subtable = self.table_for_digest(digest)
        group1 = (digest >> 16) % cfg.n_groups
        group2 = (digest >> 48) % cfg.n_groups
        if group2 == group1:
            group2 = (group2 + 1) % cfg.n_groups
        return KeyMeta(subtable=subtable, group1=group1, group2=group2,
                       fingerprint=make_fingerprint(digest))

    # -- slot addressing -----------------------------------------------------------
    def slot_ref(self, subtable: int, slot_index: int) -> SlotRef:
        ref = self._slot_ref_cache.get((subtable, slot_index))
        if ref is not None:
            return ref
        if not 0 <= slot_index < self._n_slots:
            raise IndexError(f"slot index {slot_index} out of range")
        ref = SlotRef(subtable=subtable, slot_index=slot_index,
                      placement=self._placements[subtable])
        self._slot_ref_cache[(subtable, slot_index)] = ref
        return ref

    def _combined_ranges(self, meta: KeyMeta) -> List[Tuple[int, int]]:
        """Two (first slot index, slot count) ranges: the combined buckets.

        Memoised per (group1, group2): a pure function of the groups and
        the (fixed) bucket geometry, recomputed on every bucket read and
        parse otherwise.
        """
        key = (meta.group1, meta.group2)
        ranges = self._range_cache.get(key)
        if ranges is None:
            spb = self.config.slots_per_bucket
            cb1 = (meta.group1 * BUCKETS_PER_GROUP) * spb       # main0+ovfl
            cb2 = (meta.group2 * BUCKETS_PER_GROUP + 1) * spb   # ovfl+main1
            ranges = [(cb1, 2 * spb), (cb2, 2 * spb)]
            self._range_cache[key] = ranges
        return ranges

    def bucket_read_ops(self, meta: KeyMeta,
                        replica: int = 0) -> List[ReadOp]:
        """The two contiguous READs fetching all candidate slots of a key."""
        mn_id, base = self._placements[meta.subtable][replica]
        return [ReadOp(mn_id, base + start * SLOT_SIZE, count * SLOT_SIZE)
                for start, count in self._combined_ranges(meta)]

    def parse_buckets(self, meta: KeyMeta,
                      payloads: Sequence[bytes]) -> BucketView:
        """Parse the two combined-bucket payloads into candidates.

        Fingerprint hits are ordered by (subtable-wide) slot index so that
        concurrent readers resolve duplicate keys identically.  Empty slots
        are ordered to fill the *less loaded* combined bucket first, which
        is RACE's load-balancing rule.
        """
        ckey = (meta, *payloads)
        cached = self._parse_cache.get(ckey)
        if cached is not None:
            return cached
        ranges = self._combined_ranges(meta)
        if len(payloads) != len(ranges):
            raise ValueError("expected one payload per combined bucket")
        matches: List[SlotSnapshot] = []
        per_cb_empties: List[List[SlotRef]] = []
        per_cb_load: List[int] = []
        subtable = meta.subtable
        fingerprint = meta.fingerprint
        unpack = self._cb_struct.unpack
        cb_bytes = self._cb_struct.size
        refs = self._subtable_refs.get(subtable)
        if refs is None:
            refs = [None] * self._n_slots
            self._subtable_refs[subtable] = refs
        slot_ref = self.slot_ref
        # The two combined buckets can share the overflow bucket; count a
        # shared slot once.  Their ranges are contiguous, so "already seen
        # by an earlier range" is a bounds check, not a membership set.
        seen_end = -1
        seen_start = 0
        for (start, count), payload in zip(ranges, payloads):
            if len(payload) != cb_bytes:
                raise ValueError("payload length mismatch")
            empties: List[SlotRef] = []
            load = 0
            for i, word in enumerate(unpack(payload)):
                index = start + i
                if seen_start <= index <= seen_end:
                    continue  # shared overflow bucket counted once
                # Resolve the SlotRef lazily: occupied slots with a
                # foreign fingerprint never need one.
                if word == 0:
                    ref = refs[index]
                    if ref is None:
                        ref = slot_ref(subtable, index)
                        refs[index] = ref
                    empties.append(ref)
                else:
                    load += 1
                    if (word >> 56) & 0xFF == fingerprint:
                        ref = refs[index]
                        if ref is None:
                            ref = slot_ref(subtable, index)
                            refs[index] = ref
                        matches.append(SlotSnapshot(ref=ref, word=word))
            seen_start = min(seen_start, start) if seen_end >= 0 else start
            seen_end = max(seen_end, start + count - 1)
            per_cb_empties.append(empties)
            per_cb_load.append(load)
        matches.sort(key=lambda snap: snap.ref.slot_index)
        order = sorted(range(len(per_cb_empties)), key=lambda i: per_cb_load[i])
        empties_flat: List[SlotRef] = []
        for i in order:
            empties_flat.extend(per_cb_empties[i])
        view = BucketView(matches=tuple(matches), empties=tuple(empties_flat),
                          occupied=sum(per_cb_load))
        if len(self._parse_cache) > 65536:
            self._parse_cache.clear()
        self._parse_cache[ckey] = view
        return view

    # -- bulk helpers for the master ------------------------------------------------
    def subtable_read_op(self, subtable: int, replica_mn: int,
                         base: int) -> ReadOp:
        """READ an entire subtable replica (used by failover repair)."""
        return ReadOp(replica_mn, base, self.config.subtable_bytes)

    def iter_slot_words(self, payload: bytes):
        """Yield (slot_index, word) for a whole-subtable payload."""
        for index in range(len(payload) // SLOT_SIZE):
            yield index, int.from_bytes(
                payload[index * SLOT_SIZE:(index + 1) * SLOT_SIZE], "big")
