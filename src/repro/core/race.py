"""RACE hashing — the one-sided-RDMA-friendly hash index (§4.2).

Implemented from the RACE paper's description (Zuo et al., ATC'21), as
FUSEE did ("we implement RACE hashing carefully according to the paper"):

* The index is split into ``n_subtables`` subtables, each placed on ``r``
  memory nodes by consistent hashing (primary replica first) — this is
  what lets index load spread across the memory pool.
* A subtable is an array of *bucket groups*.  Each group holds three
  buckets ``[main0 | overflow | main1]``; the overflow bucket is shared by
  its two neighbours.  A key hashes to two groups (two independent hash
  functions); its *combined buckets* are ``(main0, overflow)`` of the
  first and ``(overflow, main1)`` of the second — each a single contiguous
  READ, so one doorbell batch (1 RTT) fetches all candidate slots.
* Each slot is the 8-byte fingerprint/length/pointer word of
  :mod:`repro.core.wire`; modifications are out-of-place: write the KV
  block elsewhere, then CAS the slot.

This module is deliberately **pure**: it computes verb lists and parses
payloads but never talks to the fabric, so the protocol layers above own
all timing.  RACE's extendible-resize directory is implemented here
(``staged_split`` / ``commit_split``); the split itself — a stop-the-world
per-subtable reorganisation — is executed by the master
(``Master.expand_subtable``), reusing the same barrier machinery as MN
failover, since the FUSEE paper leaves replicated resizing undefined.
A subtable whose candidate buckets are all full raises
:class:`IndexFullError`, which clients escalate into an expansion request.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..rdma import ReadOp
from .wire import SLOT_SIZE, Slot, make_fingerprint, unpack_slot

__all__ = [
    "RaceConfig",
    "KeyMeta",
    "SlotRef",
    "SlotSnapshot",
    "BucketView",
    "RaceHashing",
    "IndexFullError",
]

BUCKETS_PER_GROUP = 3


class IndexFullError(Exception):
    """Both combined buckets of a key are full; the index needs a split."""


@dataclass(frozen=True)
class RaceConfig:
    """Geometry of the replicated RACE index."""

    n_subtables: int = 16
    n_groups: int = 128         # bucket groups per subtable
    slots_per_bucket: int = 7

    def __post_init__(self):
        if self.n_subtables < 1 or self.n_groups < 2 or self.slots_per_bucket < 1:
            raise ValueError("invalid RACE geometry")
        if self.n_subtables & (self.n_subtables - 1):
            raise ValueError("n_subtables must be a power of two "
                             "(extendible directory addressing)")

    @property
    def bucket_bytes(self) -> int:
        return self.slots_per_bucket * SLOT_SIZE

    @property
    def slots_per_subtable(self) -> int:
        return self.n_groups * BUCKETS_PER_GROUP * self.slots_per_bucket

    @property
    def subtable_bytes(self) -> int:
        return self.slots_per_subtable * SLOT_SIZE

    @property
    def slots_per_key(self) -> int:
        """Associativity: total candidate slots for any key."""
        return 4 * self.slots_per_bucket


def hash_key(key: bytes) -> int:
    """128-bit stable hash of a key."""
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=16).digest(), "big")


@dataclass(frozen=True)
class KeyMeta:
    """Everything derived from hashing one key."""

    subtable: int
    group1: int
    group2: int
    fingerprint: int


@dataclass(frozen=True)
class SlotRef:
    """Identity of one logical slot across all index replicas."""

    subtable: int
    slot_index: int  # within the subtable's slot array
    placement: Tuple[Tuple[int, int], ...]  # ((mn_id, subtable base), ...)

    def locations(self) -> List[Tuple[int, int]]:
        """(mn_id, byte address) of every replica of this slot, primary first."""
        off = self.slot_index * SLOT_SIZE
        return [(mn_id, base + off) for mn_id, base in self.placement]

    def primary(self) -> Tuple[int, int]:
        mn_id, base = self.placement[0]
        return mn_id, base + self.slot_index * SLOT_SIZE

    def backups(self) -> List[Tuple[int, int]]:
        off = self.slot_index * SLOT_SIZE
        return [(mn_id, base + off) for mn_id, base in self.placement[1:]]

    @property
    def key(self) -> Tuple[int, int]:
        return (self.subtable, self.slot_index)


@dataclass(frozen=True)
class SlotSnapshot:
    """A slot reference plus the value observed in the primary replica."""

    ref: SlotRef
    word: int

    @property
    def slot(self) -> Slot:
        return unpack_slot(self.word)


@dataclass(frozen=True)
class BucketView:
    """Parsed candidate slots for one key, from one bucket read."""

    matches: Tuple[SlotSnapshot, ...]   # fingerprint hits, ordered by slot index
    empties: Tuple[SlotRef, ...]        # free slots, preferred insert order
    occupied: int                       # non-empty slots seen (load metric)


class RaceHashing:
    """Pure helper owning the geometry and placement of the index."""

    def __init__(self, config: RaceConfig,
                 placements: Dict[int, Sequence[Tuple[int, int]]]):
        """``placements[subtable] = [(mn_id, base offset), ...]``, primary
        replica first.  All replicas of a subtable share the layout.

        Subtables are addressed through an *extendible directory* (the
        RACE design): a key's hash suffix indexes the directory, which
        names a physical subtable.  Initially the directory is the
        identity over ``n_subtables`` entries; splits (driven by the
        master, see ``Master.expand_subtable``) grow it.
        """
        if set(placements) != set(range(config.n_subtables)):
            raise ValueError("placements must cover every subtable")
        self.config = config
        self._placements: Dict[int, Tuple[Tuple[int, int], ...]] = {
            st: tuple(pl) for st, pl in placements.items()}
        depth = config.n_subtables.bit_length() - 1
        self._directory: List[int] = list(range(config.n_subtables))
        self._local_depth: Dict[int, int] = {
            st: depth for st in range(config.n_subtables)}

    # -- placement management (master reconfiguration, §5.2) -------------------
    def placement(self, subtable: int) -> Tuple[Tuple[int, int], ...]:
        return self._placements[subtable]

    def reconfigure(self, subtable: int,
                    placement: Sequence[Tuple[int, int]]) -> None:
        if not placement:
            raise ValueError("placement cannot be empty")
        self._placements[subtable] = tuple(placement)

    def subtables_on(self, mn_id: int) -> List[int]:
        return [st for st, pl in self._placements.items()
                if any(mn == mn_id for mn, _ in pl)]

    # -- extendible directory ---------------------------------------------------
    @property
    def global_depth(self) -> int:
        return len(self._directory).bit_length() - 1

    @property
    def directory(self) -> List[int]:
        return list(self._directory)

    def physical_tables(self) -> List[int]:
        return sorted(self._placements)

    def local_depth(self, subtable: int) -> int:
        return self._local_depth[subtable]

    def table_for_digest(self, digest: int) -> int:
        return self._directory[digest & (len(self._directory) - 1)]

    def staged_split(self, old: int):
        """Plan a split of physical table ``old`` (pure, no mutation).

        Returns ``(new_id, staged_directory, key_router)`` where
        ``key_router(digest)`` maps a digest to ``old`` or ``new_id``
        under the post-split directory.
        """
        if old not in self._placements:
            raise ValueError(f"unknown subtable {old}")
        depth = self._local_depth[old]
        directory = list(self._directory)
        if depth == self.global_depth:
            # suffix addressing: doubling appends a copy of the directory
            directory = directory + directory
        new_id = max(self._placements) + 1
        for i, table in enumerate(directory):
            if table == old and (i >> depth) & 1:
                directory[i] = new_id
        mask = len(directory) - 1

        def key_router(digest: int) -> int:
            return directory[digest & mask]

        return new_id, directory, key_router

    def commit_split(self, old: int, new_id: int, directory: List[int],
                     placement: Sequence[Tuple[int, int]]) -> None:
        """Install a split planned by :meth:`staged_split`."""
        self._directory = list(directory)
        self._local_depth[old] += 1
        self._local_depth[new_id] = self._local_depth[old]
        self._placements[new_id] = tuple(placement)

    def check_directory_invariants(self) -> None:
        """Every physical table owns exactly 2^(G-L) directory entries,
        all congruent modulo 2^L (raise AssertionError otherwise)."""
        size = len(self._directory)
        assert size & (size - 1) == 0
        for table, depth in self._local_depth.items():
            entries = [i for i, t in enumerate(self._directory)
                       if t == table]
            assert len(entries) == size >> depth, (table, entries)
            low = entries[0] & ((1 << depth) - 1)
            assert all(e & ((1 << depth) - 1) == low for e in entries),                 (table, entries)

    # -- key hashing -------------------------------------------------------------
    def key_meta(self, key: bytes) -> KeyMeta:
        digest = hash_key(key)
        return self.key_meta_for_digest(digest)

    def key_meta_for_digest(self, digest: int) -> KeyMeta:
        cfg = self.config
        subtable = self.table_for_digest(digest)
        group1 = (digest >> 16) % cfg.n_groups
        group2 = (digest >> 48) % cfg.n_groups
        if group2 == group1:
            group2 = (group2 + 1) % cfg.n_groups
        return KeyMeta(subtable=subtable, group1=group1, group2=group2,
                       fingerprint=make_fingerprint(digest))

    # -- slot addressing -----------------------------------------------------------
    def slot_ref(self, subtable: int, slot_index: int) -> SlotRef:
        if not 0 <= slot_index < self.config.slots_per_subtable:
            raise IndexError(f"slot index {slot_index} out of range")
        return SlotRef(subtable=subtable, slot_index=slot_index,
                       placement=self._placements[subtable])

    def _combined_ranges(self, meta: KeyMeta) -> List[Tuple[int, int]]:
        """Two (first slot index, slot count) ranges: the combined buckets."""
        spb = self.config.slots_per_bucket
        cb1_start = (meta.group1 * BUCKETS_PER_GROUP) * spb        # main0+ovfl
        cb2_start = (meta.group2 * BUCKETS_PER_GROUP + 1) * spb    # ovfl+main1
        return [(cb1_start, 2 * spb), (cb2_start, 2 * spb)]

    def bucket_read_ops(self, meta: KeyMeta,
                        replica: int = 0) -> List[ReadOp]:
        """The two contiguous READs fetching all candidate slots of a key."""
        mn_id, base = self._placements[meta.subtable][replica]
        return [ReadOp(mn_id, base + start * SLOT_SIZE, count * SLOT_SIZE)
                for start, count in self._combined_ranges(meta)]

    def parse_buckets(self, meta: KeyMeta,
                      payloads: Sequence[bytes]) -> BucketView:
        """Parse the two combined-bucket payloads into candidates.

        Fingerprint hits are ordered by (subtable-wide) slot index so that
        concurrent readers resolve duplicate keys identically.  Empty slots
        are ordered to fill the *less loaded* combined bucket first, which
        is RACE's load-balancing rule.
        """
        ranges = self._combined_ranges(meta)
        if len(payloads) != len(ranges):
            raise ValueError("expected one payload per combined bucket")
        matches: List[SlotSnapshot] = []
        per_cb_empties: List[List[SlotRef]] = []
        per_cb_load: List[int] = []
        seen: set = set()
        for (start, count), payload in zip(ranges, payloads):
            if len(payload) != count * SLOT_SIZE:
                raise ValueError("payload length mismatch")
            empties: List[SlotRef] = []
            load = 0
            for i in range(count):
                index = start + i
                if index in seen:
                    continue  # shared overflow bucket counted once
                seen.add(index)
                word = int.from_bytes(
                    payload[i * SLOT_SIZE:(i + 1) * SLOT_SIZE], "big")
                ref = self.slot_ref(meta.subtable, index)
                if word == 0:
                    empties.append(ref)
                else:
                    load += 1
                    if (word >> 56) & 0xFF == meta.fingerprint:
                        matches.append(SlotSnapshot(ref=ref, word=word))
            per_cb_empties.append(empties)
            per_cb_load.append(load)
        matches.sort(key=lambda snap: snap.ref.slot_index)
        order = sorted(range(len(per_cb_empties)), key=lambda i: per_cb_load[i])
        empties_flat: List[SlotRef] = []
        for i in order:
            empties_flat.extend(per_cb_empties[i])
        return BucketView(matches=tuple(matches), empties=tuple(empties_flat),
                          occupied=sum(per_cb_load))

    # -- bulk helpers for the master ------------------------------------------------
    def subtable_read_op(self, subtable: int, replica_mn: int,
                         base: int) -> ReadOp:
        """READ an entire subtable replica (used by failover repair)."""
        return ReadOp(replica_mn, base, self.config.subtable_bytes)

    def iter_slot_words(self, payload: bytes):
        """Yield (slot_index, word) for a whole-subtable payload."""
        for index in range(len(payload) // SLOT_SIZE):
            yield index, int.from_bytes(
                payload[index * SLOT_SIZE:(index + 1) * SLOT_SIZE], "big")
