"""Consistent hashing ring for region and index-subtable placement (§4.4).

FUSEE shards its 48-bit memory space into regions and maps each region to
``r`` memory nodes with consistent hashing, the first of which holds the
primary replica.  The same ring places index subtables.  Virtual nodes
smooth the distribution.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

__all__ = ["ConsistentHashRing"]


def _hash_point(label: str) -> int:
    digest = hashlib.blake2b(label.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps integer keys (region ids, subtable ids) to ordered MN lists."""

    def __init__(self, node_ids: Sequence[int], virtual_nodes: int = 64):
        if not node_ids:
            raise ValueError("ring requires at least one node")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._points: List[int] = []
        self._owners: Dict[int, int] = {}
        self._nodes: List[int] = []
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def add_node(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already on ring")
        self._nodes.append(node_id)
        for vn in range(self.virtual_nodes):
            point = _hash_point(f"node:{node_id}:vn:{vn}")
            # On the (cosmically unlikely) collision, nudge the point.
            while point in self._owners:
                point = (point + 1) & ((1 << 64) - 1)
            self._owners[point] = node_id
            bisect.insort(self._points, point)

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id} not on ring")
        self._nodes.remove(node_id)
        for point, owner in list(self._owners.items()):
            if owner == node_id:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def replicas(self, key: int, count: int) -> List[int]:
        """Ordered list of ``count`` distinct node ids for ``key``.

        The first entry is the primary.  Walks clockwise from the key's
        position on the ring, skipping virtual nodes of already-chosen
        physical nodes (the successive-MN placement of §4.4).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        if count > len(self._nodes):
            raise ValueError(
                f"cannot place {count} replicas on {len(self._nodes)} nodes")
        start = bisect.bisect_right(self._points, _hash_point(f"key:{key}"))
        chosen: List[int] = []
        n_points = len(self._points)
        for step in range(n_points):
            owner = self._owners[self._points[(start + step) % n_points]]
            if owner not in chosen:
                chosen.append(owner)
                if len(chosen) == count:
                    return chosen
        raise RuntimeError("ring walk failed to find enough distinct nodes")

    def primary(self, key: int) -> int:
        return self.replicas(key, 1)[0]
