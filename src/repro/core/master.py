"""The cluster master: membership, MN failover, client recovery (§5).

The master is a management process in the compute pool.  It does nothing
on the data path; it only

* runs a lease-based failure detector over clients and memory nodes
  (modelled as a periodic scan with a detection latency of one lease);
* handles **memory-node crashes** (Algorithm 3): blocks writers to the
  affected index subtables, waits out the lease, acts as a representative
  last writer to make all alive slot replicas consistent (choosing backup
  values, which are never older than the committed primary value), commits
  the corresponding operation logs, reconfigures the replica placement,
  and answers clients' ``fail_query`` RPCs with resolved values;
* recovers **crashed clients** (§5.3): re-manages their memory (block
  tables + free bitmaps + log walk) and repairs the index from their
  embedded operation logs, classifying every potentially-crashed request
  into the paper's c0-c3 cases.  The timing breakdown it returns
  reproduces Table 1.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..rdma import CasOp, Fabric, ReadOp, WriteOp
from ..sim import Environment, Event, Resource
from .addressing import RegionMap
from .memory import ClientTable, unpack_block_entry
from .oplog import CrashCase, LogWalker, WalkedObject, commit_old_value_ops
from .race import KeyMeta, RaceHashing, SlotRef
from .snapshot import snapshot_write
from .race import hash_key
from .wire import (
    NULL_ADDR,
    OP_DELETE,
    OP_INSERT,
    SLOT_SIZE,
    pack_slot,
    unpack_slot,
)

__all__ = ["Master", "MasterConfig", "RecoveryReport", "RecoveredClientState"]


@dataclass(frozen=True)
class MasterConfig:
    lease_us: float = 30.0              # membership lease (uKharon-scale)
    detector_interval_us: float = 10.0  # failure-detector scan period
    rpc_one_way_us: float = 0.9         # client <-> master RPC propagation
    rpc_service_us: float = 1.0
    cpu_cores: int = 2
    # Recovering a client re-establishes one QP per memory node and
    # re-registers the client's memory regions with the RNIC.  MR
    # registration dominates (the testbed machines hold 16 GB;
    # registration costs ~10 ms/GB on commodity RNICs), which is why the
    # paper's Table 1 shows 163.1 ms / 92.1% for this step.
    qp_setup_us: float = 620.0              # per memory node
    mr_register_us_per_gb: float = 10_000.0
    client_mr_gb: float = 16.0
    free_list_cpu_per_object_us: float = 4.0

    def recovery_conn_mr_us(self, n_memory_nodes: int) -> float:
        return (n_memory_nodes * self.qp_setup_us
                + self.client_mr_gb * self.mr_register_us_per_gb)


@dataclass
class RecoveryReport:
    """Timing breakdown of one client recovery — the rows of Table 1."""

    connect_mr_us: float = 0.0
    get_metadata_us: float = 0.0
    traverse_log_us: float = 0.0
    recover_requests_us: float = 0.0
    construct_free_list_us: float = 0.0
    objects_visited: int = 0
    tails_examined: int = 0
    requests_redone: int = 0
    requests_finished: int = 0
    objects_reclaimed: int = 0
    blocks_recovered: int = 0
    crash_cases: Dict[str, int] = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return (self.connect_mr_us + self.get_metadata_us
                + self.traverse_log_us + self.recover_requests_us
                + self.construct_free_list_us)

    def rows(self) -> List[Tuple[str, float, float]]:
        """(step, milliseconds, percentage) rows, like Table 1."""
        steps = [
            ("Recover connection & MR", self.connect_mr_us),
            ("Get Metadata", self.get_metadata_us),
            ("Traverse Log", self.traverse_log_us),
            ("Recover KV Requests", self.recover_requests_us),
            ("Construct Free List", self.construct_free_list_us),
        ]
        total = self.total_us or 1.0
        rows = [(name, us / 1000.0, 100.0 * us / total) for name, us in steps]
        rows.append(("Total", self.total_us / 1000.0, 100.0))
        return rows


@dataclass
class RecoveredClientState:
    """Everything a restarted client needs to resume (§5.3)."""

    cid: int
    # per class: (region, block, class_idx) owned blocks
    blocks: List[Tuple[int, int, int]] = field(default_factory=list)
    # per class: free gaddrs in (arbitrary but stable) order
    free_lists: Dict[int, List[int]] = field(default_factory=dict)
    heads: Dict[int, int] = field(default_factory=dict)
    last_allocs: Dict[int, int] = field(default_factory=dict)


class Master:
    """The fault-tolerant cluster manager (assumed replicated via SMR)."""

    def __init__(self, env: Environment, fabric: Fabric,
                 region_map: RegionMap, race: RaceHashing,
                 client_table: ClientTable, size_classes: List[int],
                 config: Optional[MasterConfig] = None,
                 replication=None):
        from .replication import create_protocol

        self.env = env
        self.fabric = fabric
        self.region_map = region_map
        self.race = race
        self.client_table = client_table
        self.size_classes = size_classes
        self.config = config or MasterConfig()
        # The cluster's slot-replication strategy: subtable repair defers
        # its divergent-word choice to the protocol (SNAPSHOT prefers
        # backups, SWARM the primary — see ReplicationProtocol.
        # repair_choice).  Defaults to the paper's SNAPSHOT.
        self.replication = replication or create_protocol("snapshot")
        self.cpu = Resource(env, capacity=self.config.cpu_cores,
                            label="master.cpu")
        self.epoch = 0
        self.handled_mn_failures: List[int] = []
        self._blocked: Dict[int, Event] = {}
        self._detector_proc = None
        # installed by the cluster: (new_id, n_replicas) -> placement
        self.subtable_allocator = None
        self.splits_performed = 0
        # Client-RPC idempotency (repro.faults): results cached by token so
        # a client retransmission after a lost reply never re-runs the
        # handler — in particular a completed split is never split again.
        self.fault_injector = None
        self.rpc_dedup_hits = 0
        self._rpc_results: "OrderedDict[int, tuple]" = OrderedDict()
        # Insert-duplicate arbitration (RACE's post-install re-read check):
        # per key, the (subtable, slot_index) -> word of every slot whose
        # owner has conceded this episode.  See ``arbitrate_insert``.
        self.insert_arbitrations = 0
        self._insert_conceded: "OrderedDict[bytes, Dict[Tuple[int, int], int]]" = OrderedDict()

    def _dedup_call(self, token: Optional[int], call):
        """Run a client-RPC generator at most once per token (generator)."""
        if token is None:
            return (yield from call)
        hit = self._rpc_results.get(token)
        if hit is not None:
            self.rpc_dedup_hits += 1
            call.close()
            return hit[0]
        result = yield from call
        self._rpc_results[token] = (result,)
        if len(self._rpc_results) > 4096:
            self._rpc_results.popitem(last=False)
        return result

    # ------------------------------------------------------------ membership
    def start(self) -> None:
        """Launch the lease-based failure detector."""
        if self._detector_proc is None:
            self._detector_proc = self.env.process(self._detector(),
                                                   name="master-detector")

    def _detector(self):
        while True:
            yield self.env.timeout(self.config.detector_interval_us)
            for mn_id, node in self.fabric.nodes.items():
                if node.crashed and mn_id not in self.handled_mn_failures:
                    self.handled_mn_failures.append(mn_id)
                    self.env.process(self.handle_mn_failure(mn_id),
                                     name=f"mn-failover-{mn_id}")

    def blocked_barrier(self, subtable: int) -> Optional[Event]:
        """Event clients wait on while the master repairs a subtable."""
        return self._blocked.get(subtable)

    # --------------------------------------------------- MN crash (Algorithm 3)
    def handle_mn_failure(self, mn_id: int):
        """Algorithm 3: block, repair all affected slots, reconfigure."""
        tracer = self.fabric.tracer
        span = (tracer.begin_span("recover.mn_failover", mn_id)
                if tracer.enabled else None)
        affected = self.race.subtables_on(mn_id)
        barriers = {}
        for subtable in affected:
            if subtable not in self._blocked:
                barrier = self.env.event()
                self._blocked[subtable] = barrier
                barriers[subtable] = barrier
        # member_prepare_change: wait out the lease so no client holding the
        # old membership view can still modify the crashed slots.
        yield self.env.timeout(self.config.lease_us)
        for subtable in list(barriers):
            self.fabric.trace_phase("failover.repair_subtable")
            yield from self._repair_subtable(subtable)
        self.epoch += 1
        for subtable, barrier in barriers.items():
            del self._blocked[subtable]
            barrier.succeed(self.epoch)
        if span is not None:
            tracer.end_span(span, ok=True, outcome="reconfigured")

    def _repair_subtable(self, subtable: int):
        """Make all alive replicas of a subtable identical; which word
        wins a disagreement is the replication protocol's call (SNAPSHOT:
        a backup, never older than the committed primary; SWARM: the
        primary, the commit point — backups may hold loser values)."""
        placement = self.race.placement(subtable)
        alive = [(mn, base) for mn, base in placement
                 if not self.fabric.node(mn).crashed]
        if not alive:
            return  # unrecoverable: fewer than 1 replica survived
        reads = [self.race.subtable_read_op(subtable, mn, base)
                 for mn, base in alive]
        comps = yield self.fabric.post(reads)
        arrays = [c.value for c in comps if not c.failed]
        if len(arrays) != len(alive):
            return
        primary_alive = not self.fabric.node(placement[0][0]).crashed
        n_slots = self.race.config.slots_per_subtable
        resolved = bytearray(arrays[0])
        fix_writes: List[WriteOp] = []
        log_commits: List[Tuple[int, int]] = []
        for index in range(n_slots):
            lo, hi = index * SLOT_SIZE, (index + 1) * SLOT_SIZE
            words = [int.from_bytes(arr[lo:hi], "big") for arr in arrays]
            if len(set(words)) == 1:
                resolved[lo:hi] = arrays[0][lo:hi]
                continue
            choice_idx = self.replication.repair_choice(words, primary_alive)
            chosen = words[choice_idx]
            resolved[lo:hi] = chosen.to_bytes(8, "big")
            old = words[0] if primary_alive else chosen
            for (mn, base), word in zip(alive, words):
                if word != chosen:
                    fix_writes.append(WriteOp(mn, base + lo,
                                              chosen.to_bytes(8, "big")))
            # Commit the winner's log so its (crashed or alive) issuer never
            # redoes the operation (§5.2): write old value into the chosen
            # object's embedded log entry (collected below — the entry sits
            # at the end of the slab *object*, whose size comes from the
            # block table, not from the slot's payload length).
            if chosen != NULL_ADDR and chosen != old:
                log_commits.append((unpack_slot(chosen).pointer, old))
        if fix_writes:
            yield self.fabric.post(fix_writes)
        for pointer, old in log_commits:
            object_size = yield from self._object_size_of(pointer)
            if object_size is None:
                continue
            ops = commit_old_value_ops(self.region_map, self.fabric,
                                       pointer, object_size, old)
            if ops:
                yield self.fabric.post(ops)
        self.race.reconfigure(subtable, alive)

    def _object_size_of(self, gaddr: int):
        """Slab object size of the block holding ``gaddr``, read from the
        block-allocation table (generator; None if unresolvable)."""
        layout = self.region_map.layout
        region_id, offset = self.region_map.split(gaddr)
        try:
            block = layout.block_index_of(offset)
        except ValueError:
            return None
        entry_off = layout.block_table_entry_offset(block)
        for mn_id, base in self.region_map.placement(region_id):
            if self.fabric.node(mn_id).crashed:
                continue
            comp = yield self.fabric.post_one(
                ReadOp(mn_id, base + entry_off, 8))
            if comp.failed:
                continue
            owner = unpack_block_entry(int.from_bytes(comp.value, "big"))
            if owner is None:
                return None
            _cid, class_idx = owner
            if class_idx >= len(self.size_classes):
                return None
            return self.size_classes[class_idx]
        return None

    # --------------------------------------------------- index expansion
    def request_expand(self, subtable: int, token: Optional[int] = None):
        """Client RPC: the subtable rejected an insert for lack of slots.

        Concurrent requests for the same subtable coalesce onto one split.
        Returns True if the directory changed (the caller must recompute
        its key metadata).  ``token`` is the client's idempotency token: a
        retransmitted request whose first invocation already completed is
        answered from the result cache instead of splitting again.
        Generator.
        """
        return (yield from self._dedup_call(
            token, self._request_expand(subtable)))

    def _request_expand(self, subtable: int):
        yield self.env.timeout(self.config.rpc_one_way_us)
        barrier = self._blocked.get(subtable)
        if barrier is not None:
            yield barrier  # a split (or failover) is already in flight
            yield self.env.timeout(self.config.rpc_one_way_us)
            return True
        ok = yield from self.expand_subtable(subtable)
        yield self.env.timeout(self.config.rpc_one_way_us)
        return ok

    def expand_subtable(self, subtable: int):
        """Split one physical subtable (RACE extendible resize), reusing
        the failover barrier machinery: block writers, wait out the
        lease, reorganise, commit the new directory, unblock (generator).

        The FUSEE paper leaves replicated resizing undefined; this is the
        repository's documented extension — a master-led, per-subtable
        stop-the-world split, exactly the role the master already plays
        for MN crashes (Algorithm 3).
        """
        if self.subtable_allocator is None:
            return False
        if subtable in self._blocked:
            yield self._blocked[subtable]
            return True
        barrier = self.env.event()
        self._blocked[subtable] = barrier
        try:
            yield self.env.timeout(self.config.lease_us)
            ok = yield from self._do_split(subtable)
        finally:
            del self._blocked[subtable]
            self.epoch += 1
            barrier.succeed(self.epoch)
        if ok:
            self.splits_performed += 1
        return ok

    def _do_split(self, old: int):
        placement = [pl for pl in self.race.placement(old)
                     if not self.fabric.node(pl[0]).crashed]
        if not placement:
            return False
        # 1. snapshot the old subtable
        comp = yield self.fabric.post_one(self.race.subtable_read_op(
            old, placement[0][0], placement[0][1]))
        if comp.failed:
            return False
        occupied = [(index, word)
                    for index, word in self.race.iter_slot_words(comp.value)
                    if word != 0]
        # 2. fetch every occupant's key to re-route it under depth+1
        digests: Dict[int, int] = {}
        batch = 32
        for start in range(0, len(occupied), batch):
            chunk = occupied[start:start + batch]
            reads, owners = [], []
            for index, word in chunk:
                slot = unpack_slot(word)
                for mn_id, addr in self.region_map.translate(slot.pointer):
                    if not self.fabric.node(mn_id).crashed:
                        reads.append(ReadOp(mn_id, addr, slot.block_bytes))
                        owners.append(index)
                        break
            if not reads:
                continue
            comps = yield self.fabric.post(reads)
            from .wire import decode_kv_payload
            for index, comp in zip(owners, comps):
                if comp.failed:
                    continue
                try:
                    _h, key, _v = decode_kv_payload(comp.value)
                except ValueError:
                    continue  # torn/garbage slot: leave it in place
                digests[index] = hash_key(key)
        # 3. plan the split and allocate the sibling table
        new_id, directory, router = self.race.staged_split(old)
        try:
            new_placement = self.subtable_allocator(new_id, len(placement))
        except MemoryError:
            return False
        # 4. build both images; a key keeps its slot index (candidate
        # ranges depend only on its digest, which does not change)
        nbytes = self.race.config.subtable_bytes
        old_img = bytearray(nbytes)
        new_img = bytearray(nbytes)
        for index, word in occupied:
            digest = digests.get(index)
            target = old if digest is None else router(digest)
            image = new_img if target == new_id else old_img
            image[index * SLOT_SIZE:(index + 1) * SLOT_SIZE] =                 word.to_bytes(8, "big")
        writes = [WriteOp(mn, base, bytes(old_img))
                  for mn, base in placement]
        writes += [WriteOp(mn, base, bytes(new_img))
                   for mn, base in new_placement
                   if not self.fabric.node(mn).crashed]
        yield self.fabric.post(writes)
        # 5. publish the new directory
        self.race.commit_split(old, new_id, directory, new_placement)
        return True

    # ------------------------------------------------- insert deduplication
    def arbitrate_insert(self, key: bytes, own, foreigns,
                         token: Optional[int] = None):
        """Client RPC: resolve a duplicate-insert race (generator).

        Two inserters of the same key can win *different* empty slots when
        a concurrent mutation shifts the bucket view between their reads —
        no CAS ever collides, so only the post-install re-read (RACE's
        duplicate check) notices.  The observer reports its own installed
        slot and every foreign same-key slot it saw; the master serialises
        the verdicts with a last-man-standing rule:

        * if any reported foreign slot has **not** conceded yet, the caller
          concedes — its foreign set must include either a clean inserter
          (one whose own re-read predates every other install, hence may
          already have returned success; there is at most one, because two
          clean re-reads would each have to precede the other's install)
          or a not-yet-resolved peer that will escalate in turn;
        * if every reported foreign has already conceded, the caller is the
          last one standing and keeps its slot.

        Returns ``"win"`` (keep the slot; the caller clears the conceded
        foreign slots before returning success) or ``"concede"`` (the
        caller invalidates its own object, zeroes its own slot, and reports
        the key as already present).  The decision below is a single
        synchronous step, so concurrent escalations cannot interleave
        inside it.
        """
        return (yield from self._dedup_call(
            token, self._arbitrate_insert(key, tuple(own),
                                          [tuple(f) for f in foreigns])))

    def _arbitrate_insert(self, key: bytes, own, foreigns):
        yield self.env.timeout(self.config.rpc_one_way_us)
        req = self.cpu.request()
        yield req
        try:
            yield self.env.timeout(self.config.rpc_service_us)
        finally:
            req.release()
        self.insert_arbitrations += 1
        conceded = self._insert_conceded.setdefault(key, {})
        self._insert_conceded.move_to_end(key)
        if all(conceded.get((st, idx)) == word for st, idx, word in foreigns):
            # Every foreign already conceded (and was cleared): last one
            # standing.  Drop the episode's state so a later re-insert of
            # the key (after a delete) can never match stale concessions.
            del self._insert_conceded[key]
            verdict = "win"
        else:
            st, idx, word = own
            conceded[(st, idx)] = word
            verdict = "concede"
            if len(self._insert_conceded) > 1024:
                self._insert_conceded.popitem(last=False)
        yield self.env.timeout(self.config.rpc_one_way_us)
        return verdict

    # ------------------------------------------------------------ fail_query
    def fail_query(self, ref: SlotRef, v_old: int,
                   token: Optional[int] = None):
        """Client RPC (Algorithm 4): resolve a slot blocked by a failure.

        Returns the committed value of the slot after repair.  The caller
        retries its write if the returned value equals its ``v_old``.
        ``token``: idempotency token for fault-aware retransmissions.
        """
        return (yield from self._dedup_call(
            token, self._fail_query(ref, v_old)))

    def _fail_query(self, ref: SlotRef, v_old: int):
        yield self.env.timeout(self.config.rpc_one_way_us)
        req = self.cpu.request()
        yield req
        try:
            yield self.env.timeout(self.config.rpc_service_us)
        finally:
            req.release()
        # The client may query before the failure detector has noticed the
        # crash: wait for the membership change (Algorithm 4, "wait for
        # membership change") — either the repair barrier, or one detector
        # period if the barrier is not up yet.
        for _ in range(1000):
            barrier = self._blocked.get(ref.subtable)
            if barrier is not None:
                yield barrier
                continue
            # Re-resolve against the (possibly reconfigured) placement.
            new_ref = self.race.slot_ref(ref.subtable, ref.slot_index)
            primary_mn, primary_addr = new_ref.primary()
            if self.fabric.node(primary_mn).crashed:
                yield self.env.timeout(self.config.detector_interval_us)
                continue
            comp = yield self.fabric.post_one(
                ReadOp(primary_mn, primary_addr, 8))
            yield self.env.timeout(self.config.rpc_one_way_us)
            if comp.failed:
                continue
            return int.from_bytes(comp.value, "big")
        return None

    # ----------------------------------------------------- client recovery
    def recover_client(self, cid: int):
        """§5.3: memory re-management + index repair for a crashed client.

        Generator; returns ``(RecoveryReport, RecoveredClientState)``.
        """
        report = RecoveryReport()
        state = RecoveredClientState(cid=cid)
        tracer = self.fabric.tracer
        span = (tracer.begin_span("recover.client", cid)
                if tracer.enabled else None)
        t0 = self.env.now

        # Step 1: re-establish connections and re-register memory regions.
        yield self.env.timeout(self.config.recovery_conn_mr_us(
            len(self.fabric.nodes)))
        report.connect_mr_us = self.env.now - t0

        # Step 2: fetch the client's metadata (per-size-class list heads).
        # The Table-1 phases get nested tracer spans so ``repro profile``
        # (and folded stacks) break the recovery budget down per phase.
        t1 = self.env.now
        scan_span = (tracer.begin_span("recover.metadata_scan", cid)
                     if tracer.enabled else None)
        self.fabric.trace_phase("recover.read_heads")
        heads = yield from self._read_heads(cid)
        if scan_span is not None:
            tracer.end_span(scan_span, ok=True)
        report.get_metadata_us = self.env.now - t1

        # Step 3: traverse the per-size-class embedded logs (the paper's
        # per-object walk: the chains give the allocation order needed for
        # batched-free recovery and account for the Table-1 traversal cost).
        t2 = self.env.now
        replay_span = (tracer.begin_span("recover.log_replay", cid)
                       if tracer.enabled else None)
        self.fabric.trace_phase("recover.walk_log")
        walker = LogWalker(self.fabric, self.region_map, self.size_classes)
        chains: Dict[int, List[WalkedObject]] = {}
        terminators: Dict[int, WalkedObject] = {}
        for class_idx, head in heads.items():
            if head == NULL_ADDR:
                continue
            chain, terminator = yield from walker.walk_class(head, class_idx)
            chains[class_idx] = chain
            if terminator is not None:
                terminators[class_idx] = terminator
            report.objects_visited += len(chain)
        if replay_span is not None:
            tracer.end_span(replay_span, ok=True)
        report.traverse_log_us = self.env.now - t2

        # Step 4: repair the index.  Object usage is taken from an
        # authoritative scan of the client's blocks (chains alone
        # under-approximate it once recycled objects have re-linked, see
        # docs/protocol.md): every used object whose successor link is
        # broken is a *chain end* — a potentially-crashed request, safe to
        # over-approximate because every repair below is guarded.
        t3 = self.env.now
        self.fabric.trace_phase("recover.repair_requests")
        blocks, objects = yield from self._scan_owned_objects(cid)
        used_objects: Dict[int, Set[int]] = {}
        for gaddr, obj in objects.items():
            if obj.allocated:
                used_objects.setdefault(obj.class_idx, set()).add(gaddr)
        for terminator in terminators.values():
            if (terminator.entry is None or not terminator.entry.used) \
                    and not terminator.is_blank:
                report.crash_cases["c0"] = report.crash_cases.get("c0", 0) + 1
                report.objects_reclaimed += 1
        free_candidates: List[int] = []
        for end in self._chain_ends(objects):
            report.tails_examined += 1
            case, keep_used = yield from self._recover_request(
                end, report, free_candidates)
            report.crash_cases[case.value] = (
                report.crash_cases.get(case.value, 0) + 1)
            if not keep_used:
                used_objects.setdefault(end.class_idx, set()).discard(
                    end.gaddr)
                report.objects_reclaimed += 1
        yield from self._recover_batched_frees(cid, chains, used_objects,
                                               blocks)
        # Old-value frees gathered from chain ends, guarded: only objects
        # in the crashed client's own blocks that are not currently in use
        # (a reused address may hold live data).
        own_blocks = {(info["region"], info["block"]) for info in blocks}
        layout = self.region_map.layout
        all_used = set()
        for used in used_objects.values():
            all_used |= used
        for old_ptr in free_candidates:
            if old_ptr in all_used:
                continue
            region_id, offset = self.region_map.split(old_ptr)
            try:
                block = layout.block_index_of(offset)
            except ValueError:
                continue
            if (region_id, block) not in own_blocks:
                continue
            yield from self._ensure_freed(old_ptr)
        report.recover_requests_us = self.env.now - t3

        # Step 5: reconstruct the free lists from block tables and bitmaps.
        t4 = self.env.now
        self.fabric.trace_phase("recover.free_lists")
        yield from self._construct_free_lists(cid, used_objects, heads,
                                              chains, state, report, blocks)
        report.construct_free_list_us = self.env.now - t4
        if span is not None:
            tracer.end_span(span, ok=True, outcome="recovered")
        return report, state

    def _read_heads(self, cid: int):
        """Read the per-size-class list heads from any alive MN (generator)."""
        n = len(self.size_classes)
        for mn_id, base in self.client_table.bases.items():
            if self.fabric.node(mn_id).crashed:
                continue
            off = self.client_table.slot_offset(cid, 0)
            comp = yield self.fabric.post_one(ReadOp(mn_id, base + off, n * 8))
            if comp.failed:
                continue
            data = comp.value
            return {ci: int.from_bytes(data[ci * 8:(ci + 1) * 8], "big")
                    for ci in range(n)}
        return {}

    def _scan_owned_objects(self, cid: int):
        """Authoritative object usage: read every block the client owns and
        parse each slab object's trailing log entry (generator).

        Returns ``(blocks, objects)`` where ``objects[gaddr]`` is a
        :class:`WalkedObject` for every object in the client's blocks.
        """
        blocks: List[dict] = []
        for mn_id in list(self.fabric.nodes):
            if self.fabric.node(mn_id).crashed:
                continue
            reply = yield self.fabric.rpc(mn_id, "find_client_blocks",
                                          {"cid": cid})
            if reply and "blocks" in reply:
                blocks.extend(reply["blocks"])
        layout = self.region_map.layout
        walker = LogWalker(self.fabric, self.region_map, self.size_classes)
        objects: Dict[int, WalkedObject] = {}
        for info in blocks:
            region_id, block = info["region"], info["block"]
            class_idx = info["class_idx"]
            if class_idx >= len(self.size_classes):
                continue
            size = self.size_classes[class_idx]
            block_off = layout.block_offset(block)
            data = None
            for mn_id, base in self.region_map.placement(region_id):
                if self.fabric.node(mn_id).crashed:
                    continue
                comp = yield self.fabric.post_one(
                    ReadOp(mn_id, base + block_off,
                           layout.config.block_size))
                if not comp.failed:
                    data = comp.value
                    break
            if data is None:
                continue
            for off in range(0, layout.config.block_size - size + 1, size):
                gaddr = self.region_map.gaddr(region_id, block_off + off)
                objects[gaddr] = walker._parse(gaddr, class_idx,
                                               data[off:off + size])
        return blocks, objects

    @staticmethod
    def _chain_ends(objects: Dict[int, WalkedObject]):
        """Used objects whose successor link is broken — each the end of a
        per-size-class allocation chain, i.e. a potentially-crashed
        request (the paper's "requests at the end of the linked lists")."""
        ends = []
        for gaddr, obj in objects.items():
            if not obj.allocated:
                continue
            succ = objects.get(obj.entry.next_ptr)
            if (obj.entry.next_ptr == NULL_ADDR or succ is None
                    or not succ.allocated
                    or succ.entry.prev_ptr != gaddr):
                ends.append(obj)
        ends.sort(key=lambda o: o.gaddr)
        return ends

    def _recover_request(self, tail: WalkedObject, report: RecoveryReport,
                         free_candidates: Optional[List[int]] = None):
        """Classify and repair one potentially-crashed request (generator).

        Returns ``(case, keep_used)``: whether the object remains in the
        used set (False reclaims it during free-list reconstruction).
        Old-value pointers to free are appended to ``free_candidates`` for
        the caller to process under its reuse guards.
        """
        if tail.entry is None or not tail.entry.used or tail.key is None:
            return CrashCase.C0_INCOMPLETE_OBJECT, False
        is_delete = tail.entry.opcode == OP_DELETE

        meta = self.race.key_meta(tail.key)
        from .wire import kv_len_units
        word = pack_slot(meta.fingerprint,
                         kv_len_units(len(tail.key), len(tail.value or b"")),
                         tail.gaddr)
        v_new = 0 if is_delete else word

        if not tail.entry.old_value_committed:
            # Possibly c1 — but first check whether the object is already
            # the key's live version (completed rounds whose commit was
            # skipped, e.g. single-replica mode, or historical chain ends).
            located = yield from self._locate_key(tail.key, meta)
            if located is not None and located[1] == word:
                report.requests_finished += 1
                return CrashCase.C3_FINISHED, not is_delete
            installed = yield from self._redo_request(tail, meta, word,
                                                      located)
            report.requests_redone += 1
            return CrashCase.C1_UNCOMMITTED, installed and not is_delete

        # Old value committed: the client was the decided last writer.  Find
        # the slot: backups already hold v_new, so locate it on a backup
        # replica (for deletes, locate by the old value on the primary).
        locate_word = v_new if v_new != 0 else tail.entry.old_value
        ref = yield from self._locate_slot_by_word(meta, locate_word)
        if ref is None:
            report.requests_finished += 1
            return CrashCase.C3_FINISHED, not is_delete
        primary_mn, primary_addr = ref.primary()
        comp = yield self.fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
        if comp.failed:
            report.requests_finished += 1
            return CrashCase.C3_FINISHED, not is_delete
        v_p = int.from_bytes(comp.value, "big")
        if v_p == tail.entry.old_value and v_p != v_new:
            # c2: backups are consistent; finish the round at the primary.
            yield self.fabric.post_one(CasOp(primary_mn, primary_addr,
                                             expected=v_p, swap=v_new))
            report.requests_redone += 1
            return CrashCase.C2_BEFORE_PRIMARY, not is_delete
        # c3: already finished.  Recover the batched free of the old object
        # (deferred to the caller, which applies reuse/ownership guards).
        old_slot = unpack_slot(tail.entry.old_value)
        if old_slot.pointer != NULL_ADDR and free_candidates is not None:
            free_candidates.append(old_slot.pointer)
        report.requests_finished += 1
        return CrashCase.C3_FINISHED, not is_delete

    def _recover_batched_frees(self, cid: int, chains, used_objects,
                               blocks):
        """§5.3: "the master asynchronously checks the v_olds in log
        entries of the crashed client to recover its batched free
        operations" (generator).

        For every committed old value the client logged, the superseded
        object's free bit must be set.  Only objects inside the crashed
        client's *own* blocks and not currently re-allocated (i.e. not in
        its walked used set) are freed — an address owned by another
        client may have been legitimately reclaimed and reused there.
        """
        own_blocks = {(info["region"], info["block"]) for info in blocks}
        layout = self.region_map.layout
        for class_idx, chain in chains.items():
            # Allocation order within the class: an object named as the
            # *old value* of a later entry was superseded after its own
            # allocation, so it is garbage — unless it was re-allocated,
            # in which case its (rewritten) entry moved it to a later
            # chain position.
            position = {obj.gaddr: i for i, obj in enumerate(chain)}
            for j, obj in enumerate(chain):
                if obj.entry is None or not obj.entry.old_value_committed:
                    continue
                old_ptr = unpack_slot(obj.entry.old_value).pointer
                if old_ptr == NULL_ADDR:
                    continue
                if old_ptr not in position or position[old_ptr] >= j:
                    continue  # cross-class or re-allocated later: skip
                region_id, offset = self.region_map.split(old_ptr)
                try:
                    block = layout.block_index_of(offset)
                except ValueError:
                    continue
                if (region_id, block) not in own_blocks:
                    continue  # another client's memory: its owner reclaims
                yield from self._ensure_freed(old_ptr)
                used_objects.setdefault(class_idx, set()).discard(old_ptr)

    def _redo_request(self, tail: WalkedObject, meta: KeyMeta, word: int,
                      located=None):
        """Redo a c1 request on the crashed client's behalf (generator).

        Safe because the request never returned to the application; the
        master runs the normal SNAPSHOT protocol so it composes with
        concurrent live writers (Appendix A.4.2).  Returns True when the
        object ended up installed in the index.
        """
        if located is None:
            located = yield from self._locate_key(tail.key, meta)
        opcode = tail.entry.opcode
        if opcode == OP_INSERT:
            if located is not None:
                return False  # key exists: the insert must not be replayed
            view = yield from self._read_view(meta)
            if view is None or not view.empties:
                return False
            ref = view.empties[0]
            result = yield from snapshot_write(
                self.fabric, ref, 0, word,
                on_win=self._commit_hook(tail, 0))
            return result.outcome.won
        if located is None:
            return False  # UPDATE/DELETE of a key that no longer exists
        ref, v_old = located
        v_new = 0 if opcode == OP_DELETE else word
        if v_old == v_new:
            return v_old == word
        result = yield from snapshot_write(
            self.fabric, ref, v_old, v_new,
            on_win=self._commit_hook(tail, v_old))
        return result.outcome.won and not v_new == 0

    def _commit_hook(self, tail: WalkedObject, v_old: int):
        def hook(old_value: int):
            ops = commit_old_value_ops(self.region_map, self.fabric,
                                       tail.gaddr,
                                       self.size_classes[tail.class_idx],
                                       old_value)
            if ops:
                yield self.fabric.post(ops)
        return hook

    def _read_view(self, meta: KeyMeta):
        placement = self.race.placement(meta.subtable)
        for replica in range(len(placement)):
            mn_id, _ = placement[replica]
            if self.fabric.node(mn_id).crashed:
                continue
            ops = self.race.bucket_read_ops(meta, replica=replica)
            comps = yield self.fabric.post(ops)
            if any(c.failed for c in comps):
                continue
            return self.race.parse_buckets(meta, [c.value for c in comps])
        return None

    def _locate_key(self, key: bytes, meta: KeyMeta):
        """Find the slot currently holding ``key``; returns (ref, word)."""
        view = yield from self._read_view(meta)
        if view is None:
            return None
        for snap in view.matches:
            for mn_id, addr in self.region_map.translate(snap.slot.pointer):
                if self.fabric.node(mn_id).crashed:
                    continue
                comp = yield self.fabric.post_one(
                    ReadOp(mn_id, addr, snap.slot.block_bytes))
                if comp.failed:
                    continue
                try:
                    from .wire import decode_kv_payload
                    _h, kv_key, _v = decode_kv_payload(comp.value)
                except ValueError:
                    break
                if kv_key == key:
                    return snap.ref, snap.word
                break  # fingerprint collision with a different key
        return None

    def _locate_slot_by_word(self, meta: KeyMeta, word: int):
        """Find the candidate slot holding ``word`` on any replica."""
        placement = self.race.placement(meta.subtable)
        for replica in range(len(placement) - 1, -1, -1):
            mn_id, _ = placement[replica]
            if self.fabric.node(mn_id).crashed:
                continue
            ops = self.race.bucket_read_ops(meta, replica=replica)
            comps = yield self.fabric.post(ops)
            if any(c.failed for c in comps):
                continue
            view = self.race.parse_buckets(meta, [c.value for c in comps])
            for snap in view.matches:
                if snap.word == word:
                    return snap.ref
        return None

    def _ensure_freed(self, gaddr: int):
        """Make sure an old object's free bit is set (batched-free recovery)."""
        layout = self.region_map.layout
        region_id, offset = self.region_map.split(gaddr)
        try:
            byte_off, bit = layout.object_bit(offset)
        except ValueError:
            return
        word_off = byte_off - (byte_off % 8)
        primary = None
        for mn_id, base in self.region_map.placement(region_id):
            if not self.fabric.node(mn_id).crashed:
                primary = (mn_id, base)
                break
        if primary is None:
            return
        comp = yield self.fabric.post_one(
            ReadOp(primary[0], primary[1] + word_off, 8))
        if comp.failed:
            return
        current = int.from_bytes(comp.value, "big")
        shift = (7 - (byte_off % 8)) * 8 + bit
        if current & (1 << shift):
            return
        ops = []
        for mn_id, base in self.region_map.placement(region_id):
            if not self.fabric.node(mn_id).crashed:
                from ..rdma import FaaOp
                ops.append(FaaOp(mn_id, base + word_off, 1 << shift))
        if ops:
            yield self.fabric.post(ops)

    def _construct_free_lists(self, cid: int, used_objects, heads, chains,
                              state: RecoveredClientState,
                              report: RecoveryReport, blocks):
        """Step 5 (generator): scanned blocks + bitmaps + used sets ->
        free lists."""
        layout = self.region_map.layout
        report.blocks_recovered = len(blocks)
        total_objects = 0
        for info in blocks:
            region_id, block = info["region"], info["block"]
            class_idx = info["class_idx"]
            size = self.size_classes[class_idx]
            state.blocks.append((region_id, block, class_idx))
            # Read the block's free bitmap from the first alive replica.
            freed_units: Set[int] = set()
            for mn_id, base in self.region_map.placement(region_id):
                if self.fabric.node(mn_id).crashed:
                    continue
                bm_off = layout.bitmap_offset_of(block)
                comp = yield self.fabric.post_one(
                    ReadOp(mn_id, base + bm_off,
                           layout.bitmap_bytes_per_block))
                if comp.failed:
                    continue
                bitmap = comp.value
                for byte_idx, byte in enumerate(bitmap):
                    for bit in range(8):
                        if byte & (1 << bit):
                            freed_units.add(byte_idx * 8 + bit)
                break
            block_start = layout.block_offset(block)
            used = used_objects.get(class_idx, set())
            free_list = state.free_lists.setdefault(class_idx, [])
            for off in range(0, layout.config.block_size - size + 1, size):
                gaddr = self.region_map.gaddr(region_id, block_start + off)
                unit = off // layout.config.min_object_size
                total_objects += 1
                if gaddr in used and unit not in freed_units:
                    continue  # still allocated
                free_list.append(gaddr)
        for class_idx, head in heads.items():
            state.heads[class_idx] = head
            chain = chains.get(class_idx, [])
            state.last_allocs[class_idx] = (
                chain[-1].gaddr if chain else NULL_ADDR)
        # CPU cost of scanning objects and rebuilding lists.
        yield self.env.timeout(
            self.config.free_list_cpu_per_object_us * max(1, total_objects))
