"""Building checkable concurrent histories from tracer spans.

The tracer already records one span per client operation, carrying the
key, the written value, the returned value and the success flag (PR 1,
extended here).  :func:`kv_ops_from_spans` turns a tracer's span list
into the :class:`~repro.core.linearizability.KvOp` history the KV
checker consumes.

Zero-latency schedule exploration needs one extra ingredient: with every
protocol step at simulated t=0, ``env.now`` cannot order invocations and
completions.  :class:`LogicalClockTracer` substitutes the controlled
scheduler's logical clock — which advances on every dispatched event and
every query — so recorded spans carry the *serialization order* of the
execution, which is its true real-time order.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from ..core.linearizability import KvOp
from ..obs.tracer import Span, Tracer

__all__ = ["kv_ops_from_spans", "LogicalClockTracer"]

_KV_KINDS = frozenset(("search", "insert", "update", "delete"))


def kv_ops_from_spans(spans: Iterable[Span]) -> List[KvOp]:
    """Convert traced client spans into a KV history.

    Non-KV spans (recovery procedures, master work) are skipped, as are
    spans with no key.  A span that never ended, or that ended with an
    error (its client crashed or gave up mid-protocol), becomes a
    *pending* operation: the checker may linearize it anywhere after its
    invocation or drop it.
    """
    ops: List[KvOp] = []
    for span in spans:
        if span.op not in _KV_KINDS or span.key is None:
            continue
        pending = span.end_us is None or span.error is not None
        lost = span.outcome in ("lose", "finish")
        ops.append(KvOp(
            kind=span.op,
            key=span.key,
            invoked=span.start_us,
            completed=math.inf if pending else span.end_us,
            ok=bool(span.ok) and not pending,
            wrote=span.wrote,
            value=span.value,
            existed=span.existed,
            lost=lost,
            op_id=span.sid,
            required=not pending,
        ))
    return ops


class LogicalClockTracer(Tracer):
    """A tracer that timestamps spans with a logical clock.

    ``clock`` is any zero-argument callable returning monotonically
    increasing values — normally a :class:`ControlledScheduler`'s
    :meth:`~repro.check.scheduler.ControlledScheduler.logical_clock`.
    Batch/RPC records keep simulated time (they are not part of the
    linearizability history).
    """

    def __init__(self, clock, env=None, enabled: bool = True):
        super().__init__(env=env, enabled=enabled)
        self.clock = clock

    def begin_span(self, op, cid, key=None, wrote=None) -> Span:
        span = super().begin_span(op, cid, key=key, wrote=wrote)
        span.start_us = self.clock()
        return span

    def end_span(self, span, ok, outcome=None, error=None, value=None,
                 existed=False) -> None:
        super().end_span(span, ok, outcome=outcome, error=error,
                         value=value, existed=existed)
        span.end_us = self.clock()
