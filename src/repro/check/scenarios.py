"""Schedule-exploration scenarios: small worlds with real races.

A *scenario* is a callable ``(ControlledScheduler) -> Optional[str]``: it
builds a fresh simulated world, installs the scheduler, runs a workload,
checks its invariants and the recorded history, and returns ``None``
(clean) or a violation message.  The explorer calls it once per schedule,
so scenarios must be deterministic given the scheduler's decisions.

All scenarios run at **zero simulated latency** (free fabric, free NIC):
every protocol step of every process lands at the same simulated time, so
the whole execution is one big co-runnable group and the scheduler's
decisions pick the serialization — maximal schedule coverage.  Real-time
order for the linearizability histories comes from the scheduler's
logical clock, which advances per dispatched event.

Two families:

* **Slot-level** (``slot-*``) — raw :func:`repro.core.snapshot` writers
  and readers on one replicated slot, checked as a linearizable register
  plus SNAPSHOT's own invariants (unique winner per round, replica
  convergence at quiescence).
* **Cluster-level** (``cluster-*``) — whole FUSEE clusters with
  concurrent clients, checked with the KV linearizability checker over
  tracer spans plus protocol invariants (no duplicate index slots per
  key, displaced objects invalidation-marked).

The protocol functions are looked up *dynamically* (``snapshot_mod.
snapshot_write``) so the mutations in :mod:`repro.check.mutations` can
patch them per run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core import replication as replication_mod
from ..core import snapshot as snapshot_mod
from ..core.addressing import RegionConfig
from ..core.client import ClientConfig
from ..core.kvstore import ClusterConfig, FuseeCluster
from ..core.linearizability import (History, check_kv_linearizable,
                                    check_linearizable)
from ..core.race import RaceConfig, SlotRef
from ..core.wire import FLAG_INVALID, SLOT_SIZE, unpack_slot
from ..faults.model import (CN, FaultInjector, FaultPlan, GrayNode,
                            LinkFault, Partition)
from ..faults.retry import RetryPolicy
from ..rdma import CasOp, Fabric, FabricConfig, MemoryNode, ReadOp
from ..sim import Environment, NicProfile
from .history import LogicalClockTracer, kv_ops_from_spans
from .scheduler import ControlledScheduler

__all__ = ["SCENARIOS", "make_slot_write_race", "make_slot_crash_read",
           "make_cluster_insert_race", "make_cluster_insert_delete_race",
           "make_cluster_update_invalidate",
           "make_slot_write_race_lossy", "make_cluster_partition_heal",
           "make_swarm_write_race", "make_swarm_crash_read",
           "make_swarm_write_chain", "make_cluster_swarm_race",
           "make_cluster_gray_expansion"]

Scenario = Callable[[ControlledScheduler], Optional[str]]

# Free fabric + free NIC: every event lands at t=0 and becomes
# co-runnable with everything else.  Only explicit sleeps advance time.
ZERO_LATENCY_FABRIC = FabricConfig(one_way_delay_us=0.0, fail_delay_us=0.0,
                                   post_overhead_us=0.0)
ZERO_COST_NIC = NicProfile(op_overhead=0.0, atomic_overhead=0.0,
                           bandwidth_gbps=float("inf"), rpc_overhead=0.0)


# --------------------------------------------------------------------------
# Slot-level scenarios
# --------------------------------------------------------------------------

def _slot_world(sched: ControlledScheduler, replicas: int):
    env = Environment()
    env.set_scheduler(sched)
    fabric = Fabric(env, ZERO_LATENCY_FABRIC)
    for mn in range(replicas):
        fabric.add_node(MemoryNode(env, mn, 4096, nic_profile=ZERO_COST_NIC,
                                   cpu_cores=1))
    ref = SlotRef(subtable=0, slot_index=0,
                  placement=tuple((mn, 0) for mn in range(replicas)))
    return env, fabric, ref


def make_slot_write_race(writers: int = 2, readers: int = 1,
                         replicas: int = 3) -> Scenario:
    """Conflicting SNAPSHOT writers + concurrent readers on one slot.

    Checks, at quiescence: exactly one writer won the round, every
    replica holds the winner's value, and the read/write history is
    linearizable as a register.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env, fabric, ref = _slot_world(sched, replicas)
        history = History(initial_value=0)
        results = {}

        def writer(val: int):
            invoked = sched.logical_clock()
            res = yield from snapshot_mod.snapshot_write(
                fabric, ref, 0, val, retry_sleep_us=1.0, max_wait_rounds=64)
            results[val] = res
            if res.outcome.completed:
                history.record("w", val, invoked, sched.logical_clock())
            else:
                history.record_pending("w", val, invoked)

        def reader():
            for _ in range(2):
                invoked = sched.logical_clock()
                res = yield from snapshot_mod.snapshot_read(fabric, ref)
                if res.value is not None:
                    history.record("r", res.value, invoked,
                                   sched.logical_clock())

        for i in range(writers):
            env.process(writer(100 + i), name=f"writer-{i}")
        for i in range(readers):
            env.process(reader(), name=f"reader-{i}")
        env.run()

        winners = sorted(v for v, r in results.items() if r.outcome.won)
        if len(winners) > 1:
            return (f"two last writers decided for one round: {winners} "
                    f"(SNAPSHOT guarantees a unique winner)")
        if len(results) == writers and not winners:
            return "no writer won although every writer completed"
        words = {mn: fabric.node(mn).read_word(0) for mn in range(replicas)}
        if len(set(words.values())) > 1:
            return f"replica divergence at quiescence: {words}"
        if winners and words[0] != winners[0]:
            return (f"winner wrote {winners[0]} but replicas hold "
                    f"{words[0]} at quiescence")
        if not check_linearizable(history):
            ops = [(op.kind, op.value, op.invoked, op.completed)
                   for op in history.ops]
            return f"slot history not linearizable as a register: {ops}"
        return None

    return scenario


def make_slot_crash_read(replicas: int = 3) -> Scenario:
    """One writer, one reader, and a primary-replica crash.

    The crash is an ordinary schedulable event, so the explorer places it
    at every point of the protocol.  The reader's two sequential READs
    plus the (possibly pending) write must linearize as a register —
    the scenario that distinguishes backups-first from primary-first
    replica write ordering.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env, fabric, ref = _slot_world(sched, replicas)
        history = History(initial_value=0)

        def writer():
            invoked = sched.logical_clock()
            res = yield from snapshot_mod.snapshot_write(
                fabric, ref, 0, 100, retry_sleep_us=1.0, max_wait_rounds=16)
            if res.outcome.completed:
                history.record("w", 100, invoked, sched.logical_clock())
            else:
                history.record_pending("w", 100, invoked)

        def reader():
            for _ in range(2):
                invoked = sched.logical_clock()
                res = yield from snapshot_mod.snapshot_read(fabric, ref)
                if res.value is not None:
                    history.record("r", res.value, invoked,
                                   sched.logical_clock())

        def crasher():
            yield env.timeout(0.0)
            fabric.node(ref.primary()[0]).crash()

        env.process(writer(), name="writer")
        env.process(reader(), name="reader")
        env.process(crasher(), name="crasher")
        env.run()

        if not check_linearizable(history):
            ops = [(op.kind, op.value, op.invoked, op.completed)
                   for op in history.ops]
            return (f"crash-read history not linearizable as a register: "
                    f"{ops}")
        return None

    return scenario


def make_slot_write_race_lossy(writers: int = 2, replicas: int = 3) -> Scenario:
    """Conflicting SNAPSHOT writers on one slot over a *lossy* fabric.

    A deterministic fault plan drops/duplicates CAS messages (fates are
    content+time keyed, so replaying a schedule replays the faults).  A
    timed-out CAS is uncertain — it may have applied — so writers may end
    in ``NEED_MASTER``; with no master in this world those rounds stay
    *pending* in the history.  Invariants: at most one winner, replica
    convergence whenever nobody needed the master, and register
    linearizability with uncertain writes treated as pending.
    """
    plan = FaultPlan(link_faults=[
        LinkFault(drop_p=0.12, dup_p=0.10, start_us=0.0, end_us=60.0)],
        seed=7)

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env, fabric, ref = _slot_world(sched, replicas)
        fabric.injector = FaultInjector(
            plan, retry=RetryPolicy(max_attempts=4, verb_timeout_us=4.0,
                                    backoff_base_us=1.0, backoff_cap_us=8.0))
        history = History(initial_value=0)
        results = {}

        def writer(val: int):
            invoked = sched.logical_clock()
            res = yield from snapshot_mod.snapshot_write(
                fabric, ref, 0, val, retry_sleep_us=1.0, max_wait_rounds=64)
            results[val] = res
            if res.outcome.completed:
                history.record("w", val, invoked, sched.logical_clock())
            else:
                history.record_pending("w", val, invoked)

        for i in range(writers):
            env.process(writer(100 + i), name=f"writer-{i}")
        env.run()

        winners = sorted(v for v, r in results.items() if r.outcome.won)
        if len(winners) > 1:
            return (f"two last writers decided for one round under loss: "
                    f"{winners}")
        uncertain = [v for v, r in results.items()
                     if not r.outcome.completed]
        if not uncertain:
            # Every round decided without the master: replicas converge.
            words = {mn: fabric.node(mn).read_word(0)
                     for mn in range(replicas)}
            if len(set(words.values())) > 1:
                return f"replica divergence without NEED_MASTER: {words}"
        if not check_linearizable(history):
            ops = [(op.kind, op.value, op.invoked, op.completed)
                   for op in history.ops]
            return f"lossy slot history not linearizable: {ops}"
        return None

    return scenario


# --------------------------------------------------------------------------
# SWARM slot-level scenarios
# --------------------------------------------------------------------------

def make_swarm_write_race(writers: int = 2, readers: int = 2,
                          replicas: int = 3) -> Scenario:
    """Conflicting SWARM writers + timestamp-validated readers on one slot.

    Each reader is pinned (via ``rotation``) to a different replica, and
    a straggler plants one raw conflicting ``CAS(0 -> 77)`` on a backup
    — a same-round competitor whose client died before reaching the
    primary.  The debris value commits nowhere and is *absent from the
    history*, so any read returning it is non-linearizable by
    construction: the validated read rejects it against the primary's
    timestamp word, while a reader that skips the validation hands it
    straight to the caller.  Checks at quiescence: unique winner per
    round, replica convergence whenever nobody escalated to the master,
    and register linearizability of the whole read/write history.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env, fabric, ref = _slot_world(sched, replicas)
        history = History(initial_value=0)
        results = {}

        def straggler():
            # Uncommitted loser debris; the round winner converges it.
            mn, addr = ref.backups()[0]
            yield env.timeout(0.0)
            yield fabric.post_one(CasOp(mn, addr, expected=0, swap=77))

        def writer(val: int):
            invoked = sched.logical_clock()
            res = yield from replication_mod.swarm_write(
                fabric, ref, 0, val, retry_sleep_us=1.0)
            results[val] = res
            if res.outcome.won:
                history.record("w", val, invoked, sched.logical_clock())
            else:
                # LOSE included: a swarm loser returns in 1 RTT without
                # waiting out the round, so its invocation may postdate
                # the winner's commit — pinning it "immediately before
                # the winner" could fall outside its own window.  Its
                # value is transient-or-nothing: a pending op.
                history.record_pending("w", val, invoked)

        def reader(rotation: int):
            invoked = sched.logical_clock()
            res = yield from replication_mod.swarm_read(
                fabric, ref, rotation=rotation, max_validate_rounds=2)
            if res.value is not None:
                history.record("r", res.value, invoked,
                               sched.logical_clock())

        for i in range(writers):
            env.process(writer(100 + i), name=f"writer-{i}")
        env.process(straggler(), name="straggler")
        for i in range(readers):
            # rotation=i+1 spreads readers across distinct backups on an
            # idle fabric (reader replicas-1 lands on the debris target).
            env.process(reader(i + 1), name=f"reader-{i}")
        env.run()

        winners = sorted(v for v, r in results.items() if r.outcome.won)
        if len(winners) > 1:
            return (f"two swarm writers decided they won one round: "
                    f"{winners} (the primary CAS admits one winner)")
        if len(results) == writers and not winners:
            return "no writer won although every writer completed"
        if all(r.outcome is not snapshot_mod.Outcome.NEED_MASTER
               for r in results.values()):
            words = {mn: fabric.node(mn).read_word(0)
                     for mn in range(replicas)}
            if len(set(words.values())) > 1:
                return f"replica divergence at quiescence: {words}"
            if winners and words[0] != winners[0]:
                return (f"winner installed {winners[0]} but replicas hold "
                        f"{words[0]} at quiescence")
        if not check_linearizable(history):
            ops = [(op.kind, op.value, op.invoked, op.completed)
                   for op in history.ops]
            return f"swarm history not linearizable as a register: {ops}"
        return None

    return scenario


def make_swarm_crash_read(replicas: int = 3) -> Scenario:
    """One SWARM writer, one reader, and a primary-replica crash.

    The crash is schedulable at every protocol point.  The writer's
    broadcast must cover *all* replicas before it acknowledges: an
    early-ack write (primary only, backups fire-and-forget) lets the
    reader observe the new value from the primary, lose the primary to
    the crash, and then read the unanimous-stale backups — new-then-old,
    which no register linearization admits.  (Single writer on purpose:
    degraded backup-unanimity reads are only sound without a concurrent
    multi-writer conflict.)
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env, fabric, ref = _slot_world(sched, replicas)
        history = History(initial_value=0)

        def writer():
            invoked = sched.logical_clock()
            res = yield from replication_mod.swarm_write(
                fabric, ref, 0, 100, retry_sleep_us=1.0)
            if res.outcome.won:
                history.record("w", 100, invoked, sched.logical_clock())
            else:
                history.record_pending("w", 100, invoked)

        def reader():
            for _ in range(2):
                invoked = sched.logical_clock()
                res = yield from replication_mod.swarm_read(fabric, ref)
                if res.value is not None:
                    history.record("r", res.value, invoked,
                                   sched.logical_clock())

        def crasher():
            yield env.timeout(0.0)
            fabric.node(ref.primary()[0]).crash()

        env.process(writer(), name="writer")
        env.process(reader(), name="reader")
        env.process(crasher(), name="crasher")
        env.run()

        if not check_linearizable(history):
            ops = [(op.kind, op.value, op.invoked, op.completed)
                   for op in history.ops]
            return (f"swarm crash-read history not linearizable as a "
                    f"register: {ops}")
        return None

    return scenario


def make_swarm_write_chain(replicas: int = 3) -> Scenario:
    """A SWARM writer, a stranded conflicting backup CAS, and a chained
    round-2 writer.

    The straggler posts one raw ``CAS(0 -> 101)`` to the first backup —
    a conflicting same-round writer whose client died before reaching
    the primary.  Its debris forces the winner's broadcast to return a
    divergent backup, so the *fixup* path actually runs (a doorbell
    batch applies atomically in this world, so racing whole broadcasts
    can never diverge on their own).  The chained writer reads the
    primary and CASes from whatever round it observed, letting a
    round-1 fixup race a round-2 commit.  The clean fixup re-reads the
    primary before every CAS round and abandons once it moved past its
    own value; a non-monotonic (blind-write) fixup re-installs the
    stale round over the newer committed one and the replicas diverge
    at quiescence.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env, fabric, ref = _slot_world(sched, replicas)
        history = History(initial_value=0)
        results = []

        def writer(val: int):
            invoked = sched.logical_clock()
            res = yield from replication_mod.swarm_write(
                fabric, ref, 0, val, retry_sleep_us=1.0)
            results.append((0, val, res))
            if res.outcome.won:
                history.record("w", val, invoked, sched.logical_clock())
            else:
                history.record_pending("w", val, invoked)

        def straggler():
            # An uncommitted loser word: never reaches the primary, so no
            # read path may ever return it — it is deliberately *not* in
            # the history.  Whoever wins the slot owns converging it away.
            mn, addr = ref.backups()[0]
            yield env.timeout(0.0)
            yield fabric.post_one(CasOp(mn, addr, expected=0, swap=101))

        def chained(val: int):
            invoked = sched.logical_clock()
            primary_mn, primary_addr = ref.primary()
            comp = yield fabric.post_one(ReadOp(primary_mn, primary_addr, 8))
            observed = int.from_bytes(comp.value, "big")
            history.record("r", observed, invoked, sched.logical_clock())
            invoked = sched.logical_clock()
            res = yield from replication_mod.swarm_write(
                fabric, ref, observed, val, retry_sleep_us=1.0)
            results.append((observed, val, res))
            if res.outcome.won:
                history.record("w", val, invoked, sched.logical_clock())
            else:
                history.record_pending("w", val, invoked)

        env.process(writer(100), name="writer-0")
        env.process(straggler(), name="straggler")
        env.process(chained(200), name="chained")
        env.run()

        rounds: Dict[int, List] = {}
        for v_old, v_new, res in results:
            if res.outcome.won:
                rounds.setdefault(v_old, []).append(v_new)
        for v_old, winners in rounds.items():
            if len(winners) > 1:
                return (f"round v_old={v_old} has {len(winners)} winners: "
                        f"{sorted(winners)}")
        if all(res.outcome is not snapshot_mod.Outcome.NEED_MASTER
               for _o, _n, res in results):
            words = {mn: fabric.node(mn).read_word(0)
                     for mn in range(replicas)}
            if len(set(words.values())) > 1:
                return (f"replica divergence at quiescence (a stale fixup "
                        f"clobbered a later round): {words}")
        if not check_linearizable(history):
            ops = [(op.kind, op.value, op.invoked, op.completed)
                   for op in history.ops]
            return f"chained swarm history not linearizable: {ops}"
        return None

    return scenario


# --------------------------------------------------------------------------
# Cluster-level scenarios
# --------------------------------------------------------------------------

def _small_cluster_config() -> ClusterConfig:
    """The smallest fully featured cluster (fast to rebuild per schedule)."""
    return ClusterConfig(
        n_memory_nodes=3,
        replication_factor=2,
        regions_per_mn=1,
        max_clients=8,
        region=RegionConfig(region_size=1 << 16, block_size=1 << 12,
                            min_object_size=64),
        race=RaceConfig(n_subtables=1, n_groups=4, slots_per_bucket=4),
        fabric=ZERO_LATENCY_FABRIC,
        nic=ZERO_COST_NIC,
    )


def _key_slot_words(cluster: FuseeCluster, key: bytes) -> List[int]:
    """Index slot words whose fingerprint matches ``key`` (primary replica)."""
    meta = cluster.race.key_meta(key)
    mn_id, base = cluster.race.placement(meta.subtable)[0]
    node = cluster.fabric.node(mn_id)
    words = []
    for idx in range(cluster.race.config.slots_per_subtable):
        word = node.read_word(base + idx * SLOT_SIZE)
        if word and (word >> 56) & 0xFF == meta.fingerprint:
            words.append(word)
    return words


def make_cluster_insert_race() -> Scenario:
    """Two clients concurrently INSERT the same key.

    SNAPSHOT's conflict re-check must make the loser recognise the
    winner's identical key and stand down; skipping it double-inserts the
    key into two index slots.  Checked three ways: at most one index slot
    may hold the key at quiescence, at most one insert may report a *won*
    outcome, and the whole span history (including a sequential
    delete + search epilogue that would expose a resurrected duplicate)
    must be KV-linearizable.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env = Environment()
        tracer = LogicalClockTracer(sched.logical_clock, env=env)
        cluster = FuseeCluster(_small_cluster_config(), env=env,
                               tracer=tracer)
        c1, c2 = cluster.new_client(), cluster.new_client()
        key = b"contended-key"
        # Warm each client's allocator (fetch a block, set up the size
        # class) on an unrelated key so the *controlled* phase below is
        # just the race itself — bucket read, conflict CAS, commit —
        # keeping the schedule space shallow for the explorer.
        cluster.run_op(c1.insert(b"warmup-1", b"x"))
        cluster.run_op(c2.insert(b"warmup-2", b"x"))

        env.set_scheduler(sched)
        p1 = env.process(c1.insert(key, b"value-one"), name="insert-1")
        p2 = env.process(c2.insert(key, b"value-two"), name="insert-2")
        env.run(until=env.all_of([p1, p2]))

        slots = _key_slot_words(cluster, key)
        if len(slots) > 1:
            return (f"duplicate insert: key occupies {len(slots)} index "
                    f"slots {[hex(w) for w in slots]}")
        won = [s for s in tracer.spans
               if s.op == "insert" and s.key == key and s.ok
               and s.outcome and s.outcome.startswith("rule")]
        if len(won) > 1:
            return (f"both concurrent inserts of one key decided they "
                    f"won ({[s.outcome for s in won]})")

        # Epilogue: a delete followed by a search would resurrect the key
        # from a duplicate slot; the history checker flags that.  The
        # scheduler is still installed, so these run hook-aware.
        cluster.run_op(c1.delete(key), fast=False)
        cluster.run_op(c2.search(key), fast=False)
        violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
        return str(violation) if violation is not None else None

    return scenario


def make_cluster_insert_delete_race() -> Scenario:
    """Two concurrent INSERTs of one key racing a DELETE of a bucket
    neighbour.

    The CAS-conflict recheck only defends the *same-slot* collision.
    Here the DELETE frees a slot inside the contended key's candidate
    buckets mid-race, shifting the bucket-load tiebreak between the two
    inserters' reads: they pick **different** empty slots, both empty-slot
    CASes succeed, and only the post-install dedup sweep (RACE's bucket
    re-read + master arbitration) can catch the duplicate.  Checked at
    quiescence (at most one index slot holds the key) and over the whole
    span history with the KV linearizability checker.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env = Environment()
        tracer = LogicalClockTracer(sched.logical_clock, env=env)
        cluster = FuseeCluster(_small_cluster_config(), env=env,
                               tracer=tracer)
        c1, c2, c3 = (cluster.new_client() for _ in range(3))
        victim, key = b"ck-0", b"ck-2"   # overlapping candidate buckets
        cluster.run_op(c1.insert(victim, b"seed"))
        cluster.run_op(c2.insert(b"warmup-2", b"x"))
        cluster.run_op(c3.insert(b"warmup-3", b"x"))

        env.set_scheduler(sched)
        p1 = env.process(c1.delete(victim), name="delete-victim")
        p2 = env.process(c2.insert(key, b"value-one"), name="insert-1")
        p3 = env.process(c3.insert(key, b"value-two"), name="insert-2")
        env.run(until=env.all_of([p1, p2, p3]))

        slots = _key_slot_words(cluster, key)
        if len(slots) > 1:
            return (f"duplicate insert: key occupies {len(slots)} index "
                    f"slots {[hex(w) for w in slots]}")
        violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
        return str(violation) if violation is not None else None

    return scenario


def make_cluster_update_invalidate() -> Scenario:
    """An UPDATE racing a SEARCH, with the coherence invariant checked.

    When an update wins, the displaced object must carry the invalidation
    flag on every alive data replica at quiescence (§4.6) — otherwise a
    client holding a stale cached pointer would keep reading the dead
    value forever.  The concurrent search history is also checked.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env = Environment()
        tracer = LogicalClockTracer(sched.logical_clock, env=env)
        cluster = FuseeCluster(_small_cluster_config(), env=env,
                               tracer=tracer)
        c1, c2 = cluster.new_client(), cluster.new_client()
        key = b"updated-key"
        cluster.run_op(c1.insert(key, b"old-value"))
        old = _key_slot_words(cluster, key)
        if len(old) != 1:
            return f"setup failed: {len(old)} slots for the key"
        old_ptr = unpack_slot(old[0]).pointer

        env.set_scheduler(sched)
        results = {}

        def updater():
            results["update"] = yield from c1.update(key, b"new-value")

        def searcher():
            results["search"] = yield from c2.search(key)

        p1 = env.process(updater(), name="update")
        p2 = env.process(searcher(), name="search")
        env.run(until=env.all_of([p1, p2]))

        upd = results["update"]
        if upd.ok and upd.outcome is not None and upd.outcome.won:
            for mn_id, addr in cluster.region_map.translate(old_ptr):
                node = cluster.fabric.node(mn_id)
                if node.crashed:
                    continue
                if not node.memory[addr] & FLAG_INVALID:
                    return (f"displaced object at MN{mn_id}+{addr:#x} not "
                            f"invalidation-marked after a won update "
                            f"(stale cached readers would never notice)")
        violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
        return str(violation) if violation is not None else None

    return scenario


def make_cluster_partition_heal() -> Scenario:
    """An UPDATE and a SEARCH racing across a transient client<->MN
    partition that heals mid-schedule.

    While partitioned, the clients' verbs time out and retry; once the
    window closes the operations must all terminate (no hangs) with a
    KV-linearizable history — operations that gave up with a typed error
    become pending ops the checker may discard, but a search must never
    claim absence it could not prove.
    """
    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env = Environment()
        tracer = LogicalClockTracer(sched.logical_clock, env=env)
        cluster = FuseeCluster(_small_cluster_config(), env=env,
                               tracer=tracer)
        c1, c2 = cluster.new_client(), cluster.new_client()
        key = b"partitioned-key"
        cluster.run_op(c1.insert(key, b"old-value"))
        meta = cluster.race.key_meta(key)
        primary_mn = cluster.race.placement(meta.subtable)[0][0]
        cluster.install_faults(
            FaultPlan(partitions=[Partition(a=CN, b=primary_mn,
                                            start_us=0.0, end_us=40.0)],
                      seed=3),
            retry=RetryPolicy(max_attempts=4, verb_timeout_us=4.0,
                              rpc_timeout_us=8.0, backoff_base_us=1.0,
                              backoff_cap_us=8.0))

        env.set_scheduler(sched)
        p1 = env.process(c1.update(key, b"new-value"), name="update")
        p2 = env.process(c2.search(key), name="search")
        env.run(until=env.all_of([p1, p2]))
        if not (p1.triggered and p2.triggered):
            return "an operation hung across the partition"
        cluster.clear_faults()
        # Epilogue on the healed fabric: the final value must be one the
        # history can explain (scheduler still installed: hook-aware).
        cluster.run_op(c2.search(key), fast=False)
        violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
        return str(violation) if violation is not None else None

    return scenario


def make_cluster_gray_expansion() -> Scenario:
    """An extendible index split in flight on a *gray* (slow-but-alive)
    primary MN, racing a client UPDATE and SEARCH.

    The master's ``expand_subtable`` snapshots the old subtable, holds
    writers off behind the expansion barrier for a lease, rebuilds the
    images and commits — all against the subtable's primary.  A gray
    primary stretches every one of those steps arbitrarily, widening
    the windows between snapshot, client ops and commit.  In this
    zero-latency world the gray factor multiplies zero service time, so
    the *scheduler* is what renders the slowness: exploring all
    interleavings of the split's steps against the clients covers every
    gray-stretched timing, including ones a real gray window would be
    unlucky to hit.  The installed gray fault still exercises the
    injector wiring on the RPC path (master expand + ALLOC share the
    faulted fabric).

    Checked: the split and both client ops terminate (no hangs), the
    split actually happened, every preloaded key is still reachable
    after rehash (epilogue searches), and the whole span history is
    KV-linearizable.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        env = Environment()
        tracer = LogicalClockTracer(sched.logical_clock, env=env)
        cluster = FuseeCluster(_small_cluster_config(), env=env,
                               tracer=tracer)
        c1, c2 = cluster.new_client(), cluster.new_client()
        keys = [f"gk-{i}".encode() for i in range(3)]
        for i, key in enumerate(keys):
            cluster.run_op(c1.insert(key, b"v%d" % i))
        cluster.run_op(c2.insert(b"warmup-2", b"x"))
        primary_mn = cluster.race.placement(0)[0][0]
        cluster.install_faults(
            FaultPlan(gray_nodes=[GrayNode(mn_id=primary_mn, factor=8.0,
                                           start_us=0.0, end_us=1e9)],
                      seed=7),
            retry=RetryPolicy(max_attempts=4, verb_timeout_us=4.0,
                              rpc_timeout_us=8.0, backoff_base_us=1.0,
                              backoff_cap_us=8.0))
        before = cluster.master.splits_performed

        env.set_scheduler(sched)
        p1 = env.process(cluster.master.expand_subtable(0), name="expand")
        p2 = env.process(c1.update(keys[0], b"mid-split"), name="update")
        p3 = env.process(c2.search(keys[1]), name="search")
        env.run(until=env.all_of([p1, p2, p3]))
        if not (p1.triggered and p2.triggered and p3.triggered):
            return "expansion or a client op hung on the gray primary"
        if cluster.master.splits_performed != before + 1:
            return "the index split never committed"
        cluster.clear_faults()

        # Epilogue: every preloaded key must have survived the rehash
        # (scheduler still installed: hook-aware).
        for key in keys:
            cluster.run_op(c2.search(key), fast=False)
        violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
        return str(violation) if violation is not None else None

    return scenario


def make_cluster_swarm_race() -> Scenario:
    """A SWARM-replicated cluster: concurrent UPDATEs racing a SEARCH.

    The full client stack (index walk, cache, allocator, embedded log)
    running on the ``swarm`` strategy: two clients update one key while
    a third searches it, followed by a sequential search epilogue.  The
    whole span history must be KV-linearizable — the cluster-level
    proof that the 1-RTT broadcast write plugs into FUSEE's seams
    without reordering anybody's view of the key.
    """

    def scenario(sched: ControlledScheduler) -> Optional[str]:
        import dataclasses
        env = Environment()
        tracer = LogicalClockTracer(sched.logical_clock, env=env)
        config = dataclasses.replace(
            _small_cluster_config(),
            client=ClientConfig(replication_mode="swarm"))
        cluster = FuseeCluster(config, env=env, tracer=tracer)
        c1, c2, c3 = (cluster.new_client() for _ in range(3))
        key = b"swarm-key"
        cluster.run_op(c1.insert(key, b"old-value"))

        env.set_scheduler(sched)
        p1 = env.process(c1.update(key, b"new-value-1"), name="update-1")
        p2 = env.process(c2.update(key, b"new-value-2"), name="update-2")
        p3 = env.process(c3.search(key), name="search")
        env.run(until=env.all_of([p1, p2, p3]))

        # Epilogue on the quiesced cluster (scheduler still installed):
        # the final value must be one the history can explain.
        cluster.run_op(c3.search(key), fast=False)
        violation = check_kv_linearizable(kv_ops_from_spans(tracer.spans))
        return str(violation) if violation is not None else None

    return scenario


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "slot-write-race": make_slot_write_race,
    "slot-write-race-lossy": make_slot_write_race_lossy,
    "slot-crash-read": make_slot_crash_read,
    "swarm-write-race": make_swarm_write_race,
    "swarm-crash-read": make_swarm_crash_read,
    "swarm-write-chain": make_swarm_write_chain,
    "cluster-insert-race": make_cluster_insert_race,
    "cluster-insert-delete-race": make_cluster_insert_delete_race,
    "cluster-update-invalidate": make_cluster_update_invalidate,
    "cluster-partition-heal": make_cluster_partition_heal,
    "cluster-swarm-race": make_cluster_swarm_race,
    "cluster-gray-expansion": make_cluster_gray_expansion,
}
