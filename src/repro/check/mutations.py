"""Known-bad protocol mutations, for validating the schedule explorer.

Each mutation is a context manager that monkey-patches one protocol
decision the FUSEE papers argue is load-bearing.  The harness
(``tests/test_check.py``, ``python -m repro check``) asserts that the
explorer finds a violating schedule for every mutation within its
documented budget — i.e. that the checker would actually catch these
bugs — and that the unmutated protocol survives the same exploration.

``snapshot_write`` is bound by name in :mod:`repro.core.client` at import
time, so mutations that replace it patch *both* modules; scenarios call
it via the module attribute (``snapshot_mod.snapshot_write``) so slot
workloads see the patch too.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict

from ..core import client as client_mod
from ..core import replication as replication_mod
from ..core import snapshot as snapshot_mod
from ..core.snapshot import Outcome, ReadResult, RuleDecision, WriteResult
from ..core.wire import OP_DELETE, unpack_slot
from ..rdma import FAIL, CasOp, ReadOp, WriteOp

__all__ = ["MUTATIONS", "MUTATION_SPECS", "MutationSpec"]


@dataclass(frozen=True)
class MutationSpec:
    """Where and how hard to look for a mutation's violating schedule.

    ``max_schedules`` is the *documented budget*: the explorer must find
    a violation within this many schedules of ``scenario`` (enforced by
    ``tests/test_check.py``), and the unmutated protocol must survive
    the same exploration clean.
    """

    name: str
    scenario: str            # key into repro.check.scenarios.SCENARIOS
    max_schedules: int
    max_decisions: int
    description: str


# --------------------------------------------------------------------------
# skip-cas-recheck — Algorithm 2 without re-checking CAS results
# --------------------------------------------------------------------------

@contextmanager
def skip_cas_recheck():
    """Writers no longer re-check that the unanimous/majority value in
    ``v_list`` is *their own* before declaring victory.

    Every conflicting writer then decides it is the last writer: all of
    them run the winner path (fix-up + primary CAS), and since the
    winner path trusts the conflict resolution and does not re-validate
    its primary CAS, two writers report WIN for one round and the
    replicas diverge.
    """
    original = snapshot_mod.evaluate_rules

    def mutated(v_list, v_new, check_value=None, v_old=None):
        if any(v is FAIL for v in v_list):
            return RuleDecision.FAIL
        counts = Counter(v_list)
        _v_maj, cnt = counts.most_common(1)[0]
        if cnt == len(v_list):
            return RuleDecision.RULE1   # BUG: never compares v_maj to v_new
        if 2 * cnt > len(v_list):
            return RuleDecision.RULE2   # BUG: same
        return original(v_list, v_new, check_value=check_value, v_old=v_old)

    snapshot_mod.evaluate_rules = mutated
    try:
        yield
    finally:
        snapshot_mod.evaluate_rules = original


# --------------------------------------------------------------------------
# reorder-replica-writes — primary committed before the backups
# --------------------------------------------------------------------------

def _primary_first_write(fabric, ref, v_old: int, v_new: int, on_win=None,
                         retry_sleep_us: float = 2.0,
                         max_wait_rounds: int = 10_000, phase_guard=None):
    """A plausible-looking but wrong replication order: CAS the primary
    first, then broadcast to the backups.

    Between the two phases the new value is visible on the primary while
    the backups still hold the old one — a reader that completes a
    primary read and then (after the primary fails) falls back to the
    backups observes new-then-old, which no register linearization
    admits.
    """
    if v_old == v_new:
        raise ValueError("out-of-place modification guarantees v_old != v_new")
    primary_mn, primary_addr = ref.primary()
    comp = yield fabric.post_one(CasOp(primary_mn, primary_addr,
                                       expected=v_old, swap=v_new))
    rtts = 1
    if comp.failed:
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    if not comp.cas_succeeded():
        return WriteResult(Outcome.LOSE, v_old, v_new, comp.value, rtts)
    if on_win is not None:
        yield from on_win(v_old)
        rtts += 1
    backups = ref.backups()
    if backups:
        comps = yield fabric.post([CasOp(mn, addr, expected=v_old,
                                         swap=v_new)
                                   for mn, addr in backups])
        rtts += 1
        if any(c.failed for c in comps):
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    return WriteResult(Outcome.WIN_RULE1, v_old, v_new, v_new, rtts)


@contextmanager
def reorder_replica_writes():
    originals = (snapshot_mod.snapshot_write, client_mod.snapshot_write)
    snapshot_mod.snapshot_write = _primary_first_write
    client_mod.snapshot_write = _primary_first_write
    try:
        yield
    finally:
        snapshot_mod.snapshot_write, client_mod.snapshot_write = originals


# --------------------------------------------------------------------------
# drop-invalidation-write — winner skips marking the displaced object
# --------------------------------------------------------------------------

@contextmanager
def drop_invalidation_write():
    """The winning writer frees the displaced object but never writes its
    invalidation flag (§4.6), so clients with a stale cached pointer can
    keep validating the dead value forever."""
    original = client_mod.FuseeClient._after_win

    def mutated(self, key, meta, ref, v_old, v_new, opcode):
        if v_old != 0:
            self.allocator.note_free(unpack_slot(v_old).pointer)
        if opcode == OP_DELETE:
            self.cache.drop(key)
        else:
            self.cache.store(key, ref, v_new)

    client_mod.FuseeClient._after_win = mutated
    try:
        yield
    finally:
        client_mod.FuseeClient._after_win = original


# --------------------------------------------------------------------------
# insert-skip-conflict-recheck — lost insert CAS treated as a foreign key
# --------------------------------------------------------------------------

@contextmanager
def insert_skip_conflict_recheck():
    """An inserter trusts its empty-slot CAS win unconditionally.

    The insert path has two independent duplicate defenses: the
    CAS-conflict recheck (a loser reads the winner's KV block before
    moving to the next empty slot) and the post-install dedup sweep
    (RACE's bucket re-read, catching two winners in *different* slots).
    Each masks the other's absence in the common interleavings, so this
    mutation strips both — modelling an insert path with no duplicate
    detection at all, which double-inserts the key."""
    original_recheck = client_mod.FuseeClient._insert_conflict_recheck
    original_dedup = client_mod.FuseeClient._insert_dedup

    def mutated_recheck(self, key, meta, committed):
        return False
        yield  # pragma: no cover — keeps this a generator like the original

    def mutated_dedup(self, key, meta, ref, prepared):
        return True
        yield  # pragma: no cover — keeps this a generator like the original

    client_mod.FuseeClient._insert_conflict_recheck = mutated_recheck
    client_mod.FuseeClient._insert_dedup = mutated_dedup
    try:
        yield
    finally:
        client_mod.FuseeClient._insert_conflict_recheck = original_recheck
        client_mod.FuseeClient._insert_dedup = original_dedup


# --------------------------------------------------------------------------
# insert-skip-dedup-sweep — winner skips the post-install duplicate re-read
# --------------------------------------------------------------------------

@contextmanager
def insert_skip_dedup_sweep():
    """A winning inserter skips RACE's post-install bucket re-read.

    The CAS-conflict recheck only fires when two inserters collide on the
    *same* empty slot.  When a concurrent mutation (a DELETE freeing a
    slot in a candidate bucket) shifts the bucket view between their
    reads, the two inserters pick *different* empty slots, both CASes
    succeed, and only the post-install sweep can notice the duplicate —
    skipping it yields two ok=True inserts of one key."""
    original = client_mod.FuseeClient._insert_dedup

    def mutated(self, key, meta, ref, prepared):
        return True
        yield  # pragma: no cover — keeps this a generator like the original

    client_mod.FuseeClient._insert_dedup = mutated
    try:
        yield
    finally:
        client_mod.FuseeClient._insert_dedup = original


# --------------------------------------------------------------------------
# swarm-skip-ts-validation — local reads without the timestamp check
# --------------------------------------------------------------------------

def _unvalidated_swarm_read(fabric, ref, rotation=0,
                            max_validate_rounds=4):
    """A SWARM read that trusts whatever its local replica holds.

    Without comparing the local word to the primary's timestamp, a
    reader pinned to a backup hands out whatever the backup happens to
    hold — including a conflicting writer's *uncommitted* debris that
    never reached the primary and that the validated read would have
    rejected.  A returned value no write in the history ever committed
    is non-linearizable by construction.
    """
    locations = ref.locations()
    backups = [loc for loc in locations[1:]
               if not fabric.node(loc[0]).crashed] or \
        [loc for loc in locations if not fabric.node(loc[0]).crashed]
    if not backups:
        return ReadResult(value=None, from_backups=False, rtts=0)
    now = fabric.env.now
    chosen = min(
        enumerate(backups),
        key=lambda pair: (fabric.node(pair[1][0]).tx_backlog(now),
                          (pair[0] + rotation) % len(backups)))[1]
    comp = yield fabric.post_one(ReadOp(chosen[0], chosen[1], 8))
    if comp.failed:
        return ReadResult(value=None, from_backups=True, rtts=1)
    return ReadResult(value=int.from_bytes(comp.value, "big"),
                      from_backups=chosen != locations[0], rtts=1,
                      validated=True)  # BUG: claimed, never checked


@contextmanager
def swarm_skip_ts_validation():
    original = replication_mod.swarm_read
    replication_mod.swarm_read = _unvalidated_swarm_read
    try:
        yield
    finally:
        replication_mod.swarm_read = original


# --------------------------------------------------------------------------
# swarm-early-ack — WIN acknowledged before every replica is written
# --------------------------------------------------------------------------

def _early_ack_swarm_write(fabric, ref, v_old, v_new, on_win=None,
                           retry_sleep_us=2.0, max_fixup_rounds=8,
                           phase_guard=None):
    """A SWARM write that commits at the primary and hands the backup
    CASes to a detached replicator: 'the broadcast is in flight, that's
    as good as done'.

    It is not: the write is acknowledged while every backup may still
    hold the old value, so a primary crash strands the acked value —
    the survivors unanimously report the *previous* round, which the
    completed write forbids.
    """
    if v_old == v_new:
        raise ValueError("out-of-place modification guarantees v_old != v_new")
    locations = ref.locations()
    primary_mn, primary_addr = locations[0]
    comp = yield fabric.post_one(CasOp(primary_mn, primary_addr,
                                       expected=v_old, swap=v_new))
    rtts = 1
    if comp.failed:
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    if not comp.cas_succeeded():
        return WriteResult(Outcome.LOSE, v_old, v_new, comp.value, rtts)
    if len(locations) > 1:
        def _replicate_later():
            yield fabric.post([CasOp(mn, addr, expected=v_old, swap=v_new)
                               for mn, addr in locations[1:]],
                              unsignaled=True)

        # Fire-and-forget: the ack below does not wait for this process.
        fabric.env.process(_replicate_later(), name="early-ack-replicator")
    if on_win is not None:
        yield from on_win(v_old)
        rtts += 1
    return WriteResult(Outcome.WIN_SWARM, v_old, v_new, v_new, rtts)


@contextmanager
def swarm_early_ack():
    original = replication_mod.swarm_write
    replication_mod.swarm_write = _early_ack_swarm_write
    try:
        yield
    finally:
        replication_mod.swarm_write = original


# --------------------------------------------------------------------------
# swarm-nonmonotonic-fixup — convergence by blind write, not guarded CAS
# --------------------------------------------------------------------------

def _blind_fixup_swarm_write(fabric, ref, v_old, v_new, on_win=None,
                             retry_sleep_us=2.0, max_fixup_rounds=8,
                             phase_guard=None):
    """A SWARM write whose fixup overwrites divergent backups with a
    plain RDMA_WRITE instead of the timestamp-guarded CAS.

    The blind write cannot lose to a later round, so a delayed fixup
    re-installs its stale value over a newer committed round's — the
    replicas diverge at quiescence and chained readers see time move
    backwards.
    """
    if v_old == v_new:
        raise ValueError("out-of-place modification guarantees v_old != v_new")
    locations = ref.locations()
    if phase_guard is not None:
        yield from phase_guard()
    fabric.trace_phase("repl.swarm_broadcast")
    comps = yield fabric.post([CasOp(mn, addr, expected=v_old, swap=v_new)
                               for mn, addr in locations])
    rtts = 1
    if any(c.failed for c in comps):
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    if not comps[0].cas_succeeded():
        return WriteResult(Outcome.LOSE, v_old, v_new, comps[0].value, rtts)
    divergent = [loc for loc, comp in zip(locations[1:], comps[1:])
                 if not comp.cas_succeeded()]
    outcome = Outcome.WIN_SWARM_FIXUP if divergent else Outcome.WIN_SWARM
    if divergent:
        fabric.trace_phase("repl.swarm_fixup")
        fix_comps = yield fabric.post(
            [WriteOp(mn, addr, v_new.to_bytes(8, "big"))
             for mn, addr in divergent])  # BUG: unguarded overwrite
        rtts += 1
        if any(c.failed for c in fix_comps):
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    if on_win is not None:
        yield from on_win(v_old)
        rtts += 1
    return WriteResult(outcome, v_old, v_new, v_new, rtts)


@contextmanager
def swarm_nonmonotonic_fixup():
    original = replication_mod.swarm_write
    replication_mod.swarm_write = _blind_fixup_swarm_write
    try:
        yield
    finally:
        replication_mod.swarm_write = original


# --------------------------------------------------------------------------
# Registry + documented detection budgets
# --------------------------------------------------------------------------

MUTATIONS: Dict[str, Callable] = {
    "skip-cas-recheck": skip_cas_recheck,
    "reorder-replica-writes": reorder_replica_writes,
    "drop-invalidation-write": drop_invalidation_write,
    "insert-skip-conflict-recheck": insert_skip_conflict_recheck,
    "insert-skip-dedup-sweep": insert_skip_dedup_sweep,
    "swarm-skip-ts-validation": swarm_skip_ts_validation,
    "swarm-early-ack": swarm_early_ack,
    "swarm-nonmonotonic-fixup": swarm_nonmonotonic_fixup,
}

MUTATION_SPECS: Dict[str, MutationSpec] = {
    "skip-cas-recheck": MutationSpec(
        name="skip-cas-recheck",
        scenario="slot-write-race",
        max_schedules=256,
        max_decisions=24,
        description="writers claim victory without re-checking whose "
                    "value the backup CASes installed",
    ),
    "reorder-replica-writes": MutationSpec(
        name="reorder-replica-writes",
        scenario="slot-crash-read",
        max_schedules=256,
        max_decisions=24,
        description="primary replica committed before the backups",
    ),
    "drop-invalidation-write": MutationSpec(
        name="drop-invalidation-write",
        scenario="cluster-update-invalidate",
        max_schedules=64,
        max_decisions=24,
        description="winner never marks the displaced object invalid",
    ),
    "insert-skip-conflict-recheck": MutationSpec(
        name="insert-skip-conflict-recheck",
        scenario="cluster-insert-race",
        max_schedules=256,
        max_decisions=32,
        description="losing inserter assumes the slot went to a foreign "
                    "key and double-inserts",
    ),
    "insert-skip-dedup-sweep": MutationSpec(
        name="insert-skip-dedup-sweep",
        scenario="cluster-insert-delete-race",
        max_schedules=16384,   # catch ~330; clean exhausts ~9.8k (complete)
        max_decisions=40,
        description="winning inserter skips the post-install bucket "
                    "re-read, missing a duplicate in a different slot",
    ),
    "swarm-skip-ts-validation": MutationSpec(
        name="swarm-skip-ts-validation",
        scenario="swarm-write-race",
        max_schedules=32768,   # catch ~3.2k; clean exhausts ~25.4k
        max_decisions=24,
        description="swarm readers return the local replica's word "
                    "without validating the primary timestamp",
    ),
    "swarm-early-ack": MutationSpec(
        name="swarm-early-ack",
        scenario="swarm-crash-read",
        max_schedules=1024,    # catch ~16; clean exhausts ~150
        max_decisions=24,
        description="swarm writer acks after the primary CAS with the "
                    "backup broadcast still in flight",
    ),
    "swarm-nonmonotonic-fixup": MutationSpec(
        name="swarm-nonmonotonic-fixup",
        scenario="swarm-write-chain",
        max_schedules=2048,    # catch ~260; clean exhausts ~380
        max_decisions=32,
        description="swarm fixup blindly overwrites divergent backups, "
                    "re-installing a stale round over a newer one",
    ),
}
