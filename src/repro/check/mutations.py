"""Known-bad protocol mutations, for validating the schedule explorer.

Each mutation is a context manager that monkey-patches one protocol
decision the FUSEE papers argue is load-bearing.  The harness
(``tests/test_check.py``, ``python -m repro check``) asserts that the
explorer finds a violating schedule for every mutation within its
documented budget — i.e. that the checker would actually catch these
bugs — and that the unmutated protocol survives the same exploration.

``snapshot_write`` is bound by name in :mod:`repro.core.client` at import
time, so mutations that replace it patch *both* modules; scenarios call
it via the module attribute (``snapshot_mod.snapshot_write``) so slot
workloads see the patch too.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict

from ..core import client as client_mod
from ..core import snapshot as snapshot_mod
from ..core.snapshot import Outcome, RuleDecision, WriteResult
from ..core.wire import OP_DELETE, unpack_slot
from ..rdma import FAIL, CasOp

__all__ = ["MUTATIONS", "MUTATION_SPECS", "MutationSpec"]


@dataclass(frozen=True)
class MutationSpec:
    """Where and how hard to look for a mutation's violating schedule.

    ``max_schedules`` is the *documented budget*: the explorer must find
    a violation within this many schedules of ``scenario`` (enforced by
    ``tests/test_check.py``), and the unmutated protocol must survive
    the same exploration clean.
    """

    name: str
    scenario: str            # key into repro.check.scenarios.SCENARIOS
    max_schedules: int
    max_decisions: int
    description: str


# --------------------------------------------------------------------------
# skip-cas-recheck — Algorithm 2 without re-checking CAS results
# --------------------------------------------------------------------------

@contextmanager
def skip_cas_recheck():
    """Writers no longer re-check that the unanimous/majority value in
    ``v_list`` is *their own* before declaring victory.

    Every conflicting writer then decides it is the last writer: all of
    them run the winner path (fix-up + primary CAS), and since the
    winner path trusts the conflict resolution and does not re-validate
    its primary CAS, two writers report WIN for one round and the
    replicas diverge.
    """
    original = snapshot_mod.evaluate_rules

    def mutated(v_list, v_new, check_value=None, v_old=None):
        if any(v is FAIL for v in v_list):
            return RuleDecision.FAIL
        counts = Counter(v_list)
        _v_maj, cnt = counts.most_common(1)[0]
        if cnt == len(v_list):
            return RuleDecision.RULE1   # BUG: never compares v_maj to v_new
        if 2 * cnt > len(v_list):
            return RuleDecision.RULE2   # BUG: same
        return original(v_list, v_new, check_value=check_value, v_old=v_old)

    snapshot_mod.evaluate_rules = mutated
    try:
        yield
    finally:
        snapshot_mod.evaluate_rules = original


# --------------------------------------------------------------------------
# reorder-replica-writes — primary committed before the backups
# --------------------------------------------------------------------------

def _primary_first_write(fabric, ref, v_old: int, v_new: int, on_win=None,
                         retry_sleep_us: float = 2.0,
                         max_wait_rounds: int = 10_000, phase_guard=None):
    """A plausible-looking but wrong replication order: CAS the primary
    first, then broadcast to the backups.

    Between the two phases the new value is visible on the primary while
    the backups still hold the old one — a reader that completes a
    primary read and then (after the primary fails) falls back to the
    backups observes new-then-old, which no register linearization
    admits.
    """
    if v_old == v_new:
        raise ValueError("out-of-place modification guarantees v_old != v_new")
    primary_mn, primary_addr = ref.primary()
    comp = yield fabric.post_one(CasOp(primary_mn, primary_addr,
                                       expected=v_old, swap=v_new))
    rtts = 1
    if comp.failed:
        return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    if not comp.cas_succeeded():
        return WriteResult(Outcome.LOSE, v_old, v_new, comp.value, rtts)
    if on_win is not None:
        yield from on_win(v_old)
        rtts += 1
    backups = ref.backups()
    if backups:
        comps = yield fabric.post([CasOp(mn, addr, expected=v_old,
                                         swap=v_new)
                                   for mn, addr in backups])
        rtts += 1
        if any(c.failed for c in comps):
            return WriteResult(Outcome.NEED_MASTER, v_old, v_new, None, rtts)
    return WriteResult(Outcome.WIN_RULE1, v_old, v_new, v_new, rtts)


@contextmanager
def reorder_replica_writes():
    originals = (snapshot_mod.snapshot_write, client_mod.snapshot_write)
    snapshot_mod.snapshot_write = _primary_first_write
    client_mod.snapshot_write = _primary_first_write
    try:
        yield
    finally:
        snapshot_mod.snapshot_write, client_mod.snapshot_write = originals


# --------------------------------------------------------------------------
# drop-invalidation-write — winner skips marking the displaced object
# --------------------------------------------------------------------------

@contextmanager
def drop_invalidation_write():
    """The winning writer frees the displaced object but never writes its
    invalidation flag (§4.6), so clients with a stale cached pointer can
    keep validating the dead value forever."""
    original = client_mod.FuseeClient._after_win

    def mutated(self, key, meta, ref, v_old, v_new, opcode):
        if v_old != 0:
            self.allocator.note_free(unpack_slot(v_old).pointer)
        if opcode == OP_DELETE:
            self.cache.drop(key)
        else:
            self.cache.store(key, ref, v_new)

    client_mod.FuseeClient._after_win = mutated
    try:
        yield
    finally:
        client_mod.FuseeClient._after_win = original


# --------------------------------------------------------------------------
# insert-skip-conflict-recheck — lost insert CAS treated as a foreign key
# --------------------------------------------------------------------------

@contextmanager
def insert_skip_conflict_recheck():
    """A losing inserter no longer reads the winner's KV block to check
    whether the same key was inserted; it assumes a foreign key and moves
    to the next empty slot, double-inserting the key."""
    original = client_mod.FuseeClient._insert_conflict_recheck

    def mutated(self, key, meta, committed):
        return False
        yield  # pragma: no cover — keeps this a generator like the original

    client_mod.FuseeClient._insert_conflict_recheck = mutated
    try:
        yield
    finally:
        client_mod.FuseeClient._insert_conflict_recheck = original


# --------------------------------------------------------------------------
# Registry + documented detection budgets
# --------------------------------------------------------------------------

MUTATIONS: Dict[str, Callable] = {
    "skip-cas-recheck": skip_cas_recheck,
    "reorder-replica-writes": reorder_replica_writes,
    "drop-invalidation-write": drop_invalidation_write,
    "insert-skip-conflict-recheck": insert_skip_conflict_recheck,
}

MUTATION_SPECS: Dict[str, MutationSpec] = {
    "skip-cas-recheck": MutationSpec(
        name="skip-cas-recheck",
        scenario="slot-write-race",
        max_schedules=256,
        max_decisions=24,
        description="writers claim victory without re-checking whose "
                    "value the backup CASes installed",
    ),
    "reorder-replica-writes": MutationSpec(
        name="reorder-replica-writes",
        scenario="slot-crash-read",
        max_schedules=256,
        max_decisions=24,
        description="primary replica committed before the backups",
    ),
    "drop-invalidation-write": MutationSpec(
        name="drop-invalidation-write",
        scenario="cluster-update-invalidate",
        max_schedules=64,
        max_decisions=24,
        description="winner never marks the displaced object invalid",
    ),
    "insert-skip-conflict-recheck": MutationSpec(
        name="insert-skip-conflict-recheck",
        scenario="cluster-insert-race",
        max_schedules=256,
        max_decisions=32,
        description="losing inserter assumes the slot went to a foreign "
                    "key and double-inserts",
    ),
}
