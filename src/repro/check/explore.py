"""Systematic schedule exploration with sleep-set (DPOR-lite) reduction.

The explorer enumerates interleavings of a *scenario* — a callable that
builds a fresh simulated world, installs the :class:`ControlledScheduler`
it is handed, runs the workload, checks its invariants, and returns
``None`` (clean) or a violation message.  Exploration is a depth-first
search over decision-sequence prefixes:

1. Run the scenario with prefix ``P`` (decisions beyond ``P`` default to
   the lowest awake candidate, the kernel's canonical order), recording
   the full trace, every branch point's candidates, and per-event
   footprints.
2. For every branch point at depth ``i >= len(P)`` (shallower points are
   someone else's subtree — expanding them here would enumerate the same
   schedule many times), push ``P' = trace[:i] + [j]`` for each awake
   alternative ``j``.
3. Repeat until the frontier drains or the schedule budget is spent.

**Sleep sets (DPOR-lite).**  Naive expansion re-explores equivalent
interleavings factorially.  Instead of *pruning* alternatives — any local
pruning rule discards subtrees containing orderings of the alternative's
causal successors, which is unsound — each child carries *sleep entries*
for its already-covered siblings: the sibling stays schedulable in the
child's run but cannot be chosen until some dispatched event's footprint
(memory words, RPC endpoints, crash flags) conflicts with it.  While it
sleeps, running it early commutes with everything that has run, so the
child would only re-create schedules its sibling's subtree already
covers; a conflict wakes it and the genuinely new orderings are explored.
Runs in which every co-runnable event sleeps abort as *redundant*.  This
is the classical sleep-set algorithm (Godefroid) with dynamically
recorded footprints as the independence relation.

Depth-bounded exploration is *exhaustive up to the bound*: every
inequivalent schedule whose branch decisions fit within ``max_decisions``
is visited (unless ``max_schedules`` truncates the run — reported via
``ExploreResult.complete``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .scheduler import (ControlledScheduler, RedundantSchedule,
                        ScheduleBudgetExceeded, SleepEntry)

__all__ = ["ScheduleExplorer", "ExploreResult", "explore"]

Scenario = Callable[[ControlledScheduler], Optional[str]]


@dataclass
class ExploreResult:
    """Outcome of one exploration."""

    schedules: int = 0                 # scenario runs executed
    redundant: int = 0                 # runs aborted as sleep-set-redundant
    aborted: int = 0                   # runs that blew the step budget
    violation: Optional[str] = None
    violating_decisions: Optional[List[int]] = None
    complete: bool = False             # frontier drained, nothing truncated
    max_branch_depth: int = 0          # deepest branch point seen

    @property
    def found(self) -> bool:
        return self.violation is not None

    def summary(self) -> str:
        status = ("VIOLATION" if self.found else
                  ("exhausted" if self.complete else "budget reached"))
        return (f"{status}: {self.schedules} schedules run, "
                f"{self.redundant} redundant, {self.aborted} aborted")


class ScheduleExplorer:
    """Depth-first exploration of a scenario's schedule space."""

    def __init__(self, scenario: Scenario, *,
                 max_schedules: int = 2_000,
                 max_decisions: int = 40,
                 max_steps: int = 50_000,
                 dpor: bool = True,
                 stop_on_violation: bool = True):
        self.scenario = scenario
        self.max_schedules = max_schedules
        self.max_decisions = max_decisions
        self.max_steps = max_steps
        self.dpor = dpor
        self.stop_on_violation = stop_on_violation

    # ----------------------------------------------------------------- run
    def run_one(self, decisions: List[int],
                sleep: Optional[Sequence[SleepEntry]] = None
                ) -> tuple[ControlledScheduler, Optional[str], bool, bool]:
        """Run the scenario once under ``decisions`` (+ sleep entries).

        Returns ``(scheduler, violation, aborted, redundant)``.
        """
        sched = ControlledScheduler(decisions=decisions,
                                    max_steps=self.max_steps,
                                    sleep=sleep)
        try:
            violation = self.scenario(sched)
        except ScheduleBudgetExceeded:
            return sched, None, True, False
        except RedundantSchedule:
            return sched, None, False, True
        return sched, violation, False, False

    def explore(self) -> ExploreResult:
        result = ExploreResult(complete=True)
        # Stack of (prefix, sleep entries) still to expand; seeded with the
        # canonical run (empty prefix, nothing asleep).
        frontier: List[tuple[List[int], List[SleepEntry]]] = [([], [])]
        while frontier:
            if result.schedules >= self.max_schedules:
                result.complete = False
                break
            prefix, sleep = frontier.pop()
            sched, violation, aborted, redundant = self.run_one(prefix, sleep)
            result.schedules += 1
            if sched.branch_counts:
                result.max_branch_depth = max(result.max_branch_depth,
                                              len(sched.branch_counts))
            if aborted:
                result.aborted += 1
            if redundant:
                result.redundant += 1
                continue   # covered by a sibling subtree: nothing to expand
            if violation is not None and result.violation is None:
                result.violation = violation
                result.violating_decisions = list(sched.trace)
                if self.stop_on_violation:
                    result.complete = False
                    return result
            self._expand(sched, prefix, sleep, aborted, frontier, result)
        if frontier:
            result.complete = False
        return result

    # -------------------------------------------------------------- expand
    def _expand(self, sched: ControlledScheduler, prefix: List[int],
                sleep: List[SleepEntry], aborted: bool,
                frontier: List[tuple[List[int], List[SleepEntry]]],
                result: ExploreResult) -> None:
        depth_cap = min(len(sched.trace), self.max_decisions)
        if len(sched.trace) > self.max_decisions:
            # Branch points beyond the bound exist but won't be expanded.
            result.complete = False
        for bp in sched.branches:
            i = bp.index
            if i < len(prefix) or i >= depth_cap:
                continue
            # Sleeping candidates are covered by subtrees already on (or
            # through) the frontier; expanding them would double-count.
            siblings = [j for j in range(bp.n)
                        if j != bp.chosen and j not in bp.sleeping]
            # Each child puts the branch's already-covered choices to
            # sleep: the baseline's pick, plus every sibling enumerated
            # before it.  A sibling whose footprint is unknown (it never
            # ran before the scenario ended) cannot be slept soundly and
            # is simply left out — later children may re-explore it.
            covered: List[SleepEntry] = []
            if not aborted:
                fp_chosen = sched.footprint_of(bp.events[bp.chosen])
                if fp_chosen is not None:
                    covered.append((i, bp.chosen, fp_chosen))
            for j in siblings:
                child_sleep = sleep + covered if self.dpor else []
                frontier.append((sched.trace[:i] + [j], child_sleep))
                if not aborted:
                    fp_j = sched.footprint_of(bp.events[j])
                    if fp_j is not None:
                        covered.append((i, j, fp_j))


def explore(scenario: Scenario, **kwargs) -> ExploreResult:
    """Convenience wrapper: ``ScheduleExplorer(scenario, **kwargs).explore()``."""
    return ScheduleExplorer(scenario, **kwargs).explore()
