"""Delta-debugging minimizer for failing decision sequences.

A violating schedule found by the explorer is typically dozens of
decisions long, most of them incidental.  :func:`minimize_schedule`
shrinks it to a locally minimal reproducer with a ddmin-style loop over
two reduction moves, re-running the scenario after each candidate edit
and keeping only edits that still fail:

* **truncate** — drop a suffix of the sequence (replay pads missing
  decisions with the default index 0, so every prefix is a complete
  schedule);
* **zero** — reset a chunk of decisions to 0, i.e. revert those branch
  points to the kernel's canonical order.

The result is 1-minimal: no single remaining non-zero decision can be
zeroed, and no shorter prefix still fails.  :func:`format_repro` renders
the minimized schedule as a copy-pasteable pytest snippet that replays it
through the named scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .scheduler import ControlledScheduler, ScheduleBudgetExceeded

__all__ = ["MinimizeResult", "minimize_schedule", "format_repro"]

Scenario = Callable[[ControlledScheduler], Optional[str]]


@dataclass
class MinimizeResult:
    decisions: List[int]          # the minimal failing sequence
    violation: str                # the violation it still produces
    runs: int                     # scenario executions spent minimizing
    original_length: int

    def __str__(self) -> str:
        return (f"minimized {self.original_length} -> "
                f"{len(self.decisions)} decisions in {self.runs} runs: "
                f"{self.decisions}")


def _strip_zeros(decisions: List[int]) -> List[int]:
    """Trailing zeros are no-ops under replay (padding is 0)."""
    end = len(decisions)
    while end > 0 and decisions[end - 1] == 0:
        end -= 1
    return decisions[:end]


def minimize_schedule(scenario: Scenario, decisions: List[int], *,
                      max_steps: int = 50_000,
                      max_runs: int = 500) -> Optional[MinimizeResult]:
    """Shrink ``decisions`` to a minimal sequence that still violates.

    Returns ``None`` if the input sequence does not reproduce a violation
    (stale trace, nondeterministic scenario) — callers should treat that
    as a bug in the scenario, not in the minimizer.
    """
    runs = 0

    def fails(candidate: List[int]) -> Optional[str]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        sched = ControlledScheduler(decisions=candidate,
                                    max_steps=max_steps)
        try:
            return scenario(sched)
        except ScheduleBudgetExceeded:
            return None

    original = list(decisions)
    violation = fails(original)
    if violation is None:
        return None

    current = _strip_zeros(original)

    # Phase 1: binary-search the shortest failing prefix.
    lo, hi = 0, len(current)        # invariant: prefix of hi fails
    while lo < hi:
        mid = (lo + hi) // 2
        v = fails(current[:mid])
        if v is not None:
            hi = mid
            violation = v
        else:
            lo = mid + 1
    current = _strip_zeros(current[:hi])

    # Phase 2: ddmin on the non-zero entries — zero chunks, halving the
    # chunk size until single decisions; restart after any success.
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        shrunk = False
        i = 0
        while i < len(current):
            if all(d == 0 for d in current[i:i + chunk]):
                i += chunk
                continue
            candidate = current[:i] + [0] * len(current[i:i + chunk]) \
                + current[i + chunk:]
            v = fails(candidate)
            if v is not None:
                current = _strip_zeros(candidate)
                violation = v
                shrunk = True
            else:
                i += chunk
        if not shrunk:
            chunk //= 2

    return MinimizeResult(decisions=current, violation=violation,
                          runs=runs, original_length=len(decisions))


def format_repro(scenario_name: str, result: MinimizeResult,
                 mutation: Optional[str] = None) -> str:
    """Render a minimized schedule as a copy-pasteable pytest test."""
    test_name = scenario_name.replace("-", "_")
    lines = [
        "# Auto-generated reproducer — paste into a test file.",
        f"# Violation: {result.violation.splitlines()[0]}",
        "from repro.check import ControlledScheduler, SCENARIOS",
    ]
    if mutation:
        lines.append("from repro.check.mutations import MUTATIONS")
    lines += [
        "",
        "",
        f"def test_repro_{test_name}():",
        f"    scenario = SCENARIOS[{scenario_name!r}]()",
        f"    sched = ControlledScheduler(decisions={result.decisions!r})",
    ]
    if mutation:
        lines += [
            f"    with MUTATIONS[{mutation!r}]():",
            "        violation = scenario(sched)",
        ]
    else:
        lines.append("    violation = scenario(sched)")
    lines += [
        "    assert violation is not None, \"schedule no longer fails\"",
        "",
    ]
    return "\n".join(lines)
