"""The controlled scheduler: decision-driven event ordering for the DES.

The simulation kernel serializes every effect through
:meth:`repro.sim.Environment.step`.  When several queued events share the
minimum timestamp they are *co-runnable*: the kernel's default order
(priority, then insertion) is only one of ``k!`` valid serializations, and
protocol races live exactly in that choice.  A
:class:`ControlledScheduler` intercepts the choice:

* **Replay** — a recorded *decision sequence* (one small integer per
  branch point, indexing into the canonically ordered candidate list)
  reproduces a schedule exactly; decisions beyond the sequence fall back
  to the default policy, so any prefix is a complete schedule.  Decision
  indices always refer to the *raw* co-runnable group in heap order, so a
  sequence recorded during sleep-set exploration replays byte-identically
  on a plain scheduler with no sleep state.
* **Record** — every run records the full decision trace, the candidate
  counts, and per-event *footprints* (which shared state each event's
  callbacks touched: memory words, resources, RPC endpoints, crash
  flags), which the explorer's sleep-set reduction consumes.
* **Random** — with ``rng`` set, unconstrained decisions are drawn from a
  seeded RNG instead of the default, giving seed -> schedule fuzzing that
  is still perfectly replayable from the recorded trace.

**Sleep sets.**  The explorer passes ``sleep`` entries of the form
``(branch_index, candidate_index, footprint)``: when the run reaches that
branch, the named candidate is put to sleep — it stays in the queue and
keeps its timestamp, but cannot be chosen.  A sleeper wakes as soon as a
dispatched event's footprint *conflicts* with its own (recorded in the
run that spawned the entry); until then every schedule that runs it early
is Mazurkiewicz-equivalent to one that runs it late, which is exactly the
redundancy sleep sets remove.  If every co-runnable candidate is asleep
the whole continuation is redundant and the run aborts with
:class:`RedundantSchedule`.

The scheduler also maintains a **logical clock** (bumped on every query)
used to timestamp history events: at zero simulated latency every
protocol step happens at t=0, so wall-of-simulation time cannot order
invocations and completions — the step-serialization order can, and is
the true real-time order of the execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = ["ControlledScheduler", "BranchPoint", "Footprint", "SleepEntry",
           "ScheduleBudgetExceeded", "RedundantSchedule"]


class ScheduleBudgetExceeded(Exception):
    """Raised when a controlled run exceeds its step budget (an unfair or
    divergent schedule); the explorer abandons the branch."""


class RedundantSchedule(Exception):
    """Raised when every co-runnable event is asleep: each continuation of
    this schedule is equivalent to one in an already-scheduled subtree."""


@dataclass(frozen=True)
class Footprint:
    """Shared-state accesses performed while one event was dispatched."""

    reads: FrozenSet = frozenset()
    writes: FrozenSet = frozenset()

    def conflicts(self, other: "Footprint") -> bool:
        """Two footprints conflict iff they touch a common token and at
        least one side writes it (the classical dependency relation)."""
        if self.writes & other.writes:
            return True
        if self.writes & other.reads:
            return True
        return bool(self.reads & other.writes)

    def merge(self, other: "Footprint") -> "Footprint":
        return Footprint(self.reads | other.reads,
                         self.writes | other.writes)


EMPTY_FOOTPRINT = Footprint()

# (branch index, candidate index within that branch's raw group, footprint
# the candidate exhibited in the run that created the entry).
SleepEntry = Tuple[int, int, Footprint]


@dataclass
class BranchPoint:
    """One point where >1 event was co-runnable.

    ``position`` is the global step index at which the choice was made;
    ``events`` the candidates in canonical (heap) order; ``chosen`` the
    index actually dispatched; ``sleeping`` the candidate indices that
    were asleep when the choice was made (not eligible, not worth
    re-exploring — their subtrees are covered elsewhere).
    """

    index: int
    position: int
    events: List[object]
    chosen: int
    sleeping: FrozenSet[int] = frozenset()

    @property
    def n(self) -> int:
        return len(self.events)


class ControlledScheduler:
    """Drives :meth:`Environment.step` from a decision sequence.

    Install with ``env.set_scheduler(sched)`` *before* creating any
    process whose ordering matters.  One scheduler serves one run; build
    a fresh one (and a fresh world) per explored schedule.
    """

    def __init__(self, decisions: Optional[List[int]] = None,
                 rng=None, max_steps: int = 100_000,
                 sleep: Optional[Sequence[SleepEntry]] = None):
        self.env = None
        self.decisions = list(decisions or [])
        self.rng = rng
        self.max_steps = max_steps
        # -- sleep-set state ------------------------------------------------
        self._arm: Dict[int, List[Tuple[int, Footprint]]] = {}
        for bi, ci, fp in (sleep or []):
            self._arm.setdefault(bi, []).append((ci, fp))
        self._sleeping: Dict[object, Footprint] = {}   # event -> footprint
        # -- recorded trace -------------------------------------------------
        self.trace: List[int] = []        # chosen index per branch point
        self.branch_counts: List[int] = []
        self.branches: List[BranchPoint] = []
        self.steps = 0                    # events dispatched so far
        self.timeline: List[Footprint] = []   # per-step footprints
        self._order = {}                  # event -> step index
        self._footprints = {}             # event -> Footprint
        self._clock = 0
        self._cur_reads: set = set()
        self._cur_writes: set = set()

    # ------------------------------------------------------------- clock
    def logical_clock(self) -> int:
        """A strictly increasing logical timestamp.

        Each call returns a fresh value, so two queries from the same
        process step are still ordered (program order) — which makes
        histories recorded at zero simulated latency carry true
        real-time precedence.
        """
        self._clock += 1
        return self._clock

    # ------------------------------------------------------- kernel hooks
    def select(self, env) -> Tuple:
        """Pop and return the entry to dispatch next (kernel callback)."""
        queue = env._queue
        t_min = queue[0][0]
        group = [heapq.heappop(queue)]
        while queue and queue[0][0] == t_min:
            group.append(heapq.heappop(queue))
        if len(group) == 1:
            return group[0]
        branch_idx = len(self.trace)
        # Arm sleep entries addressed to this branch (candidate indices are
        # valid because replaying the same prefix rebuilds the same group).
        for ci, fp in self._arm.pop(branch_idx, []):
            if ci < len(group):
                self._sleeping[group[ci][2]] = fp
        sleeping_idx = frozenset(
            i for i, entry in enumerate(group) if entry[2] in self._sleeping)
        allowed = [i for i in range(len(group)) if i not in sleeping_idx]
        if not allowed:
            raise RedundantSchedule(
                f"all {len(group)} co-runnable events asleep at branch "
                f"{branch_idx}")
        chosen = self._choose(len(group), allowed)
        self.branches.append(BranchPoint(
            index=branch_idx, position=self.steps,
            events=[entry[2] for entry in group], chosen=chosen,
            sleeping=sleeping_idx))
        entry = group.pop(chosen)
        for other in group:
            heapq.heappush(queue, other)
        return entry

    def _choose(self, n: int, allowed: List[int]) -> int:
        at = len(self.trace)
        if at < len(self.decisions):
            # Clamp instead of raising: the minimizer perturbs sequences,
            # and a clamped decision is still a valid (default-ish) run.
            chosen = max(0, min(self.decisions[at], n - 1))
            if chosen not in allowed:
                chosen = allowed[0]
        elif self.rng is not None:
            chosen = self.rng.choice(allowed)
        else:
            chosen = allowed[0]
        self.trace.append(chosen)
        self.branch_counts.append(n)
        return chosen

    def begin_event(self, event) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise ScheduleBudgetExceeded(
                f"schedule exceeded {self.max_steps} steps")
        self._clock += 1
        self._cur_reads = set()
        self._cur_writes = set()

    def end_event(self, event) -> None:
        footprint = Footprint(frozenset(self._cur_reads),
                              frozenset(self._cur_writes))
        self._order[event] = len(self.timeline)
        self._footprints[event] = footprint
        self.timeline.append(footprint)
        if self._sleeping and (footprint.reads or footprint.writes):
            # A dependent step just ran: wake every sleeper it conflicts
            # with — delaying them past this point is no longer a no-op.
            woken = [ev for ev, fp in self._sleeping.items()
                     if footprint.conflicts(fp)]
            for ev in woken:
                del self._sleeping[ev]

    def note_access(self, token, write: bool) -> None:
        if write:
            self._cur_writes.add(token)
        else:
            self._cur_reads.add(token)

    # ------------------------------------------------------------ queries
    def footprint_of(self, event) -> Optional[Footprint]:
        return self._footprints.get(event)

    def position_of(self, event) -> Optional[int]:
        return self._order.get(event)

    def segment_footprint(self, start: int, stop: int) -> Footprint:
        """Union footprint of timeline[start:stop]."""
        merged = EMPTY_FOOTPRINT
        for fp in self.timeline[start:stop]:
            merged = merged.merge(fp)
        return merged
