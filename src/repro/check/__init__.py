"""Deterministic schedule exploration and concurrency checking.

The pieces (see docs/checking.md for the full story):

* :class:`ControlledScheduler` — drives the DES kernel's event choice
  from a recorded decision sequence (replay), a seeded RNG (fuzz), or
  the default policy, recording decisions + per-event footprints.
* :class:`ScheduleExplorer` — depth-bounded exhaustive exploration with
  DPOR-lite sleep-set pruning over the footprints.
* :func:`minimize_schedule` — delta-debugs a failing decision sequence
  to a minimal reproducer; :func:`format_repro` prints it as a test.
* :data:`SCENARIOS` — zero-latency slot- and cluster-level workloads
  with invariant + linearizability checks.
* :data:`MUTATIONS` — known-bad protocol mutations the explorer must
  catch within the budgets in :data:`MUTATION_SPECS`.
"""

from .explore import ExploreResult, ScheduleExplorer, explore
from .history import LogicalClockTracer, kv_ops_from_spans
from .minimize import MinimizeResult, format_repro, minimize_schedule
from .mutations import MUTATION_SPECS, MUTATIONS, MutationSpec
from .scenarios import SCENARIOS
from .scheduler import (BranchPoint, ControlledScheduler, Footprint,
                        RedundantSchedule, ScheduleBudgetExceeded)

__all__ = [
    "ControlledScheduler",
    "BranchPoint",
    "Footprint",
    "ScheduleBudgetExceeded",
    "RedundantSchedule",
    "ScheduleExplorer",
    "ExploreResult",
    "explore",
    "minimize_schedule",
    "MinimizeResult",
    "format_repro",
    "kv_ops_from_spans",
    "LogicalClockTracer",
    "SCENARIOS",
    "MUTATIONS",
    "MUTATION_SPECS",
    "MutationSpec",
]
