"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible paper artefact and its description.
``run <name> [...]``
    Regenerate one artefact (or ``all``) and print its table; optionally
    write tables to a directory.
``demo``
    A 30-second smoke demo of the store itself.
``ycsb``
    Drive a closed-loop YCSB workload against a FUSEE bed, optionally
    exporting a Chrome trace (``--trace``), a JSONL event log
    (``--jsonl``) and a metrics report (``--metrics``).
``profile``
    Run a profiled YCSB mix on any system bed (FUSEE, Clover, pDPM) and
    attribute where the simulated microseconds go: per-op queueing
    breakdowns, tail attribution, the critical path, folded flamegraph
    stacks (``--flame``) and a Chrome trace with resource counter tracks
    (``--trace``).  See docs/profiling.md.
``check``
    Systematic schedule exploration (see docs/checking.md): explore a
    scenario clean, verify a protocol mutation is caught, replay a
    recorded decision sequence, or (default) run the whole
    mutation-detection matrix.
``faults``
    Run a fault-injection campaign (see docs/faults.md): a scripted or
    seeded-random timeline of packet loss, duplication, partitions and
    gray nodes under a multi-client workload, with a fault/outcome
    report and linearizability verdict.
``monitor``
    Exercise the online telemetry plane (see docs/monitoring.md): run a
    monitored clean-bed YCSB workload (asserting the gray-failure
    detector raises zero flags) or a monitored fault campaign
    (``--campaign``, asserting every seeded gray/port fault is caught),
    printing the end-of-run health report either way.

Observability flags (``demo`` and ``ycsb``)
-------------------------------------------
``--trace out.json``   write a Chrome ``trace_event`` file — open it at
                       https://ui.perfetto.dev to see every KV operation
                       span and RDMA verb on the simulated timeline.
``--jsonl out.jsonl``  write one JSON record per span/batch (stable field
                       order; byte-identical across same-seed runs).
``--metrics``          print counters, latency histograms and NIC/CPU
                       utilisation series at the end of the run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .harness import ALL_EXPERIMENTS, Scale
from .harness.report import render


def _scale_from(name: str) -> Scale:
    presets = {"tiny": Scale.tiny, "bench": Scale.bench, "full": Scale.full,
               "production": Scale.production}
    if name not in presets:
        raise SystemExit(f"unknown scale {name!r}; pick from "
                         f"{sorted(presets)}")
    return presets[name]()


def cmd_list(_args) -> int:
    width = max(len(name) for name in ALL_EXPERIMENTS)
    for name, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<{width}}  {doc}")
    return 0


def cmd_run(args) -> int:
    names = list(ALL_EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    scale = _scale_from(args.scale)
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        result = ALL_EXPERIMENTS[name](scale)
        elapsed = time.time() - started
        print(render(result, args.format))
        print(f"[{elapsed:.1f}s wall]\n")
        if out_dir:
            ext = {"table": "txt", "csv": "csv", "md": "md",
                   "chart": "txt"}[args.format]
            (out_dir / f"{name}.{ext}").write_text(
                render(result, args.format) + "\n")
    return 0


def _export_obs(args, tracer, metrics) -> None:
    """Write/print whatever observability sinks the flags asked for."""
    from .harness.report import obs_report
    from .obs import write_chrome_trace, write_jsonl

    if tracer is not None and args.trace:
        write_chrome_trace(tracer, args.trace, metrics=metrics)
        print(f"chrome trace: {args.trace} ({len(tracer.spans)} spans; "
              f"open at https://ui.perfetto.dev)")
    if tracer is not None and args.jsonl:
        write_jsonl(tracer, args.jsonl)
        print(f"jsonl events: {args.jsonl}")
    if tracer is not None or metrics is not None:
        print()
        print(obs_report(tracer, metrics))


def cmd_demo(args) -> int:
    from . import ClusterConfig, FuseeCluster, FuseeKV

    tracer = metrics = None
    if args.trace or args.jsonl:
        from .obs import Tracer
        tracer = Tracer()
    cluster = FuseeCluster(ClusterConfig(n_memory_nodes=2,
                                         replication_factor=2),
                           tracer=tracer)
    if args.metrics:
        from .obs import Metrics, sample_fabric
        metrics = Metrics()
        sample_fabric(cluster.env, metrics, cluster.fabric, interval_us=5.0)
    kv = FuseeKV(cluster=cluster)
    kv.insert(b"demo", b"it works")
    print("insert/search:", kv.search(b"demo").decode())
    kv.update(b"demo", b"it still works")
    print("update/search:", kv.search(b"demo").decode())
    kv.delete(b"demo")
    print("after delete:", kv.search(b"demo"))
    stats = kv.cluster.fabric.stats
    print(f"verbs used: {stats.reads} reads, {stats.writes} writes, "
          f"{stats.atomics} atomics ({kv.now_us:.1f} simulated us)")
    _export_obs(args, tracer, metrics)
    return 0


def _resolve_scenario(args):
    """Resolve ``--scenario [--smoke]`` into a Scenario instance."""
    from .workloads import SMOKE_TRIM, get_scenario

    overrides = dict(SMOKE_TRIM) if getattr(args, "smoke", False) else {}
    return get_scenario(args.scenario, seed=args.seed, **overrides)


def _cmd_ycsb_scenario(args) -> int:
    """Paced open-loop run of a production traffic scenario."""
    from .harness.runner import run_open_loop
    from .harness.systems import fusee_bed
    from .obs import Metrics
    from .workloads import tenant_report

    scn = _resolve_scenario(args)
    monitor_config, slos = _monitor_setup(args)
    tracer = profiler = None
    if args.trace or args.jsonl or args.profile \
            or monitor_config is not None:
        from .obs import Tracer
        tracer = Tracer()
    bed = fusee_bed(n_memory_nodes=args.memory_nodes,
                    replication_factor=args.replicas,
                    dataset_bytes=max(args.keys * 1024, 1 << 21),
                    variant=args.variant,
                    read_spread=args.read_spread,
                    max_coalesce_width=args.coalesce_width,
                    nic_ports=args.nic_ports,
                    rpc_shards=args.rpc_shards,
                    port_affinity=args.port_affinity,
                    replication=args.replication,
                    max_clients=max(256, scn.n_clients + 8))
    loaded = bed.load(scn.preload_items())
    print(f"loaded {loaded} keys across {len(scn.tenants)} tenant(s) "
          f"(scenario {scn.name}, family {scn.family}, seed {scn.seed})")
    # Attach observability only now, so the bulk load stays untraced.
    if tracer is not None:
        bed.cluster.attach_tracer(tracer)
    if args.profile:
        from .obs import Profiler
        profiler = Profiler(tracer=tracer).install(bed.env)
    metrics = Metrics()  # always on: the tenant report reads it
    if args.metrics:
        from .obs import sample_fabric
        sample_fabric(bed.env, metrics, bed.cluster.fabric,
                      interval_us=args.sample_interval)
    monitor = None
    if monitor_config is not None:
        from .obs import Monitor
        monitor = Monitor(bed.env, bed.cluster.fabric,
                          config=monitor_config, slos=slos,
                          race=bed.cluster.race)
        bed.cluster.attach_monitor(monitor)
    clients = [bed.new_client() for _ in range(scn.n_clients)]
    result = run_open_loop(bed.env, clients, scn.client_stream,
                           bed.execute, duration_us=scn.duration_us,
                           metrics=metrics, fast=profiler is None,
                           monitor=monitor)
    offered = scn.schedule.integral(0.0, scn.duration_us)
    print(f"{result.ops} ops in {result.duration_us:.0f} simulated us "
          f"-> {result.mops:.3f} Mops ({result.errors} errors; "
          f"~{offered:.0f} offered)")
    print()
    print(f"{'tenant':>10} {'ops':>6} {'share':>6} {'err':>4} "
          f"{'p50_us':>8} {'p99_us':>8}")
    for name, row in tenant_report(metrics, scn).items():
        print(f"{name:>10} {row['ops']:>6} "
              f"{row['throughput_share']:>6.2f} {row['errors']:>4} "
              f"{row['p50_us']:>8.2f} {row['p99_us']:>8.2f}")
    if result.health is not None:
        _report_health(args, result.health)
    if profiler is not None:
        from .obs import (RunProfile, analyze_critical_path,
                          critical_report, profile_report)
        print()
        print(profile_report(RunProfile.collect(profiler, tracer.spans)))
        print()
        print(critical_report(analyze_critical_path(profiler,
                                                    tracer.spans)))
    _export_obs(args, tracer, metrics if args.metrics else None)
    return 0


def cmd_ycsb(args) -> int:
    from .harness.runner import run_closed_loop
    from .harness.systems import fusee_bed
    from .workloads import YcsbConfig, YcsbWorkload

    if args.scenario:
        return _cmd_ycsb_scenario(args)
    monitor_config, slos = _monitor_setup(args)
    tracer = metrics = profiler = None
    if args.trace or args.jsonl or args.profile \
            or monitor_config is not None:
        from .obs import Tracer
        tracer = Tracer()
    bed = fusee_bed(n_memory_nodes=args.memory_nodes,
                    replication_factor=args.replicas,
                    dataset_bytes=args.keys * 1024,
                    variant=args.variant,
                    read_spread=args.read_spread,
                    max_coalesce_width=args.coalesce_width,
                    nic_ports=args.nic_ports,
                    rpc_shards=args.rpc_shards,
                    port_affinity=args.port_affinity,
                    replication=args.replication,
                    max_clients=max(256, args.clients + 8))
    config = YcsbConfig(workload=args.workload, n_keys=args.keys)
    seeder = YcsbWorkload(config, seed=args.seed)
    loaded = bed.load((key, seeder.load_value(i))
                      for i, key in enumerate(seeder.load_keys()))
    print(f"loaded {loaded}/{args.keys} keys "
          f"(YCSB-{args.workload}, seed {args.seed})")
    # Attach observability only now, so the bulk load stays untraced.
    if tracer is not None:
        bed.cluster.attach_tracer(tracer)
    if args.profile:
        from .obs import Profiler
        profiler = Profiler(tracer=tracer).install(bed.env)
    if args.metrics:
        from .obs import Metrics, sample_fabric
        metrics = Metrics()
        sample_fabric(bed.env, metrics, bed.cluster.fabric,
                      interval_us=args.sample_interval)
    monitor = None
    if monitor_config is not None:
        from .obs import Monitor
        monitor = Monitor(bed.env, bed.cluster.fabric,
                          config=monitor_config, slos=slos,
                          race=bed.cluster.race)
        bed.cluster.attach_monitor(monitor)
    clients = [bed.new_client() for _ in range(args.clients)]
    result = run_closed_loop(
        bed.env, clients,
        lambda index: YcsbWorkload(config, seed=args.seed + 1 + index),
        bed.execute, duration_us=args.duration_us, metrics=metrics,
        fast=profiler is None, monitor=monitor)
    print(f"{result.ops} ops in {result.duration_us:.0f} simulated us "
          f"-> {result.mops:.3f} Mops ({result.errors} errors)")
    if result.health is not None:
        _report_health(args, result.health)
    if profiler is not None:
        from .obs import (RunProfile, analyze_critical_path,
                          critical_report, profile_report)
        print()
        print(profile_report(RunProfile.collect(profiler, tracer.spans)))
        print()
        print(critical_report(analyze_critical_path(profiler,
                                                    tracer.spans)))
    _export_obs(args, tracer, metrics)
    return 0


def cmd_profile(args) -> int:
    import json

    from .harness.profiling import profile_ycsb
    from .obs import write_chrome_trace, write_folded

    monitor_config, slos = _monitor_setup(args)
    scenario = _resolve_scenario(args) if args.scenario else None
    result = profile_ycsb(system=args.system, workload=args.workload,
                          scale=_scale_from(args.scale),
                          n_clients=args.clients,
                          n_memory_nodes=args.memory_nodes,
                          metadata_cores=args.metadata_cores,
                          tail_pct=args.tail_pct,
                          sample_interval_us=args.sample_interval,
                          read_spread=args.read_spread,
                          max_coalesce_width=args.coalesce_width,
                          nic_ports=args.nic_ports,
                          rpc_shards=args.rpc_shards,
                          port_affinity=args.port_affinity,
                          replication=args.replication,
                          monitor_config=monitor_config, slos=slos,
                          scenario=scenario, seed=args.seed)
    print(result.report())
    if result.health is not None:
        _report_health(args, result.health)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nprofile json: {args.out}")
    if args.flame:
        write_folded(result.profiler, result.spans, args.flame)
        print(f"folded stacks: {args.flame} "
              "(render with flamegraph.pl or speedscope)")
    if args.trace:
        write_chrome_trace(result.tracer, args.trace,
                           metrics=result.metrics)
        print(f"chrome trace: {args.trace} (counter tracks included; "
              "open at https://ui.perfetto.dev)")
    return 0


def cmd_check(args) -> int:
    from .check import (MUTATION_SPECS, MUTATIONS, SCENARIOS,
                        ControlledScheduler, ScheduleExplorer,
                        format_repro, minimize_schedule)

    if args.list:
        print("scenarios:")
        for name in SCENARIOS:
            print(f"  {name}")
        print("mutations (scenario, schedule budget, decision depth):")
        for name, spec in MUTATION_SPECS.items():
            print(f"  {name:30s} {spec.scenario}, "
                  f"{spec.max_schedules}, {spec.max_decisions}")
        return 0

    if args.replay is not None:
        if not args.scenario:
            print("--replay needs --scenario", file=sys.stderr)
            return 2
        decisions = [int(d) for d in args.replay.split(",") if d.strip()]
        scenario = SCENARIOS[args.scenario]()
        if args.mutation:
            with MUTATIONS[args.mutation]():
                violation = scenario(ControlledScheduler(decisions=decisions))
        else:
            violation = scenario(ControlledScheduler(decisions=decisions))
        print(f"replay {decisions} on {args.scenario}"
              + (f" (mutation {args.mutation})" if args.mutation else ""))
        print(f"  -> {violation or 'clean'}")
        return 0 if (violation is not None) == bool(args.mutation) else 1

    def detect(name: str) -> bool:
        """Explore a mutated protocol; True iff the mutation is caught."""
        spec = MUTATION_SPECS[name]
        factory = SCENARIOS[spec.scenario]
        budget = args.max_schedules or spec.max_schedules
        depth = args.max_decisions or spec.max_decisions
        with MUTATIONS[name]():
            result = ScheduleExplorer(factory(), max_schedules=budget,
                                      max_decisions=depth).explore()
            print(f"{name} on {spec.scenario}: {result.summary()}")
            if not result.found:
                return False
            minimized = minimize_schedule(factory(),
                                          result.violating_decisions)
        if minimized is not None:
            print(f"  {minimized}")
            print(format_repro(spec.scenario, minimized, mutation=name))
        return True

    def clean(scenario_name: str, budget: int, depth: int) -> bool:
        """Explore the unmutated protocol; True iff it survives."""
        result = ScheduleExplorer(SCENARIOS[scenario_name](),
                                  max_schedules=budget,
                                  max_decisions=depth).explore()
        print(f"clean {scenario_name}: {result.summary()}")
        if result.found:
            print(f"  violation: {result.violation}")
            print(f"  decisions: {result.violating_decisions}")
            return False
        return True

    if args.mutation:
        return 0 if detect(args.mutation) else 1
    if args.scenario:
        spec_budget = max((s.max_schedules for s in MUTATION_SPECS.values()
                           if s.scenario == args.scenario), default=2000)
        spec_depth = max((s.max_decisions for s in MUTATION_SPECS.values()
                          if s.scenario == args.scenario), default=40)
        return 0 if clean(args.scenario,
                          args.max_schedules or spec_budget,
                          args.max_decisions or spec_depth) else 1

    # Default: the full matrix — every mutation caught, every scenario
    # clean at the same documented bounds.
    ok = True
    for name in MUTATION_SPECS:
        ok = detect(name) and ok
    for name, spec in MUTATION_SPECS.items():
        ok = clean(spec.scenario, args.max_schedules or spec.max_schedules,
                   args.max_decisions or spec.max_decisions) and ok
    print("check matrix:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_faults(args) -> int:
    from .faults.campaign import CAMPAIGNS, run_campaign

    if args.list:
        from .workloads import SCENARIOS
        for name in (*CAMPAIGNS, "random"):
            print(name)
        for name in sorted(SCENARIOS):
            print(f"scenario:{name}")
        return 0
    monitor_config, slos = _monitor_setup(args)
    scenario = _resolve_scenario(args) if args.scenario else None
    report = run_campaign(args.campaign, seed=args.seed,
                          retries=not args.no_retries,
                          clients=args.clients,
                          ops_per_client=args.ops_per_client,
                          replication=args.replication,
                          index_replication=args.index_replication,
                          monitor_config=monitor_config, slos=slos,
                          scenario=scenario)
    print(report.render())
    if report.health is not None:
        _report_health(args, report.health)
    return 0 if report.sound else 1


def cmd_monitor(args) -> int:
    from .obs import Monitor, render_health, write_health

    monitor_config, slos = _monitor_setup(args)
    if monitor_config is None:
        # The subcommand IS the opt-in: monitor with defaults even when
        # no --windows/--slo/--hotkeys flag was given.
        from .obs import MonitorConfig
        monitor_config = MonitorConfig()

    scenario = _resolve_scenario(args) if args.scenario else None
    if args.campaign or (scenario is not None and scenario.faults):
        # Faulted mode: every seeded gray/port fault must be caught.
        # A compound scenario (one carrying fault events) routes here
        # even without --campaign; its own fault plan applies.
        from .faults.campaign import run_campaign
        report = run_campaign(args.campaign or "mixed", seed=args.seed,
                              clients=args.clients,
                              nic_ports=args.nic_ports,
                              rpc_shards=args.rpc_shards,
                              monitor_config=monitor_config, slos=slos,
                              scenario=scenario)
        print(report.render())
        _report_health(args, report.health)
        det = report.detector or {}
        if det:
            verdict = "ok" if det.get("ok") else "FAIL"
            print(f"\ndetector verdict: {verdict} "
                  f"({len(det.get('caught', []))}/{det.get('expected', 0)} "
                  f"caught, {len(det.get('unexplained', []))} unexplained)")
        return 0 if report.sound else 1

    # Clean-bed mode: a monitored YCSB (or pure-load scenario) run on a
    # healthy cluster must produce zero detector flags (the
    # zero-false-positive guarantee).
    from .harness.runner import run_closed_loop, run_open_loop
    from .harness.systems import fusee_bed
    from .obs import Tracer
    from .workloads import YcsbConfig, YcsbWorkload

    tracer = Tracer()
    n_clients = scenario.n_clients if scenario is not None \
        else args.clients
    bed = fusee_bed(n_memory_nodes=args.memory_nodes,
                    dataset_bytes=args.keys * 1024,
                    nic_ports=args.nic_ports,
                    rpc_shards=args.rpc_shards,
                    max_clients=max(256, n_clients + 8))
    if scenario is not None:
        loaded = bed.load(scenario.preload_items())
        print(f"loaded {loaded} keys across "
              f"{len(scenario.tenants)} tenant(s) "
              f"(scenario {scenario.name}, seed {scenario.seed})")
    else:
        config = YcsbConfig(workload=args.workload, n_keys=args.keys)
        seeder = YcsbWorkload(config, seed=args.seed)
        loaded = bed.load((key, seeder.load_value(i))
                          for i, key in enumerate(seeder.load_keys()))
        print(f"loaded {loaded}/{args.keys} keys "
              f"(YCSB-{args.workload}, seed {args.seed})")
    bed.cluster.attach_tracer(tracer)
    monitor = Monitor(bed.env, bed.cluster.fabric, config=monitor_config,
                      slos=slos, race=bed.cluster.race)
    bed.cluster.attach_monitor(monitor)
    clients = [bed.new_client() for _ in range(n_clients)]
    if scenario is not None:
        result = run_open_loop(bed.env, clients, scenario.client_stream,
                               bed.execute,
                               duration_us=scenario.duration_us,
                               monitor=monitor)
    else:
        result = run_closed_loop(
            bed.env, clients,
            lambda index: YcsbWorkload(config, seed=args.seed + 1 + index),
            bed.execute, duration_us=args.duration_us, monitor=monitor)
    print(f"{result.ops} ops in {result.duration_us:.0f} simulated us "
          f"-> {result.mops:.3f} Mops ({result.errors} errors)")
    _report_health(args, result.health)
    flags = (result.health.get("detector") or {}).get("flags", [])
    if flags:
        print(f"\nmonitor verdict: FAIL ({len(flags)} detector flag(s) "
              f"on a clean bed)")
        return 1
    print("\nmonitor verdict: clean (no detector flags)")
    return 0


def _add_replication_flag(parser, default=None) -> None:
    from .core.replication import registered_protocols
    parser.add_argument("--replication", default=default,
                        choices=registered_protocols(),
                        help="slot replication strategy (default: the "
                             "variant's own — snapshot unless noted)")


def _add_hotpath_flags(parser) -> None:
    parser.add_argument("--read-spread", default="primary",
                        choices=("primary", "round_robin", "least_loaded"),
                        help="spread KV READs across alive replicas "
                             "(default: paper-faithful primary)")
    parser.add_argument("--coalesce-width", type=int, default=1,
                        metavar="N",
                        help="max verbs folded into one NIC doorbell "
                             "serialisation slot (default 1 = "
                             "paper-faithful, no coalescing)")
    parser.add_argument("--nic-ports", type=int, default=1, metavar="N",
                        help="rx/tx NIC port pairs per memory node "
                             "(default 1 = paper-faithful single queue)")
    parser.add_argument("--rpc-shards", type=int, default=1, metavar="N",
                        help="independent RPC CPU shards per memory "
                             "node (default 1 = one pooled server loop)")
    parser.add_argument("--port-affinity", default="qp",
                        choices=("qp", "rss"),
                        help="how client QPs hash onto NIC ports "
                             "(default qp = per-QP affinity)")


def _add_obs_flags(parser) -> None:
    parser.add_argument("--trace", default=None, metavar="OUT.json",
                        help="write a Chrome trace_event file "
                             "(Perfetto-loadable)")
    parser.add_argument("--jsonl", default=None, metavar="OUT.jsonl",
                        help="write one JSON record per span/verb batch")
    parser.add_argument("--metrics", action="store_true",
                        help="print a metrics report after the run")


def _add_scenario_flags(parser) -> None:
    parser.add_argument("--scenario", default=None, metavar="NAME",
                        help="drive a production traffic scenario "
                             "instead of the YCSB mix "
                             "(docs/scenarios.md; 'faults --list' "
                             "prints the names)")
    parser.add_argument("--smoke", action="store_true",
                        help="apply the CI smoke trim to --scenario "
                             "(short duration, fewer keys/clients)")


def _add_monitor_flags(parser, default_hotkeys: int = 0) -> None:
    parser.add_argument("--windows", type=float, default=None,
                        metavar="US",
                        help="attach the online monitor with tumbling "
                             "windows of US simulated microseconds "
                             "(docs/monitoring.md)")
    parser.add_argument("--slo", action="append", default=[],
                        metavar="SPEC",
                        help="SLO spec with burn-rate alerting "
                             "(latency:<op>:p<pct>:<us>, errors:<rate>, "
                             "availability:<rate>); repeatable; implies "
                             "--windows")
    parser.add_argument("--hotkeys", type=int, default=default_hotkeys,
                        metavar="K",
                        help="track the top-K hot keys and index buckets "
                             "per window (Space-Saving sketch); implies "
                             "--windows"
                             + (" (default: off)" if not default_hotkeys
                                else f" (default {default_hotkeys})"))
    parser.add_argument("--health-out", default=None, metavar="OUT.json",
                        help="write the end-of-run health report as JSON")


def _monitor_setup(args, default_window_us: float = 250.0):
    """Resolve the monitor flags to ``(MonitorConfig | None, slos)``."""
    from .obs import MonitorConfig, SloSpec

    slos = [SloSpec.parse(spec) for spec in getattr(args, "slo", ())]
    hotkeys = getattr(args, "hotkeys", 0)
    windows = getattr(args, "windows", None)
    if windows is None and not slos and not hotkeys:
        return None, []
    config = MonitorConfig(
        window_us=windows if windows is not None else default_window_us,
        hotkey_capacity=hotkeys)
    return config, slos


def _report_health(args, health) -> None:
    from .obs import render_health, write_health

    # Write the artifact before touching stdout: a downstream consumer
    # closing the pipe (| head) must not lose the requested JSON.
    out = getattr(args, "health_out", None)
    if out:
        write_health(health, out)
    print()
    print(render_health(health))
    if out:
        print(f"health json: {out}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FUSEE (FAST'23) reproduction — experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible paper artefacts") \
        .set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="regenerate artefacts")
    run_parser.add_argument("names", nargs="+",
                            help="experiment names (or 'all')")
    run_parser.add_argument("--scale", default="bench",
                            choices=("tiny", "bench", "full", "production"))
    run_parser.add_argument("--out", default=None,
                            help="directory to write tables into")
    run_parser.add_argument("--format", default="table",
                            choices=("table", "csv", "md", "chart"))
    run_parser.set_defaults(func=cmd_run)

    demo_parser = sub.add_parser("demo", help="smoke-test the store")
    _add_obs_flags(demo_parser)
    demo_parser.set_defaults(func=cmd_demo)

    ycsb_parser = sub.add_parser(
        "ycsb", help="run a closed-loop YCSB workload (traceable)")
    ycsb_parser.add_argument("--workload", default="A",
                             choices=sorted("ABCD"))
    ycsb_parser.add_argument("--keys", type=int, default=2000)
    ycsb_parser.add_argument("--clients", type=int, default=4)
    ycsb_parser.add_argument("--duration-us", type=float, default=20_000.0)
    ycsb_parser.add_argument("--seed", type=int, default=42)
    ycsb_parser.add_argument("--memory-nodes", type=int, default=2)
    ycsb_parser.add_argument("--replicas", type=int, default=2)
    ycsb_parser.add_argument("--variant", default="fusee",
                             choices=("fusee", "fusee-cr", "fusee-nc",
                                      "fusee-swarm"))
    _add_replication_flag(ycsb_parser)
    ycsb_parser.add_argument("--profile", action="store_true",
                             help="attribute span time (profiler) and "
                                  "print the latency breakdown")
    _add_hotpath_flags(ycsb_parser)
    _add_obs_flags(ycsb_parser)
    ycsb_parser.add_argument("--sample-interval", type=float,
                             default=50.0, metavar="US",
                             help="fabric counter sampling interval for "
                                  "--metrics (simulated us, default 50)")
    _add_monitor_flags(ycsb_parser)
    _add_scenario_flags(ycsb_parser)
    ycsb_parser.set_defaults(func=cmd_ycsb)

    profile_parser = sub.add_parser(
        "profile",
        help="run a profiled YCSB mix and print/write the latency "
             "attribution (see docs/profiling.md)")
    profile_parser.add_argument("--system", default="fusee",
                                choices=("fusee", "clover", "pdpm"))
    profile_parser.add_argument("--workload", default="A",
                                choices=sorted("ABCD"))
    profile_parser.add_argument("--scale", default="bench",
                                choices=("tiny", "bench", "full",
                                         "production"))
    profile_parser.add_argument("--clients", type=int, default=None,
                                help="override the scale's client count")
    profile_parser.add_argument("--memory-nodes", type=int, default=2)
    profile_parser.add_argument("--metadata-cores", type=int, default=2,
                                help="Clover metadata-server cores "
                                     "(Fig. 2 knob)")
    profile_parser.add_argument("--tail-pct", type=float, default=99.0,
                                help="tail percentile for the slowest-"
                                     "spans breakdown")
    profile_parser.add_argument("--out", default="BENCH_profile.json",
                                metavar="OUT.json",
                                help="write the attribution bundle "
                                     "(default BENCH_profile.json; '' "
                                     "to skip)")
    profile_parser.add_argument("--flame", default=None,
                                metavar="OUT.folded",
                                help="write folded flamegraph stacks")
    profile_parser.add_argument("--trace", default=None,
                                metavar="OUT.json",
                                help="write a Chrome trace with counter "
                                     "tracks")
    profile_parser.add_argument("--sample-interval", type=float,
                                default=50.0, metavar="US",
                                help="fabric counter sampling interval "
                                     "(simulated us, default 50)")
    profile_parser.add_argument("--seed", type=int, default=0,
                                help="scenario stream seed (with "
                                     "--scenario)")
    _add_replication_flag(profile_parser)
    _add_hotpath_flags(profile_parser)
    _add_monitor_flags(profile_parser)
    _add_scenario_flags(profile_parser)
    profile_parser.set_defaults(func=cmd_profile)

    check_parser = sub.add_parser(
        "check", help="systematic schedule exploration / mutation matrix")
    check_parser.add_argument("--list", action="store_true",
                              help="list scenarios and mutations")
    check_parser.add_argument("--scenario", default=None,
                              help="explore one scenario (expects clean)")
    check_parser.add_argument("--mutation", default=None,
                              help="explore one mutated protocol "
                                   "(expects a violation)")
    check_parser.add_argument("--replay", default=None, metavar="0,1,0",
                              help="replay a recorded decision sequence "
                                   "(with --scenario, optionally "
                                   "--mutation)")
    check_parser.add_argument("--max-schedules", type=int, default=None,
                              help="override the documented schedule budget")
    check_parser.add_argument("--max-decisions", type=int, default=None,
                              help="override the branch depth bound")
    check_parser.set_defaults(func=cmd_check)

    faults_parser = sub.add_parser(
        "faults", help="run a network-fault-injection campaign")
    faults_parser.add_argument("--campaign", default="mixed",
                               help="campaign name (see --list); "
                                    "'random' draws a seeded plan")
    faults_parser.add_argument("--seed", type=int, default=0,
                               help="fate seed (and plan seed for "
                                    "'random')")
    faults_parser.add_argument("--clients", type=int, default=3)
    faults_parser.add_argument("--ops-per-client", type=int, default=120)
    faults_parser.add_argument("--no-retries", action="store_true",
                               help="disable the client retry layer "
                                    "(negative control)")
    faults_parser.add_argument("--list", action="store_true",
                               help="list campaign names")
    _add_replication_flag(faults_parser, default="snapshot")
    faults_parser.add_argument("--index-replication", type=int, default=1,
                               help="index replica count (capped at the "
                                    "MN count); raise to exercise "
                                    "multi-replica protocol paths under "
                                    "faults (default: 1)")
    _add_monitor_flags(faults_parser)
    _add_scenario_flags(faults_parser)
    faults_parser.set_defaults(func=cmd_faults)

    monitor_parser = sub.add_parser(
        "monitor",
        help="watch a run through the online telemetry plane "
             "(docs/monitoring.md): windowed quantiles, SLO burn "
             "rates, hot keys, and the gray-failure detector")
    monitor_parser.add_argument("--campaign", default=None,
                                help="monitor a fault campaign instead "
                                     "of a clean YCSB bed; the seeded "
                                     "gray/port faults must be caught")
    monitor_parser.add_argument("--seed", type=int, default=0)
    monitor_parser.add_argument("--clients", type=int, default=4)
    monitor_parser.add_argument("--duration-us", type=float,
                                default=20_000.0)
    monitor_parser.add_argument("--keys", type=int, default=2000)
    monitor_parser.add_argument("--workload", default="A",
                                choices=sorted("ABCD"))
    monitor_parser.add_argument("--memory-nodes", type=int, default=2)
    monitor_parser.add_argument("--nic-ports", type=int, default=1,
                                metavar="N")
    monitor_parser.add_argument("--rpc-shards", type=int, default=1,
                                metavar="N")
    _add_monitor_flags(monitor_parser, default_hotkeys=8)
    _add_scenario_flags(monitor_parser)
    monitor_parser.set_defaults(func=cmd_monitor)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
