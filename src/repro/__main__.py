"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every reproducible paper artefact and its description.
``run <name> [...]``
    Regenerate one artefact (or ``all``) and print its table; optionally
    write tables to a directory.
``demo``
    A 30-second smoke demo of the store itself.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .harness import ALL_EXPERIMENTS, Scale
from .harness.report import render


def _scale_from(name: str) -> Scale:
    presets = {"tiny": Scale.tiny, "bench": Scale.bench, "full": Scale.full}
    if name not in presets:
        raise SystemExit(f"unknown scale {name!r}; pick from "
                         f"{sorted(presets)}")
    return presets[name]()


def cmd_list(_args) -> int:
    width = max(len(name) for name in ALL_EXPERIMENTS)
    for name, fn in ALL_EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{name:<{width}}  {doc}")
    return 0


def cmd_run(args) -> int:
    names = list(ALL_EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    scale = _scale_from(args.scale)
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.time()
        result = ALL_EXPERIMENTS[name](scale)
        elapsed = time.time() - started
        print(render(result, args.format))
        print(f"[{elapsed:.1f}s wall]\n")
        if out_dir:
            ext = {"table": "txt", "csv": "csv", "md": "md",
                   "chart": "txt"}[args.format]
            (out_dir / f"{name}.{ext}").write_text(
                render(result, args.format) + "\n")
    return 0


def cmd_demo(_args) -> int:
    from . import ClusterConfig, FuseeKV

    kv = FuseeKV(ClusterConfig(n_memory_nodes=2, replication_factor=2))
    kv.insert(b"demo", b"it works")
    print("insert/search:", kv.search(b"demo").decode())
    kv.update(b"demo", b"it still works")
    print("update/search:", kv.search(b"demo").decode())
    kv.delete(b"demo")
    print("after delete:", kv.search(b"demo"))
    stats = kv.cluster.fabric.stats
    print(f"verbs used: {stats.reads} reads, {stats.writes} writes, "
          f"{stats.atomics} atomics ({kv.now_us:.1f} simulated us)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FUSEE (FAST'23) reproduction — experiment runner")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible paper artefacts") \
        .set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="regenerate artefacts")
    run_parser.add_argument("names", nargs="+",
                            help="experiment names (or 'all')")
    run_parser.add_argument("--scale", default="bench",
                            choices=("tiny", "bench", "full"))
    run_parser.add_argument("--out", default=None,
                            help="directory to write tables into")
    run_parser.add_argument("--format", default="table",
                            choices=("table", "csv", "md", "chart"))
    run_parser.set_defaults(func=cmd_run)

    sub.add_parser("demo", help="smoke-test the store") \
        .set_defaults(func=cmd_demo)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
