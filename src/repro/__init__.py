"""FUSEE — a fully memory-disaggregated key-value store (FAST'23).

Python reproduction on a simulated RDMA fabric.  The public surface:

* :class:`repro.FuseeKV` — synchronous single-client store for apps.
* :class:`repro.FuseeCluster` / :class:`repro.ClusterConfig` — full
  deployments with many clients, failure injection, and the master.
* :mod:`repro.obs` — per-operation tracing, metrics, and exporters
  (Chrome ``trace_event`` / JSONL / text summaries).
* :mod:`repro.workloads` — YCSB and microbenchmark generators.
* :mod:`repro.harness` — throughput/latency experiment drivers that
  regenerate every table and figure of the paper's evaluation.
* :mod:`repro.baselines` — Clover, pDPM-Direct, and the Fig. 3
  consensus/lock replication comparators.
"""

from .core import (
    ClientConfig,
    ClusterConfig,
    FuseeClient,
    FuseeCluster,
    FuseeKV,
    OpResult,
)
from .obs import Metrics, Tracer
from .rdma import Fabric, FabricConfig, MemoryNode
from .sim import Environment

__version__ = "1.0.0"

__all__ = [
    "ClientConfig",
    "ClusterConfig",
    "FuseeClient",
    "FuseeCluster",
    "FuseeKV",
    "OpResult",
    "Fabric",
    "FabricConfig",
    "MemoryNode",
    "Environment",
    "Metrics",
    "Tracer",
    "__version__",
]
