"""Windowed views over simulated time: tumbling panes, sliding merges.

Whole-run aggregates (``Histogram``, end-of-run counters) cannot see a
30-second latency storm — a storm and a healthy run produce the same
final p99.  :class:`WindowStore` fixes that by bucketing every
observation into **tumbling panes** of ``width_us`` simulated
microseconds (pane ``k`` covers ``[k * width_us, (k + 1) * width_us)``)
and answering per-window rate / p50 / p99 queries per pane, or over a
**sliding window** of ``k`` consecutive panes by merging their
:class:`~repro.obs.sketches.DDSketch` states (merging is exact, so the
relative-error bound survives).

Pane boundaries are a pure function of simulated time
(``int(t // width_us)``), so window edges are byte-identical across
same-seed runs (tests/test_trace_determinism.py).

:class:`windowed_metrics` builds a :class:`~repro.obs.metrics.Metrics`
registry whose instruments *also* feed a ``WindowStore`` — existing call
sites (``metrics.counter("ops.search").inc()``) gain per-window views
without any changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .metrics import Counter, Gauge, Histogram, Metrics, TimeSeries
from .sketches import DDSketch

__all__ = ["WindowStore", "WindowedCounter", "WindowedGauge",
           "WindowedHistogram", "WindowedTimeSeries", "windowed_metrics"]


class WindowStore:
    """Per-pane counters, gauges and quantile sketches.

    ``env`` supplies simulated time; instruments read ``env.now`` at
    observation time so call sites never pass timestamps.  Memory is
    bounded by :meth:`prune` — the monitor drops panes older than its
    longest sliding window after evaluating them.
    """

    def __init__(self, env, width_us: float, alpha: float = 0.01):
        if width_us <= 0.0:
            raise ValueError("window width must be > 0")
        self.env = env
        self.width_us = width_us
        self.alpha = alpha
        # name -> pane -> value
        self.counts: Dict[str, Dict[int, float]] = {}
        self.gauges: Dict[str, Dict[int, float]] = {}
        self.sketches: Dict[str, Dict[int, DDSketch]] = {}

    # ------------------------------------------------------------- panes
    def pane_of(self, t: float) -> int:
        return int(t // self.width_us)

    @property
    def current_pane(self) -> int:
        return self.pane_of(self.env.now)

    def pane_start(self, pane: int) -> float:
        return pane * self.width_us

    def panes(self) -> List[int]:
        """Sorted pane indices that received any observation."""
        seen = set()
        for per_pane in self.counts.values():
            seen.update(per_pane)
        for per_pane in self.gauges.values():
            seen.update(per_pane)
        for per_pane in self.sketches.values():
            seen.update(per_pane)
        return sorted(seen)

    # -------------------------------------------------------------- feed
    def inc(self, name: str, n: float = 1) -> None:
        pane = int(self.env.now // self.width_us)
        per_pane = self.counts.get(name)
        if per_pane is None:
            per_pane = self.counts[name] = {}
        per_pane[pane] = per_pane.get(pane, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        pane = int(self.env.now // self.width_us)
        per_pane = self.gauges.get(name)
        if per_pane is None:
            per_pane = self.gauges[name] = {}
        per_pane[pane] = value

    def observe(self, name: str, value: float) -> None:
        pane = int(self.env.now // self.width_us)
        per_pane = self.sketches.get(name)
        if per_pane is None:
            per_pane = self.sketches[name] = {}
        sketch = per_pane.get(pane)
        if sketch is None:
            sketch = per_pane[pane] = DDSketch(self.alpha)
        sketch.add(value)

    # ------------------------------------------------------------ queries
    def count(self, name: str, pane: int, k: int = 1) -> float:
        """Total of counter ``name`` over panes ``(pane-k, pane]``."""
        per_pane = self.counts.get(name)
        if not per_pane:
            return 0
        return sum(per_pane.get(p, 0) for p in range(pane - k + 1, pane + 1))

    def rate(self, name: str, pane: int, k: int = 1) -> float:
        """Counter rate per simulated microsecond over the window."""
        return self.count(name, pane, k) / (self.width_us * k)

    def gauge(self, name: str, pane: int) -> Optional[float]:
        per_pane = self.gauges.get(name)
        return per_pane.get(pane) if per_pane else None

    def sketch(self, name: str, pane: int, k: int = 1) -> DDSketch:
        """The quantile sketch for ``name`` over panes ``(pane-k, pane]``.

        ``k=1`` returns the tumbling pane's own sketch; ``k>1`` merges
        ``k`` consecutive panes into a sliding-window view (fresh
        object, exact merge — the ``alpha`` bound is preserved).
        """
        per_pane = self.sketches.get(name, {})
        if k == 1:
            sketch = per_pane.get(pane)
            return sketch if sketch is not None else DDSketch(self.alpha)
        return DDSketch.merged(
            (per_pane[p] for p in range(pane - k + 1, pane + 1)
             if p in per_pane),
            alpha=self.alpha)

    def sketch_names(self) -> List[str]:
        return sorted(self.sketches)

    def counter_names(self) -> List[str]:
        return sorted(self.counts)

    def pane_summary(self, pane: int) -> dict:
        """Per-window rate/p50/p99 view of every instrument (sorted)."""
        width = self.width_us
        out: dict = {"pane": pane, "t0": pane * width, "t1": (pane + 1) * width}
        counters = {}
        for name in sorted(self.counts):
            n = self.counts[name].get(pane, 0)
            if n:
                counters[name] = {"count": n, "rate_per_us": n / width}
        quantiles = {}
        for name in sorted(self.sketches):
            sketch = self.sketches[name].get(pane)
            if sketch is not None and sketch.count:
                quantiles[name] = {"count": sketch.count,
                                   "mean": sketch.mean,
                                   "p50": sketch.quantile(0.50),
                                   "p99": sketch.quantile(0.99),
                                   "max": sketch.max_seen}
        gauges = {name: per_pane[pane]
                  for name, per_pane in sorted(self.gauges.items())
                  if pane in per_pane}
        out["counters"] = counters
        out["quantiles"] = quantiles
        if gauges:
            out["gauges"] = gauges
        return out

    # ------------------------------------------------------------- prune
    def prune(self, before_pane: int) -> None:
        """Drop state of panes strictly older than ``before_pane``."""
        for table in (self.counts, self.gauges, self.sketches):
            for name in list(table):
                per_pane = table[name]
                for pane in [p for p in per_pane if p < before_pane]:
                    del per_pane[pane]
                if not per_pane:
                    del table[name]


# ---------------------------------------------------------------------------
# Windowed instrument proxies: drop-in replacements that feed the base
# instrument *and* the window store.  They expose the base attributes
# call sites read (`value`, `summary()`, percentiles), so `Metrics`
# snapshots and reports work unchanged.
# ---------------------------------------------------------------------------
class WindowedCounter:
    __slots__ = ("base", "store", "name")

    def __init__(self, base: Counter, store: WindowStore, name: str):
        self.base = base
        self.store = store
        self.name = name

    @property
    def value(self):
        return self.base.value

    def inc(self, n: int = 1) -> None:
        self.base.inc(n)
        self.store.inc(self.name, n)


class WindowedGauge:
    __slots__ = ("base", "store", "name")

    def __init__(self, base: Gauge, store: WindowStore, name: str):
        self.base = base
        self.store = store
        self.name = name

    @property
    def value(self):
        return self.base.value

    def set(self, value: float) -> None:
        self.base.set(value)
        self.store.set_gauge(self.name, value)


class WindowedHistogram:
    __slots__ = ("base", "store", "name")

    def __init__(self, base: Histogram, store: WindowStore, name: str):
        self.base = base
        self.store = store
        self.name = name

    def observe(self, value: float) -> None:
        self.base.observe(value)
        self.store.observe(self.name, value)

    # read-side delegation (reports, snapshots, tests)
    @property
    def count(self):
        return self.base.count

    @property
    def mean(self):
        return self.base.mean

    def percentile(self, p: float) -> float:
        return self.base.percentile(p)

    def summary(self) -> dict:
        return self.base.summary()


class WindowedTimeSeries:
    """Sampler series that also lands in a per-window quantile sketch,
    so fabric utilisation/backlog gain p50/p99-per-window views."""

    __slots__ = ("base", "store", "name")

    def __init__(self, base: TimeSeries, store: WindowStore, name: str):
        self.base = base
        self.store = store
        self.name = name

    def record(self, t: float, value: float) -> None:
        self.base.record(t, value)
        self.store.observe(self.name, value)

    @property
    def points(self):
        return self.base.points

    @property
    def values(self):
        return self.base.values

    def mean(self) -> float:
        return self.base.mean()

    def peak(self) -> float:
        return self.base.peak()

    def summary(self) -> dict:
        return self.base.summary()


class _WindowedMetrics(Metrics):
    """A registry whose instruments mirror into a :class:`WindowStore`."""

    def __init__(self, store: WindowStore,
                 max_series_points: Optional[int] = None):
        super().__init__(max_series_points=max_series_points)
        self.windows = store

    def counter(self, name: str):
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = WindowedCounter(
                Counter(), self.windows, name)
        return inst

    def gauge(self, name: str):
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = WindowedGauge(
                Gauge(), self.windows, name)
        return inst

    def histogram(self, name: str, base: float = 0.1,
                  growth: float = 2 ** 0.25):
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = WindowedHistogram(
                Histogram(base, growth), self.windows, name)
        return inst

    def timeseries(self, name: str):
        inst = self.series.get(name)
        if inst is None:
            inst = self.series[name] = WindowedTimeSeries(
                TimeSeries(max_points=self.max_series_points),
                self.windows, name)
        return inst


def windowed_metrics(store: WindowStore,
                     max_series_points: Optional[int] = None) -> Metrics:
    """A :class:`Metrics` registry that mirrors every observation into
    ``store``, giving existing call sites per-window views for free."""
    return _WindowedMetrics(store, max_series_points=max_series_points)
