"""Simulated-time profiler: exact latency attribution for spans.

The tracer (PR 1) records *that* an op took N RTTs; this module records
*where* the simulated microseconds went.  Instrumented layers emit typed
time intervals through ``env.profiler``:

====================  =====================================================
category              emitted by
====================  =====================================================
``cpu_service``       :class:`repro.sim.Resource` (core held: handler time)
``cpu_wait``          :class:`repro.sim.Resource` (FIFO queue time)
``nic_service``       :class:`repro.sim.NicPort` (slot on the wire)
``nic_wait``          :class:`repro.sim.NicPort` (serialisation queue)
``backoff``           retry/timeout sleeps (``Environment.attributed_timeout``)
``propagation``       link travel time (fabric / RpcServer)
``client``            client-side post overhead
====================  =====================================================

Whatever a span's intervals do not cover is the **client compute**
residual — time the client process spent between fabric interactions.
Per-span breakdowns are a *partition* of ``[start_us, end_us]``: the
span's intervals are clipped to the window and each elementary segment is
charged to the highest-priority covering category, so the breakdown is
additive by construction (enforced by ``tests/test_profile.py``).

Attribution works without explicit context passing, like the tracer:
``current_span`` resolves (1) an explicit batch override (fire-and-forget
batches are posted inside the client's step but never waited on, so their
time must stay out of the span), then (2) the tracer's per-process span
stack, then (3) explicit process bindings registered by the fabric for
its spawned delivery/RPC processes.

Disabled cost: every instrumentation site checks ``env.profiler is
None`` — one attribute read, covered by the <5% guard in
``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["CATEGORIES", "RESIDUAL", "Profiler", "span_breakdown",
           "RunProfile", "profile_report"]

#: Overlap-resolution priority (first wins).  Service beats wait beats
#: sleeps beats wire time: when a NIC-service slot overlaps the request's
#: propagation window, the segment is NIC service, not propagation.
CATEGORIES: Tuple[str, ...] = ("cpu_service", "cpu_wait", "nic_service",
                               "nic_wait", "backoff", "propagation",
                               "client")
_PRIORITY = {cat: i for i, cat in enumerate(CATEGORIES)}

_UNSET = object()   # "span not passed" sentinel (None is meaningful)

#: Residual bucket: span time covered by no interval.
RESIDUAL: Tuple[str, str] = ("client", "compute")


class Profiler:
    """Collects typed time intervals and attributes them to spans.

    ``tracer`` provides span context (the per-process span stacks); the
    profiler works with any tracer, including one private to the profile
    harness when the system under test does not trace itself (the
    baseline beds).
    """

    def __init__(self, tracer=None):
        self.tracer = tracer
        self.env = None
        #: Flat interval log: ``(span|None, category, label, t0, t1)``.
        self.intervals: List[tuple] = []
        self._override: List[object] = []
        self._bindings: Dict[object, object] = {}

    # ---------------------------------------------------------- lifecycle
    def install(self, env) -> "Profiler":
        """Hook into ``env`` (sets ``env.profiler``); returns self."""
        self.env = env
        env.profiler = self
        if self.tracer is not None and self.tracer.env is None:
            self.tracer.env = env
        return self

    def uninstall(self) -> None:
        if self.env is not None and self.env.profiler is self:
            self.env.profiler = None

    def clear(self) -> None:
        """Drop recorded intervals (bindings of live processes are kept)."""
        self.intervals = []

    # -------------------------------------------------- span resolution
    def current_span(self):
        if self._override:
            return self._override[-1]
        if self.tracer is not None:
            span = self.tracer.current_span()
            if span is not None:
                return span
        env = self.env
        proc = env.active_process if env is not None else None
        if proc is not None:
            return self._bindings.get(proc)
        return None

    def bind(self, proc, span) -> None:
        """Attribute intervals emitted inside ``proc`` to ``span``.

        Used by the fabric for spawned delivery/RPC processes, whose
        ``active_process`` is not the client's.  ``span=None`` explicitly
        suppresses span attribution (unsignaled batches).  The binding is
        removed when the process completes.
        """
        self._bindings[proc] = span
        proc.callbacks.append(self._unbind)

    def _unbind(self, proc) -> None:
        self._bindings.pop(proc, None)

    def begin_batch(self, span) -> None:
        """Override span resolution for a synchronous batch post."""
        self._override.append(span)

    def end_batch(self) -> None:
        self._override.pop()

    # ------------------------------------------------------- recording
    def note(self, category: str, label: str, t0: float, t1: float,
             span=_UNSET) -> None:
        """Record one interval; ``span`` defaults to the active span."""
        if t1 <= t0:
            return
        if span is _UNSET:
            span = self.current_span()
        self.intervals.append((span, category, label, t0, t1))

    def note_nic(self, label: str, arrive: float, start: float,
                 end: float) -> None:
        """NIC occupancy: queueing ``[arrive, start)``, then service."""
        span = self.current_span()
        if start > arrive:
            self.intervals.append((span, "nic_wait", label, arrive, start))
        if end > start:
            self.intervals.append((span, "nic_service", label, start, end))

    # --------------------------------------------------------- queries
    def spans_seen(self) -> List[object]:
        """Distinct spans with intervals, in first-appearance order."""
        seen = []
        ids = set()
        for span, *_rest in self.intervals:
            if span is not None and id(span) not in ids:
                ids.add(id(span))
                seen.append(span)
        return seen

    def intervals_of(self, span) -> List[Tuple[str, str, float, float]]:
        return [(cat, label, t0, t1)
                for s, cat, label, t0, t1 in self.intervals if s is span]

    def breakdown(self, span) -> Dict[Tuple[str, str], float]:
        """Partition ``[span.start_us, span.end_us]``; see module doc."""
        if span.end_us is None:
            raise ValueError("cannot attribute an unfinished span")
        return span_breakdown(self.intervals_of(span), span.start_us,
                              span.end_us)


def span_breakdown(intervals, t0: float, t1: float
                   ) -> Dict[Tuple[str, str], float]:
    """Partition ``[t0, t1]`` over ``(category, label, a, b)`` intervals.

    Each elementary segment between interval boundaries is charged to the
    highest-priority covering interval; uncovered segments go to
    :data:`RESIDUAL`.  The result's values sum to ``t1 - t0`` (exactly in
    exact arithmetic; to float precision here).
    """
    out: Dict[Tuple[str, str], float] = {}
    if t1 <= t0:
        return out
    clipped = []
    points = {t0, t1}
    for cat, label, a, b in intervals:
        a = max(a, t0)
        b = min(b, t1)
        if b > a:
            clipped.append((_PRIORITY[cat], cat, label, a, b))
            points.add(a)
            points.add(b)
    bounds = sorted(points)
    for lo, hi in zip(bounds, bounds[1:]):
        best = None
        for pr, cat, label, a, b in clipped:
            if a <= lo and b >= hi and (best is None or pr < best[0]):
                best = (pr, cat, label)
        key = (best[1], best[2]) if best is not None else RESIDUAL
        out[key] = out.get(key, 0.0) + (hi - lo)
    return out


class RunProfile:
    """Aggregated attribution for a whole run.

    ``ops``       per op-kind: count, total/mean duration, breakdown
                  (``"category:label" -> us``) summed over ended spans;
    ``overall``   the same summed over every ended span;
    ``resources`` per label: total wait and service time *demanded* (all
                  intervals, span-attributed or not — a resource's view);
    ``tail``      breakdown restricted to the slowest ``tail_pct`` percent
                  of spans — where "a majority of p99 latency" claims are
                  checked.
    """

    def __init__(self):
        self.ops: Dict[str, dict] = {}
        self.overall: dict = {"count": 0, "total_us": 0.0, "breakdown": {}}
        self.resources: Dict[str, dict] = {}
        self.tail: dict = {"pct": 0.0, "count": 0, "total_us": 0.0,
                           "breakdown": {}}
        self.unfinished_spans = 0

    # ------------------------------------------------------------ build
    @classmethod
    def collect(cls, profiler: Profiler, spans, tail_pct: float = 99.0
                ) -> "RunProfile":
        """Aggregate ``spans`` (e.g. ``tracer.spans``) against ``profiler``.

        Unfinished spans (cut off at the run deadline) are counted and
        skipped — they have no defined duration to partition.
        """
        prof = cls()
        by_span: Dict[int, List[tuple]] = {}
        for span, cat, label, a, b in profiler.intervals:
            if span is not None:
                by_span.setdefault(id(span), []).append((cat, label, a, b))
            res = prof.resources.setdefault(
                label, {"wait_us": 0.0, "service_us": 0.0, "other_us": 0.0})
            if cat in ("cpu_wait", "nic_wait"):
                res["wait_us"] += b - a
            elif cat in ("cpu_service", "nic_service"):
                res["service_us"] += b - a
            else:
                res["other_us"] += b - a

        ended = []
        for span in spans:
            if span.end_us is None:
                prof.unfinished_spans += 1
                continue
            parts = span_breakdown(by_span.get(id(span), ()),
                                   span.start_us, span.end_us)
            ended.append((span, parts))
            prof._add(prof.overall, span, parts)
            entry = prof.ops.setdefault(
                span.op, {"count": 0, "total_us": 0.0, "breakdown": {}})
            prof._add(entry, span, parts)

        # Tail: the slowest (100 - tail_pct)% of ended spans.
        prof.tail["pct"] = tail_pct
        if ended:
            durations = sorted(s.duration_us for s, _p in ended)
            rank = min(len(durations) - 1,
                       max(0, math.ceil(tail_pct / 100.0 * len(durations))
                           - 1))
            threshold = durations[rank]
            for span, parts in ended:
                if span.duration_us >= threshold:
                    prof._add(prof.tail, span, parts)
        return prof

    @staticmethod
    def _add(entry: dict, span, parts: Dict[Tuple[str, str], float]) -> None:
        entry["count"] += 1
        entry["total_us"] += span.duration_us
        breakdown = entry["breakdown"]
        for (cat, label), us in parts.items():
            key = f"{cat}:{label}"
            breakdown[key] = breakdown.get(key, 0.0) + us

    # ---------------------------------------------------------- queries
    @staticmethod
    def _share(entry: dict, category: str, label: Optional[str] = None
               ) -> float:
        total = entry["total_us"]
        if total <= 0.0:
            return 0.0
        hit = 0.0
        for key, us in entry["breakdown"].items():
            cat, _, lbl = key.partition(":")
            if cat == category and (label is None or lbl == label):
                hit += us
        return hit / total

    def share(self, category: str, op: Optional[str] = None,
              label: Optional[str] = None) -> float:
        """Fraction of attributed time in ``category`` (0..1)."""
        entry = self.overall if op is None else self.ops.get(
            op, {"count": 0, "total_us": 0.0, "breakdown": {}})
        return self._share(entry, category, label)

    def tail_share(self, category: str, label: Optional[str] = None
                   ) -> float:
        """Like :meth:`share`, over the slowest-tail spans only."""
        return self._share(self.tail, category, label)

    def to_dict(self) -> dict:
        """Plain-data view with sorted keys (deterministic JSON)."""
        def _entry(entry):
            out = {"count": entry["count"],
                   "total_us": round(entry["total_us"], 6),
                   "mean_us": round(entry["total_us"] / entry["count"], 6)
                   if entry["count"] else 0.0,
                   "breakdown_us": {k: round(v, 6) for k, v
                                    in sorted(entry["breakdown"].items())}}
            if "pct" in entry:
                out["pct"] = entry["pct"]
            return out

        return {
            "overall": _entry(self.overall),
            "tail": _entry(self.tail),
            "ops": {op: _entry(self.ops[op]) for op in sorted(self.ops)},
            "resources": {label: {k: round(v, 6) for k, v
                                  in sorted(self.resources[label].items())}
                          for label in sorted(self.resources)},
            "unfinished_spans": self.unfinished_spans,
        }


def profile_report(profile: RunProfile) -> str:
    """Aligned text rendering of a :class:`RunProfile`."""
    lines: List[str] = []

    def _render(title: str, entry: dict) -> None:
        total = entry["total_us"]
        lines.append(f"{title}: {entry['count']} spans, "
                     f"{total:.1f} us attributed")
        for key, us in sorted(entry["breakdown"].items(),
                              key=lambda kv: (-kv[1], kv[0])):
            pct = 100.0 * us / total if total else 0.0
            lines.append(f"  {key:<36} {us:>12.2f} us  {pct:5.1f}%")

    _render("overall", profile.overall)
    lines.append("")
    _render(f"slowest tail (>= p{profile.tail['pct']:g})", profile.tail)
    for op in sorted(profile.ops):
        lines.append("")
        _render(f"op {op}", profile.ops[op])
    if profile.resources:
        lines.append("")
        lines.append("resources (all demand, including unsignaled):")
        for label in sorted(profile.resources):
            res = profile.resources[label]
            lines.append(f"  {label:<24} service={res['service_us']:>12.2f} "
                         f"us  wait={res['wait_us']:>12.2f} us")
    if profile.unfinished_spans:
        lines.append("")
        lines.append(f"({profile.unfinished_spans} spans still in flight "
                     "at the deadline were skipped)")
    return "\n".join(lines)
