"""Observability layer: per-operation tracing, metrics, exporters.

The paper's design is an RTT budget (§4: cached SEARCH in 1 RTT,
doorbell-batched write phases, +1 RTT per CR replica); this package makes
those budgets directly observable instead of inferring them from
end-to-end throughput.  See ``tests/test_rtt_budgets.py`` for the
paper-derived regression suite built on top of it.
"""

from .critical import CriticalPath, analyze_critical_path, critical_report
from .export import (
    chrome_trace,
    jsonl_lines,
    metrics_table,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from .flame import folded_stacks, write_folded
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    TimeSeries,
    sample_fabric,
)
from .detect import DetectorFlag, GrayDetector, detector_verdict
from .monitor import (
    Monitor,
    MonitorConfig,
    health_fingerprint,
    load_health,
    render_health,
    write_health,
)
from .profile import (
    CATEGORIES,
    RESIDUAL,
    Profiler,
    RunProfile,
    profile_report,
    span_breakdown,
)
from .sketches import DDSketch, SpaceSaving
from .slo import KV_OPS, SloSpec, SloState
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, verb_kind
from .windows import WindowStore, windowed_metrics

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "verb_kind",
    "Metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "sample_fabric",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "summary_table",
    "metrics_table",
    "CATEGORIES",
    "RESIDUAL",
    "Profiler",
    "RunProfile",
    "profile_report",
    "span_breakdown",
    "CriticalPath",
    "analyze_critical_path",
    "critical_report",
    "folded_stacks",
    "write_folded",
    "DDSketch",
    "SpaceSaving",
    "WindowStore",
    "windowed_metrics",
    "SloSpec",
    "SloState",
    "KV_OPS",
    "GrayDetector",
    "DetectorFlag",
    "detector_verdict",
    "Monitor",
    "MonitorConfig",
    "render_health",
    "write_health",
    "load_health",
    "health_fingerprint",
]
