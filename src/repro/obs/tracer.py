"""Structured per-operation tracing for the simulated fabric.

The tracer records two kinds of structured data:

* **Verb/batch events** — every doorbell batch the fabric posts (and every
  RPC), with per-verb kind, target memory node, payload bytes, and
  issue/complete simulated times.
* **KV-op spans** — one record per client operation (search / insert /
  update / delete, plus master recovery paths), with the operation kind,
  per-phase batch breakdown, signaled-RTT count, retries and outcome.

Attribution works without any explicit context passing: client operations
run as DES processes, and the fabric is always invoked synchronously from
within a process step, so ``env.active_process`` identifies the operation
a verb belongs to.  The tracer keeps a span stack per process.

When tracing is off the fabric checks a single ``enabled`` attribute (the
default is the shared :data:`NULL_TRACER`), so the disabled path costs one
attribute read per batch — see ``benchmarks/test_obs_overhead.py`` for the
regression guard.

Everything recorded is derived from simulated time and posted verbs only —
no wall-clock, no ``id()`` values — so traces of a seeded workload are
byte-for-byte reproducible (``tests/test_trace_determinism.py``).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..rdma.verbs import CasOp, FaaOp, ReadOp, Verb, WriteOp, op_bytes

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "verb_kind"]


def verb_kind(op: Verb) -> str:
    """Short lowercase kind tag for a verb descriptor."""
    if isinstance(op, ReadOp):
        return "read"
    if isinstance(op, WriteOp):
        return "write"
    if isinstance(op, CasOp):
        return "cas"
    if isinstance(op, FaaOp):
        return "faa"
    return "verb"


class Span:
    """One traced KV operation (or recovery procedure)."""

    __slots__ = ("sid", "op", "cid", "start_us", "end_us", "ok", "outcome",
                 "error", "rtts", "unsignaled", "rpcs", "retries",
                 "transport_retries", "batches", "cur_phase", "key", "wrote",
                 "value", "existed")

    def __init__(self, sid: int, op: str, cid: int, start_us: float,
                 key: Optional[bytes] = None,
                 wrote: Optional[bytes] = None):
        self.sid = sid
        self.op = op
        self.cid = cid
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.ok: Optional[bool] = None
        self.outcome: Optional[str] = None
        self.error: Optional[str] = None
        # KV-history fields (concurrent linearizability checking): the
        # operation's key, the value argument it wrote, the value a
        # successful search returned, and insert's already-present flag.
        self.key = key
        self.wrote = wrote
        self.value: Optional[bytes] = None
        self.existed = False
        self.rtts = 0          # signaled doorbell batches (1 batch = 1 RTT)
        self.unsignaled = 0    # fire-and-forget batches (off critical path)
        self.rpcs = 0
        self.retries = 0            # protocol-level retries (CAS races, ...)
        self.transport_retries = 0  # fault-layer retransmissions
        self.batches: List[dict] = []
        self.cur_phase = ""

    @property
    def duration_us(self) -> float:
        return (self.end_us or self.start_us) - self.start_us

    def phases(self) -> List[str]:
        """Phase labels of the signaled batches, in issue order."""
        return [b["phase"] for b in self.batches
                if not b.get("unsignaled") and b["kind"] == "batch"]

    def verb_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for batch in self.batches:
            for verb in batch.get("verbs", ()):
                counts[verb["kind"]] = counts.get(verb["kind"], 0) + 1
        return counts

    def to_record(self) -> dict:
        """Flat dict for JSONL export (deterministic content)."""
        return {
            "type": "span",
            "sid": self.sid,
            "op": self.op,
            "cid": self.cid,
            "key": self.key.hex() if self.key is not None else None,
            "t0": self.start_us,
            "t1": self.end_us,
            "ok": self.ok,
            "outcome": self.outcome,
            "error": self.error,
            "rtts": self.rtts,
            "unsignaled": self.unsignaled,
            "rpcs": self.rpcs,
            "retries": self.retries,
            "transport_retries": self.transport_retries,
            "batches": self.batches,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.sid} {self.op} cid={self.cid} "
                f"rtts={self.rtts} ok={self.ok}>")


class Tracer:
    """Records spans and fabric events for one simulation environment.

    ``env`` may be left ``None``; the fabric binds it on attach.
    """

    def __init__(self, env=None, enabled: bool = True):
        self.env = env
        self.enabled = enabled
        self.spans: List[Span] = []        # in begin order
        self.orphan_batches: List[dict] = []   # batches outside any span
        self._stacks: Dict[object, List[Span]] = {}
        self._sid = itertools.count()
        # Alert spans (Monitor.finish / SLO trips) get negative sids from
        # their own counter, so operation spans keep the exact sids an
        # unmonitored run would assign (tests/test_trace_determinism.py
        # compares monitored clean runs minus alerts against unmonitored
        # runs byte-for-byte).
        self._alert_sid = itertools.count(1)
        # Optional online monitor (repro.obs.monitor): receives every
        # ended span.  None keeps end_span at one attribute check.
        self.monitor = None

    # ------------------------------------------------------------- spans
    def _stack(self) -> Optional[List[Span]]:
        proc = self.env.active_process if self.env is not None else None
        if proc is None:
            return None
        return self._stacks.setdefault(proc, [])

    def current_span(self) -> Optional[Span]:
        proc = self.env.active_process if self.env is not None else None
        if proc is None:
            return None
        stack = self._stacks.get(proc)
        return stack[-1] if stack else None

    def begin_span(self, op: str, cid: int, key: Optional[bytes] = None,
                   wrote: Optional[bytes] = None) -> Span:
        span = Span(next(self._sid), op, cid, self.env.now, key=key,
                    wrote=wrote)
        self.spans.append(span)
        stack = self._stack()
        if stack is not None:
            stack.append(span)
        return span

    def end_span(self, span: Span, ok: bool, outcome: Optional[str] = None,
                 error: Optional[str] = None,
                 value: Optional[bytes] = None,
                 existed: bool = False) -> None:
        span.end_us = self.env.now
        span.ok = ok
        span.outcome = outcome
        span.error = error
        span.value = value
        span.existed = existed
        proc = self.env.active_process
        stack = self._stacks.get(proc)
        if stack and span in stack:
            stack.remove(span)
        if proc is not None and not stack:
            self._stacks.pop(proc, None)
        if self.monitor is not None:
            self.monitor.on_span(span)

    def alert(self, op: str, t0: float, t1: float,
              outcome: Optional[str] = None) -> Span:
        """Record a monitor alert as a span over the offending window.

        ``op`` is an ``alert.*`` name (``alert.slo.<slo>``,
        ``alert.gray.<scope>``); the span lands in ``spans`` (so it is
        exported to Chrome traces and JSONL alongside the operations
        that caused it) under a negative sid and cid ``-1``."""
        span = Span(-next(self._alert_sid), op, -1, t0)
        span.end_us = t1
        span.ok = False
        span.outcome = outcome
        self.spans.append(span)
        return span

    def phase(self, name: str) -> None:
        """Label the next batches of the innermost active span."""
        span = self.current_span()
        if span is not None:
            span.cur_phase = name

    def note_retry(self) -> None:
        span = self.current_span()
        if span is not None:
            span.retries += 1

    def note_transport_retry(self, span: Optional[Span] = None) -> None:
        """A fault-layer retransmission.  The fabric's fault-aware paths
        run in their own delivery processes, so they pass the issuing
        span explicitly (captured at post time)."""
        if span is None:
            span = self.current_span()
        if span is not None:
            span.transport_retries += 1

    # ------------------------------------------------- fabric-side hooks
    def on_batch(self, ops, completions, t0: float, t1: float,
                 unsignaled: bool = False,
                 span: Optional[Span] = None) -> None:
        """Called by the fabric for every posted doorbell batch.

        ``span`` overrides process-based attribution when the batch
        completes inside a fabric-internal delivery process (fault
        injection) rather than the client's own process step.
        """
        record = {
            "kind": "batch",
            "phase": "",
            "t0": t0,
            "t1": t1,
            "verbs": [{"kind": verb_kind(op), "mn": op.mn_id,
                       "bytes": op_bytes(op),
                       "failed": comp.failed}
                      for op, comp in zip(ops, completions)],
        }
        if unsignaled:
            record["unsignaled"] = True
        if span is None:
            span = self.current_span()
        if span is not None:
            record["phase"] = span.cur_phase
            span.batches.append(record)
            if unsignaled:
                span.unsignaled += 1
            else:
                span.rtts += 1
        else:
            self.orphan_batches.append(record)

    def on_rpc(self, mn_id: int, name: str) -> dict:
        """Called by the fabric when an RPC is issued; returns the record
        whose ``t1`` the fabric fills in at completion."""
        record = {
            "kind": "rpc",
            "phase": "",
            "name": name,
            "mn": mn_id,
            "t0": self.env.now,
            "t1": None,
        }
        span = self.current_span()
        if span is not None:
            record["phase"] = span.cur_phase
            span.batches.append(record)
            span.rpcs += 1
        else:
            self.orphan_batches.append(record)
        return record

    # ----------------------------------------------------------- queries
    def spans_of(self, op: str) -> List[Span]:
        return [s for s in self.spans if s.op == op]

    def last_span(self, op: Optional[str] = None) -> Optional[Span]:
        for span in reversed(self.spans):
            if op is None or span.op == op:
                return span
        return None

    def clear(self) -> None:
        """Drop recorded data (stacks of live processes are kept)."""
        self.spans = []
        self.orphan_batches = []


class NullTracer:
    """Shared no-op tracer: the disabled fast path.

    Every hook is a no-op; the fabric and clients only ever check the
    ``enabled`` attribute before doing any tracing work.
    """

    enabled = False
    env = None
    monitor = None
    spans: List[Span] = []
    orphan_batches: List[dict] = []

    def begin_span(self, op: str, cid: int, key=None, wrote=None) -> None:
        return None

    def end_span(self, span, ok, outcome=None, error=None, value=None,
                 existed=False) -> None:
        pass

    def phase(self, name: str) -> None:
        pass

    def note_retry(self) -> None:
        pass

    def note_transport_retry(self, span=None) -> None:
        pass

    def current_span(self) -> None:
        return None

    def on_batch(self, ops, completions, t0, t1, unsignaled=False,
                 span=None) -> None:
        pass

    def on_rpc(self, mn_id: int, name: str) -> dict:
        return {}

    def alert(self, op: str, t0: float, t1: float, outcome=None) -> None:
        return None


NULL_TRACER = NullTracer()
