"""Metrics registry: counters, gauges, log-bucketed histograms, series.

The registry backs per-run reporting in the harness and the ``--metrics``
CLI flag.  Histograms are log-bucketed (default ~19% bucket growth, i.e.
4 buckets per octave) so p50/p99/p999 queries over microsecond latencies
cost O(buckets), not O(samples).

:func:`sample_fabric` spawns a DES process that periodically samples NIC
utilisation, NIC backlog and MN CPU queue depth from a live
:class:`~repro.rdma.fabric.Fabric` into time series — the quantities the
paper's throughput plateaus (Figs. 12-14) and the Clover CPU bottleneck
(Fig. 2) are made of.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries", "Metrics",
           "sample_fabric"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log-bucketed histogram for positive values (latencies, sizes).

    Bucket ``i`` covers ``(base * growth**(i-1), base * growth**i]``;
    values at or below ``base`` land in bucket 0.  Percentile queries
    return the upper bound of the bucket holding the requested rank — an
    over-estimate by at most one ``growth`` factor.

    Edge-case contract (pinned by ``tests/test_telemetry.py``):

    * **empty** — ``percentile(p)`` and ``mean`` return the sentinel
      ``0.0`` for every ``p``; callers distinguish "no data" from "all
      zero" via ``count == 0``, never via the sentinel value.
    * **single observation** — ``percentile(p)`` returns exactly the
      observed value for every ``p`` (the bucket upper bound is clamped
      to ``max_seen``), and ``mean`` equals the observation.
    """

    __slots__ = ("base", "growth", "_log_growth", "buckets", "count",
                 "total", "max_seen")

    def __init__(self, base: float = 0.1, growth: float = 2 ** 0.25):
        if base <= 0 or growth <= 1:
            raise ValueError("base must be > 0 and growth > 1")
        self.base = base
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0

    def _index(self, value: float) -> int:
        if value <= self.base:
            return 0
        return max(0, math.ceil(math.log(value / self.base)
                                / self._log_growth))

    def bound(self, index: int) -> float:
        """Upper bound of bucket ``index``."""
        return self.base * self.growth ** index

    def observe(self, value: float) -> None:
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_seen:
            self.max_seen = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]; 0.0 when empty."""
        if not self.count:
            return 0.0
        rank = min(self.count, max(1, math.ceil(p / 100.0 * self.count)))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                return min(self.bound(index), self.max_seen)
        return self.max_seen  # pragma: no cover - unreachable

    def summary(self) -> dict:
        return {"count": self.count, "mean": self.mean,
                "p50": self.percentile(50), "p99": self.percentile(99),
                "p999": self.percentile(99.9), "max": self.max_seen}


class TimeSeries:
    """Sampled ``(sim_time, value)`` points (NIC utilisation, queues).

    ``max_points`` bounds memory on long sweeps with stride-doubling
    uniform downsampling: only every ``stride``-th sample is retained,
    and whenever the retained set reaches the cap, every other point is
    dropped and the stride doubles.  Retained samples are always exactly
    the records whose index is a multiple of the current stride, so they
    stay uniformly spaced over the whole run, and between
    ``max_points/2`` and ``max_points`` points are held at any moment.
    The default ``None`` preserves the historical unbounded behaviour
    byte-for-byte.
    """

    __slots__ = ("points", "max_points", "_stride", "_n")

    def __init__(self, max_points: Optional[int] = None):
        if max_points is not None and max_points < 2:
            raise ValueError("max_points must be >= 2")
        self.points: List[Tuple[float, float]] = []
        self.max_points = max_points
        self._stride = 1
        self._n = 0

    def record(self, t: float, value: float) -> None:
        if self.max_points is None:
            self.points.append((t, value))
            return
        index = self._n
        self._n += 1
        if index % self._stride:
            return
        self.points.append((t, value))
        if len(self.points) >= self.max_points:
            del self.points[1::2]
            self._stride *= 2

    @property
    def values(self) -> List[float]:
        return [v for _t, v in self.points]

    def mean(self) -> float:
        values = self.values
        return sum(values) / len(values) if values else 0.0

    def peak(self) -> float:
        values = self.values
        return max(values) if values else 0.0

    def summary(self) -> dict:
        return {"samples": len(self.points), "mean": self.mean(),
                "peak": self.peak()}


class Metrics:
    """A named registry of counters, gauges, histograms and series.

    Instruments are created on first access, so call sites never need to
    pre-register anything::

        metrics.counter("ops.search").inc()
        metrics.histogram("latency_us.search").observe(4.2)
    """

    def __init__(self, max_series_points: Optional[int] = None):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, TimeSeries] = {}
        # Cap applied to every timeseries created by this registry (see
        # TimeSeries.max_points); None = unbounded, the historical
        # default.
        self.max_series_points = max_series_points

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge()
        return inst

    def histogram(self, name: str, base: float = 0.1,
                  growth: float = 2 ** 0.25) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(base, growth)
        return inst

    def timeseries(self, name: str) -> TimeSeries:
        inst = self.series.get(name)
        if inst is None:
            inst = self.series[name] = TimeSeries(
                max_points=self.max_series_points)
        return inst

    def names(self) -> List[str]:
        """Sorted names of every instrument currently registered."""
        return sorted(set(self.counters) | set(self.gauges)
                      | set(self.histograms) | set(self.series))

    def snapshot(self) -> dict:
        """Plain-data view of every instrument (sorted, deterministic)."""
        return {
            "counters": {k: self.counters[k].value
                         for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k].value for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].summary()
                           for k in sorted(self.histograms)},
            "series": {k: self.series[k].summary()
                       for k in sorted(self.series)},
        }


def sample_fabric(env, metrics: Metrics, fabric, interval_us: float = 50.0,
                  until_us: Optional[float] = None):
    """Spawn a process sampling NIC/CPU state into ``metrics`` series.

    Per memory node and direction: NIC utilisation over the last interval
    (busy-time delta / interval, averaged over the direction's ports),
    NIC backlog (microseconds of queued service, summed over rx ports),
    CPU wait-queue depth (summed over RPC shards), and CPU utilisation
    (granted core-time delta / interval / total cores).  On multi-queue
    nodes (``num_ports > 1``) each port additionally gets its own
    ``mn{i}.nic_{dir}.p{j}.util`` and ``.backlog_us`` series, and each
    RPC shard its own ``mn{i}.cpu.s{j}.queue_depth`` — the per-port
    tracks the profiler's blocking-edge ranking is read against.  On
    single-queue nodes the aggregates equal the classic series exactly
    and no per-port series appear, so existing outputs are unchanged.
    When the client read-spread policy is counting KV-block READs per
    replica (``fabric.stats.kv_replica_reads``), per-MN ``kv_reads``
    series and a cluster-wide ``kv_read_skew`` series (hottest replica's
    share of reads divided by the even share, 1.0 = perfectly balanced)
    are sampled too.  Returns the sampler process; it self-terminates at
    ``until_us`` when given, else runs as long as the simulation does.
    """

    def proc():
        last_busy: Dict[Tuple, float] = {}
        while until_us is None or env.now < until_us:
            yield env.timeout(interval_us)
            t = env.now
            for mn_id in sorted(fabric.nodes):
                node = fabric.nodes[mn_id]
                multi = node.num_ports > 1
                for direction, ports in (("rx", node.rx_ports),
                                         ("tx", node.tx_ports)):
                    busy_total = 0.0
                    for j, port in enumerate(ports):
                        key = (mn_id, direction, j)
                        delta = port.total_busy - last_busy.get(key, 0.0)
                        last_busy[key] = port.total_busy
                        busy_total += delta
                        if multi:
                            stem = f"mn{mn_id}.nic_{direction}.p{j}"
                            metrics.timeseries(f"{stem}.util").record(
                                t, min(1.0, delta / interval_us))
                            metrics.timeseries(f"{stem}.backlog_us").record(
                                t, port.backlog(t))
                    metrics.timeseries(
                        f"mn{mn_id}.nic_{direction}.util").record(
                        t, min(1.0, busy_total / (interval_us * len(ports))))
                metrics.timeseries(f"mn{mn_id}.nic.backlog_us").record(
                    t, node.rx_backlog(t))
                metrics.timeseries(f"mn{mn_id}.cpu.queue_depth").record(
                    t, float(sum(s.queue_length for s in node.cpus)))
                cpu_delta = 0.0
                for j, shard in enumerate(node.cpus):
                    cpu_key = (mn_id, "cpu", j)
                    cpu_delta += shard.total_busy - last_busy.get(cpu_key,
                                                                  0.0)
                    last_busy[cpu_key] = shard.total_busy
                    if node.rpc_shards > 1:
                        metrics.timeseries(
                            f"mn{mn_id}.cpu.s{j}.queue_depth").record(
                            t, float(shard.queue_length))
                metrics.timeseries(f"mn{mn_id}.cpu.util").record(
                    t, min(1.0, cpu_delta
                           / (interval_us * node.cpu_capacity)))
            replica_reads = fabric.stats.kv_replica_reads
            total_reads = sum(replica_reads.values())
            if total_reads:
                for mn_id in sorted(replica_reads):
                    metrics.timeseries(f"mn{mn_id}.kv_reads").record(
                        t, float(replica_reads[mn_id]))
                even_share = total_reads / len(replica_reads)
                metrics.timeseries("kv_read_skew").record(
                    t, max(replica_reads.values()) / even_share)

    return env.process(proc(), name="metrics-sampler")
