"""Trace and metrics exporters.

Three output shapes:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format
  (load the file in https://ui.perfetto.dev or ``chrome://tracing``).
  KV-op spans appear as complete events on one track per client; verbs
  and RPCs appear on one track per memory node.
* :func:`jsonl_lines` / :func:`write_jsonl` — one JSON object per line
  (spans first, then out-of-span fabric events), with sorted keys and
  compact separators so identical runs produce identical bytes.
* :func:`summary_table` — a plain-text per-op digest (count, RTTs,
  retries, latency) for terminals and reports.
"""

from __future__ import annotations

import json
from typing import List

from .metrics import Metrics
from .tracer import Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "jsonl_lines",
           "write_jsonl", "summary_table", "metrics_table"]

_CLIENT_PID = 1
_FABRIC_PID = 2
_COUNTER_PID = 3


def _batch_events(record: dict, tid_args: dict) -> List[dict]:
    """Fabric-track events for one batch/RPC record."""
    events = []
    if record["kind"] == "rpc":
        t1 = record["t1"] if record["t1"] is not None else record["t0"]
        events.append({
            "name": f"rpc:{record['name']}", "cat": "rpc", "ph": "X",
            "ts": record["t0"], "dur": max(0.0, t1 - record["t0"]),
            "pid": _FABRIC_PID, "tid": record["mn"],
            "args": {"phase": record["phase"], **tid_args},
        })
        return events
    duration = max(0.0, record["t1"] - record["t0"])
    for verb in record["verbs"]:
        events.append({
            "name": verb["kind"].upper(), "cat": "verb", "ph": "X",
            "ts": record["t0"], "dur": duration,
            "pid": _FABRIC_PID, "tid": verb["mn"],
            "args": {"bytes": verb["bytes"], "phase": record["phase"],
                     "failed": verb["failed"],
                     "unsignaled": bool(record.get("unsignaled")),
                     **tid_args},
        })
    return events


def chrome_trace(tracer: Tracer, metrics: Metrics = None) -> dict:
    """Build a Chrome ``trace_event`` object from recorded spans/events.

    When ``metrics`` is given, every recorded :class:`TimeSeries` (NIC
    utilisation/backlog, MN CPU queue depth and utilisation from
    :func:`sample_fabric`) becomes a counter track (``ph: "C"``) so
    resource saturation lines up under the spans in the timeline UI.
    """
    events: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": _CLIENT_PID, "tid": 0,
         "args": {"name": "clients (KV-op spans)"}},
        {"name": "process_name", "ph": "M", "pid": _FABRIC_PID, "tid": 0,
         "args": {"name": "memory nodes (verbs)"}},
    ]
    client_tids = set()
    mn_tids = set()
    for span in tracer.spans:
        client_tids.add(span.cid)
        end = span.end_us if span.end_us is not None else span.start_us
        events.append({
            "name": span.op, "cat": "kvop", "ph": "X",
            "ts": span.start_us, "dur": max(0.0, end - span.start_us),
            "pid": _CLIENT_PID, "tid": span.cid,
            "args": {"sid": span.sid, "ok": span.ok, "outcome": span.outcome,
                     "rtts": span.rtts, "rpcs": span.rpcs,
                     "retries": span.retries,
                     "phases": span.phases()},
        })
        for record in span.batches:
            for event in _batch_events(record, {"op": span.op,
                                                "sid": span.sid}):
                mn_tids.add(event["tid"])
                events.append(event)
    for record in tracer.orphan_batches:
        for event in _batch_events(record, {"op": None, "sid": None}):
            mn_tids.add(event["tid"])
            events.append(event)
    for cid in sorted(client_tids):
        # Monitor alert spans carry cid -1 so they share a track above
        # the per-client tracks instead of impersonating a client.
        name = "alerts" if cid == -1 else f"client {cid}"
        events.append({"name": "thread_name", "ph": "M", "pid": _CLIENT_PID,
                       "tid": cid, "args": {"name": name}})
    for mn in sorted(mn_tids):
        events.append({"name": "thread_name", "ph": "M", "pid": _FABRIC_PID,
                       "tid": mn, "args": {"name": f"MN {mn}"}})
    if metrics is not None and metrics.series:
        events.append({"name": "process_name", "ph": "M",
                       "pid": _COUNTER_PID, "tid": 0,
                       "args": {"name": "resource counters"}})
        for name in sorted(metrics.series):
            for t, value in metrics.series[name].points:
                events.append({"name": name, "cat": "counter", "ph": "C",
                               "ts": t, "pid": _COUNTER_PID, "tid": 0,
                               "args": {"value": value}})
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"time_unit": "simulated microseconds"}}


def write_chrome_trace(tracer: Tracer, path, metrics: Metrics = None) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metrics=metrics), fh)


def jsonl_lines(tracer: Tracer) -> List[str]:
    """Deterministic JSONL rendering: spans, then out-of-span events."""
    records = [span.to_record() for span in tracer.spans]
    records.extend({"type": "fabric_event", **record}
                   for record in tracer.orphan_batches)
    return [json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in records]


def write_jsonl(tracer: Tracer, path) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(tracer):
            fh.write(line + "\n")


def summary_table(tracer: Tracer) -> str:
    """Per-op digest of the recorded spans, as an aligned text table."""
    by_op = {}
    for span in tracer.spans:
        by_op.setdefault(span.op, []).append(span)
    headers = ["op", "count", "ok", "mean_us", "mean_rtts", "max_rtts",
               "rpcs", "retries"]
    rows = []
    for op in sorted(by_op):
        spans = by_op[op]
        done = [s for s in spans if s.end_us is not None]
        rows.append([
            op, str(len(spans)), str(sum(1 for s in spans if s.ok)),
            f"{(sum(s.duration_us for s in done) / len(done)):.3f}"
            if done else "-",
            f"{(sum(s.rtts for s in spans) / len(spans)):.2f}",
            str(max(s.rtts for s in spans)),
            str(sum(s.rpcs for s in spans)),
            str(sum(s.retries for s in spans)),
        ])
    if not rows:
        return "(no spans recorded)"
    widths = [max(len(h), *(len(r[i]) for r in rows))
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in rows)
    return "\n".join(lines)


def metrics_table(metrics: Metrics) -> str:
    """Plain-text rendering of a metrics snapshot."""
    snap = metrics.snapshot()
    lines: List[str] = []
    if snap["counters"]:
        lines.append("counters:")
        lines.extend(f"  {name:<32} {value}"
                     for name, value in snap["counters"].items())
    if snap["gauges"]:
        lines.append("gauges:")
        lines.extend(f"  {name:<32} {value:.3f}"
                     for name, value in snap["gauges"].items())
    if snap["histograms"]:
        lines.append("histograms (p50/p99/p999 are bucket upper bounds):")
        for name, s in snap["histograms"].items():
            lines.append(
                f"  {name:<32} n={s['count']:<7} mean={s['mean']:.3f} "
                f"p50={s['p50']:.3f} p99={s['p99']:.3f} "
                f"p999={s['p999']:.3f} max={s['max']:.3f}")
    if snap["series"]:
        lines.append("series:")
        for name, s in snap["series"].items():
            lines.append(f"  {name:<32} samples={s['samples']:<6} "
                         f"mean={s['mean']:.3f} peak={s['peak']:.3f}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
