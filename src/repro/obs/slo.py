"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states a service-level objective over the KV
operation stream — a latency target ("p99 of search <= 8 us"), an error
-rate ceiling, or an availability floor.  Each spec defines an **error
budget**: the fraction of requests allowed to be bad (slower than the
latency threshold, failed, or unavailable).  Per window the monitor
computes the **burn rate** — the fraction of bad requests divided by
the budget, so burn 1.0 means "spending budget exactly as fast as
allowed" — and alerts Google-SRE style on *two* windows at once: the
alert fires only when both the fast window (default: the last pane) and
the slow window (default: the last 6 panes, merged) burn above the
threshold.  The fast window gives detection latency, the slow window
suppresses one-pane blips.

Specs parse from compact CLI strings (``--slo`` flags)::

    latency:search:p99:8.5     p99 of search latency <= 8.5 us
    latency:all:p99.9:40       p99.9 over all four KV ops <= 40 us
    errors:0.01                <= 1% of KV ops may fail
    availability:0.999         >= 99.9% of KV ops must succeed

Tripped windows are emitted into the tracer as ``alert.slo.<name>``
spans, so alerts land on the Chrome-trace timeline and in JSONL next to
the operations that caused them (docs/monitoring.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .windows import WindowStore

__all__ = ["SloSpec", "SloState", "KV_OPS"]

KV_OPS = ("search", "insert", "update", "delete")

# Stream names the monitor feeds from ended tracer spans.
LATENCY_STREAM = "span.latency_us.{op}"
OK_STREAM = "span.ok"
ERR_STREAM = "span.err"


@dataclass(frozen=True)
class SloSpec:
    """One objective.  ``budget`` is the allowed bad-request fraction."""

    kind: str                  # "latency" | "errors" | "availability"
    name: str
    op: str = "all"            # latency only: a KV op or "all"
    percentile: float = 99.0   # latency only
    threshold_us: float = 0.0  # latency only
    target: float = 0.0        # errors: max rate; availability: min rate

    @property
    def budget(self) -> float:
        if self.kind == "latency":
            return 1.0 - self.percentile / 100.0
        if self.kind == "errors":
            return self.target
        return 1.0 - self.target      # availability

    def describe(self) -> str:
        if self.kind == "latency":
            return (f"p{self.percentile:g}({self.op}) "
                    f"<= {self.threshold_us:g}us")
        if self.kind == "errors":
            return f"error rate <= {self.target:g}"
        return f"availability >= {self.target:g}"

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        """Parse a compact ``--slo`` string (see module docstring)."""
        parts = text.strip().split(":")
        kind = parts[0]
        try:
            if kind == "latency":
                op, pct, threshold = parts[1], parts[2], parts[3]
                if op != "all" and op not in KV_OPS:
                    raise ValueError(f"unknown op {op!r}")
                if not pct.startswith("p"):
                    raise ValueError("percentile must look like p99")
                percentile = float(pct[1:])
                if not 0.0 < percentile <= 100.0:
                    raise ValueError("percentile out of range")
                threshold_us = float(threshold)
                if not math.isfinite(threshold_us) or threshold_us <= 0.0:
                    raise ValueError("latency threshold must be a finite "
                                     "positive number")
                return cls(kind="latency", name=f"latency.{op}.{pct}",
                           op=op, percentile=percentile,
                           threshold_us=threshold_us)
            if kind == "errors":
                rate = float(parts[1])
                # NaN fails both range checks below, but spell the
                # rejection out: a NaN target makes every burn rate NaN.
                if not math.isfinite(rate) or not 0.0 <= rate < 1.0:
                    raise ValueError("error rate out of range")
                return cls(kind="errors", name="errors", target=rate)
            if kind == "availability":
                rate = float(parts[1])
                if not math.isfinite(rate) or not 0.0 < rate <= 1.0:
                    raise ValueError("availability out of range")
                return cls(kind="availability", name="availability",
                           target=rate)
        except (IndexError, ValueError) as exc:
            raise ValueError(
                f"bad SLO spec {text!r}: {exc} "
                "(expected latency:<op>:p<pct>:<us>, errors:<rate> "
                "or availability:<rate>)") from None
        raise ValueError(f"bad SLO spec {text!r}: unknown kind {kind!r}")


@dataclass
class SloAlert:
    """One tripped evaluation window."""

    pane: int
    t0: float
    t1: float
    burn_fast: float
    burn_slow: float
    bad: int
    total: int

    def to_dict(self) -> dict:
        return {"pane": self.pane, "t0": self.t0, "t1": self.t1,
                "burn_fast": self.burn_fast, "burn_slow": self.burn_slow,
                "bad": self.bad, "total": self.total}


class SloState:
    """Per-run evaluation state of one :class:`SloSpec`."""

    def __init__(self, spec: SloSpec, fast_panes: int = 1,
                 slow_panes: int = 6, burn_threshold: float = 2.0,
                 min_volume: int = 20):
        self.spec = spec
        self.fast_panes = max(1, fast_panes)
        self.slow_panes = max(self.fast_panes, slow_panes)
        self.burn_threshold = burn_threshold
        self.min_volume = min_volume
        self.windows_evaluated = 0
        self.windows_tripped = 0
        self.alerts: List[SloAlert] = []

    # ---------------------------------------------------------- internals
    def _bad_total(self, store: WindowStore, pane: int,
                   k: int) -> Tuple[int, int]:
        spec = self.spec
        if spec.kind == "latency":
            sketch = store.sketch(LATENCY_STREAM.format(op=spec.op),
                                  pane, k)
            return sketch.count_above(spec.threshold_us), sketch.count
        ok = store.count(OK_STREAM, pane, k)
        err = store.count(ERR_STREAM, pane, k)
        return int(err), int(ok + err)

    def _burn(self, bad: int, total: int) -> float:
        if not total:
            return 0.0
        frac = bad / total
        budget = self.spec.budget
        if budget <= 0.0:
            return float("inf") if bad else 0.0
        return frac / budget

    # ---------------------------------------------------------- evaluate
    def evaluate(self, store: WindowStore,
                 pane: int) -> Optional[SloAlert]:
        """Evaluate the pane that just closed; returns the alert if the
        multi-window burn-rate condition trips, else ``None``."""
        self.windows_evaluated += 1
        bad_fast, total_fast = self._bad_total(store, pane, self.fast_panes)
        bad_slow, total_slow = self._bad_total(store, pane, self.slow_panes)
        if total_slow < self.min_volume:
            return None
        burn_fast = self._burn(bad_fast, total_fast)
        burn_slow = self._burn(bad_slow, total_slow)
        # NaN burns compare False against any threshold and would slip
        # past the gate below as a nonsense alert; an idle pane (zero
        # arrivals in a diurnal trough) must simply not trip.
        if math.isnan(burn_fast) or math.isnan(burn_slow):
            return None
        if burn_fast < self.burn_threshold \
                or burn_slow < self.burn_threshold:
            return None
        self.windows_tripped += 1
        alert = SloAlert(pane=pane, t0=store.pane_start(pane),
                         t1=store.pane_start(pane + 1),
                         burn_fast=burn_fast, burn_slow=burn_slow,
                         bad=bad_fast, total=total_fast)
        self.alerts.append(alert)
        return alert

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "objective": self.spec.describe(),
            "budget": self.spec.budget,
            "burn_threshold": self.burn_threshold,
            "fast_panes": self.fast_panes,
            "slow_panes": self.slow_panes,
            "windows_evaluated": self.windows_evaluated,
            "windows_tripped": self.windows_tripped,
            "alerts": [alert.to_dict() for alert in self.alerts],
        }
