"""Critical-path analysis over the span/interval DAG.

The simulated analogue of ``perf top``: where did the *makespan* go, and
which operations blocked which?

Two complementary views:

* **Makespan walk** — the client whose last span ends latest defines the
  run's completion time.  That client's timeline is walked span by span;
  each span contributes its partitioned breakdown and the gaps between
  its spans are charged to ``client:idle`` (closed-loop think time /
  harness scheduling).  The result attributes the whole makespan to
  resource categories — additive, like the per-span breakdowns.
* **Blocking edges** — for every ``*_wait`` interval, the service
  intervals of *other* spans that occupied the same resource during the
  wait.  Aggregated by (blocker op, waiter op, resource) and ranked,
  these are the "top blocking edges": which op kinds make which other op
  kinds queue, and on what.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from .profile import Profiler, span_breakdown

__all__ = ["CriticalPath", "analyze_critical_path", "critical_report"]

#: Makespan-walk bucket for inter-span gaps on the defining client.
IDLE = ("client", "idle")


class CriticalPath:
    """Result of :func:`analyze_critical_path`."""

    def __init__(self):
        self.makespan_us = 0.0
        self.t0 = 0.0
        self.t1 = 0.0
        self.cid: Optional[int] = None      # client defining the makespan
        self.spans_on_path = 0
        #: ``(category, label) -> us`` over the defining client's timeline
        #: (plus :data:`IDLE`); values sum to ``makespan_us``.
        self.attribution: Dict[Tuple[str, str], float] = {}
        #: ``[(us, blocker_op, waiter_op, label), ...]`` ranked by weight.
        self.edges: List[Tuple[float, str, str, str]] = []

    def top_edges(self, n: int = 10) -> List[Tuple[float, str, str, str]]:
        return self.edges[:n]

    def to_dict(self) -> dict:
        return {
            "makespan_us": round(self.makespan_us, 6),
            "cid": self.cid,
            "spans_on_path": self.spans_on_path,
            "attribution_us": {f"{cat}:{label}": round(us, 6)
                               for (cat, label), us
                               in sorted(self.attribution.items())},
            "top_edges": [{"us": round(us, 6), "blocker": blocker,
                           "waiter": waiter, "resource": label}
                          for us, blocker, waiter, label
                          in self.edges[:20]],
        }


def analyze_critical_path(profiler: Profiler, spans) -> CriticalPath:
    """Attribute the makespan and rank blocking edges.

    ``spans`` is the span population (e.g. ``tracer.spans``); unfinished
    spans are ignored.  Deterministic: ties broken by span id.
    """
    result = CriticalPath()
    ended = [s for s in spans if s.end_us is not None]
    if not ended:
        return result
    t0 = min(s.start_us for s in ended)
    last = max(ended, key=lambda s: (s.end_us, s.sid))
    result.t0 = t0
    result.t1 = last.end_us
    result.makespan_us = last.end_us - t0
    result.cid = last.cid

    # --- makespan walk over the defining client's timeline -------------
    by_span: Dict[int, List[tuple]] = {}
    for span, cat, label, a, b in profiler.intervals:
        if span is not None:
            by_span.setdefault(id(span), []).append((cat, label, a, b))
    chain = sorted((s for s in ended if s.cid == last.cid),
                   key=lambda s: (s.start_us, s.sid))
    cursor = t0
    for span in chain:
        if span.end_us <= cursor:
            continue                      # nested/overlapping span: skip
        if span.start_us > cursor:
            result.attribution[IDLE] = (result.attribution.get(IDLE, 0.0)
                                        + span.start_us - cursor)
        lo = max(cursor, span.start_us)
        parts = span_breakdown(by_span.get(id(span), ()), lo, span.end_us)
        for key, us in parts.items():
            result.attribution[key] = result.attribution.get(key, 0.0) + us
        result.spans_on_path += 1
        cursor = span.end_us
    if last.end_us > cursor:
        result.attribution[IDLE] = (result.attribution.get(IDLE, 0.0)
                                    + last.end_us - cursor)

    # --- blocking edges -------------------------------------------------
    # Per resource label: sorted service timeline, then overlap each wait
    # interval against it.
    service: Dict[str, List[Tuple[float, float, object]]] = {}
    waits: List[Tuple[object, str, float, float]] = []
    for span, cat, label, a, b in profiler.intervals:
        if cat in ("cpu_service", "nic_service"):
            service.setdefault(label, []).append((a, b, span))
        elif cat in ("cpu_wait", "nic_wait") and span is not None:
            waits.append((span, label, a, b))
    for timeline in service.values():
        timeline.sort(key=lambda iv: iv[0])
    edges: Dict[Tuple[str, str, str], float] = {}
    starts_by_label = {label: [iv[0] for iv in timeline]
                       for label, timeline in service.items()}
    for waiter, label, a, b in waits:
        timeline = service.get(label, ())
        if not timeline:
            continue
        # Service intervals are sorted by start but can overlap on a
        # multi-core Resource, so step back far enough to catch services
        # that started earlier and were still running at the wait start
        # (bounded by core count; 32 is ample for every pool here).
        i = max(0, bisect_left(starts_by_label[label], a) - 32)
        for s0, s1, blocker in timeline[i:]:
            if s0 >= b:
                break
            overlap = min(s1, b) - max(s0, a)
            if overlap <= 0.0 or blocker is waiter:
                continue
            blocker_op = blocker.op if blocker is not None else "(unsignaled)"
            key = (blocker_op, waiter.op, label)
            edges[key] = edges.get(key, 0.0) + overlap
    result.edges = sorted(
        ((us, blocker, waiter, label)
         for (blocker, waiter, label), us in edges.items()),
        key=lambda e: (-e[0], e[1], e[2], e[3]))
    return result


def critical_report(cp: CriticalPath) -> str:
    """Text rendering of a :class:`CriticalPath`."""
    if cp.makespan_us <= 0.0:
        return "(no finished spans)"
    lines = [f"makespan: {cp.makespan_us:.1f} us "
             f"(defined by client {cp.cid}, {cp.spans_on_path} spans)"]
    for (cat, label), us in sorted(cp.attribution.items(),
                                   key=lambda kv: (-kv[1], kv[0])):
        pct = 100.0 * us / cp.makespan_us
        lines.append(f"  {cat + ':' + label:<36} {us:>12.2f} us  "
                     f"{pct:5.1f}%")
    if cp.edges:
        lines.append("top blocking edges (blocker -> waiter @ resource):")
        for us, blocker, waiter, label in cp.top_edges(10):
            lines.append(f"  {us:>12.2f} us  {blocker} -> {waiter} "
                         f"@ {label}")
    return "\n".join(lines)
