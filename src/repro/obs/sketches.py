"""Streaming sketches: relative-error quantiles and heavy hitters.

The telemetry plane (docs/monitoring.md) keeps per-window state O(1) in
the number of observations, so 1024-client sweeps can be watched live
without accumulating sample lists.  Two sketches cover it:

* :class:`DDSketch` — a relative-error quantile sketch in the style of
  DDSketch (Masson et al., VLDB'19).  Values land in geometric buckets
  ``gamma**i`` with ``gamma = (1 + alpha) / (1 - alpha)``; any quantile
  query is answered within relative error ``alpha`` of the exact sample
  at that rank.  Merging two sketches of equal ``alpha`` is exact bucket
  addition, hence associative and commutative — tumbling panes merge
  into sliding windows without losing the error bound.
* :class:`SpaceSaving` — the Space-Saving heavy-hitter summary (Metwally
  et al., ICDT'05) over at most ``capacity`` tracked keys.  Estimated
  counts never under-count, over-count by at most the tracked ``error``,
  and any key with true frequency above ``n / capacity`` is guaranteed
  to be tracked.

Both sketches are deterministic: no randomness, no ``id()``/``hash()``
ordering, stable tie-breaks — required by the repo's byte-identical
trace/report contract (tests/test_trace_determinism.py).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["DDSketch", "SpaceSaving"]


class DDSketch:
    """Quantile sketch with a guaranteed relative-error bound.

    ``alpha`` is the relative accuracy: for any quantile ``q``,
    ``|quantile(q) - exact_q| <= alpha * exact_q`` where ``exact_q`` is
    the exact sample at the same rank.  Non-negative values only; values
    at or below ``min_value`` (default 1e-9) collapse into an exact zero
    bucket, so idle-window utilisations and zero latencies cost nothing.
    """

    __slots__ = ("alpha", "gamma", "_mult", "min_value", "buckets",
                 "zero_count", "count", "total", "min_seen", "max_seen")

    def __init__(self, alpha: float = 0.01, min_value: float = 1e-9):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if min_value <= 0.0:
            raise ValueError("min_value must be > 0")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._mult = 1.0 / math.log(self.gamma)
        self.min_value = min_value
        self.buckets: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = 0.0

    # -------------------------------------------------------------- feed
    def _index(self, value: float) -> int:
        return math.ceil(math.log(value) * self._mult)

    def add(self, value: float, n: int = 1) -> None:
        # Validate BEFORE touching any state: a NaN passes `value < 0.0`
        # (False) and used to corrupt count/total/min/max on its way to
        # blowing up in _index, poisoning every later mean/quantile.
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                f"DDSketch stores finite non-negative values, got {value!r}")
        if n <= 0:
            return
        self.count += n
        self.total += value * n
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value
        if value <= self.min_value:
            self.zero_count += n
            return
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + n

    # ------------------------------------------------------------ queries
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1]; 0.0 when empty.

        Within relative error ``alpha`` of the exact sample at rank
        ``q * (count - 1)`` (nearest-rank, 0-based).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0.0
        rank = q * (self.count - 1)
        seen = self.zero_count
        if seen > rank:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen > rank:
                # Geometric midpoint of (gamma**(i-1), gamma**i]: within
                # alpha of every value the bucket can hold.
                return 2.0 * self.gamma ** index / (self.gamma + 1.0)
        return self.max_seen  # pragma: no cover - float-edge fallback

    def percentile(self, p: float) -> float:
        """Percentile in [0, 100] (same accuracy as :meth:`quantile`)."""
        return self.quantile(p / 100.0)

    def count_above(self, threshold: float) -> int:
        """How many observed values exceeded ``threshold``.

        Bucket-resolution approximation: the bucket containing
        ``threshold`` counts as *not* above, so the answer errs low by
        at most one bucket's population (a ``2*alpha`` value band).
        """
        if threshold < 0.0:
            return self.count
        if threshold <= self.min_value:
            return self.count - self.zero_count
        cut = self._index(threshold)
        return sum(n for index, n in self.buckets.items() if index > cut)

    # ------------------------------------------------------------- merge
    def merge(self, other: "DDSketch") -> "DDSketch":
        """Fold ``other`` into ``self`` (exact, associative) and return
        ``self``.  Both sketches must share the same ``alpha``."""
        if other.alpha != self.alpha:
            raise ValueError("cannot merge DDSketches of different alpha")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        if other.min_seen < self.min_seen:
            self.min_seen = other.min_seen
        if other.max_seen > self.max_seen:
            self.max_seen = other.max_seen
        return self

    def copy(self) -> "DDSketch":
        dup = DDSketch(self.alpha, self.min_value)
        dup.buckets = dict(self.buckets)
        dup.zero_count = self.zero_count
        dup.count = self.count
        dup.total = self.total
        dup.min_seen = self.min_seen
        dup.max_seen = self.max_seen
        return dup

    @classmethod
    def merged(cls, sketches: Iterable["DDSketch"],
               alpha: float = 0.01) -> "DDSketch":
        """A fresh sketch holding the union of ``sketches``."""
        out: Optional[DDSketch] = None
        for sketch in sketches:
            if out is None:
                out = sketch.copy()
            else:
                out.merge(sketch)
        return out if out is not None else cls(alpha)

    # ----------------------------------------------------------- export
    def summary(self) -> dict:
        return {"count": self.count, "mean": self.mean,
                "p50": self.quantile(0.50), "p99": self.quantile(0.99),
                "max": self.max_seen}

    def to_dict(self) -> dict:
        """Plain-data form (sorted, deterministic; JSONL-safe)."""
        return {
            "alpha": self.alpha,
            "zero_count": self.zero_count,
            "count": self.count,
            "total": self.total,
            "min": self.min_seen if self.count else None,
            "max": self.max_seen,
            "buckets": {str(i): self.buckets[i]
                        for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DDSketch":
        sketch = cls(alpha=data["alpha"])
        sketch.buckets = {int(i): n for i, n in data["buckets"].items()}
        sketch.zero_count = data["zero_count"]
        sketch.count = data["count"]
        sketch.total = data["total"]
        sketch.min_seen = (data["min"] if data["min"] is not None
                           else math.inf)
        sketch.max_seen = data["max"]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DDSketch alpha={self.alpha} count={self.count} "
                f"buckets={len(self.buckets)}>")


class SpaceSaving:
    """Space-Saving heavy-hitter summary over hashable keys.

    Tracks at most ``capacity`` keys.  When a new key arrives at a full
    summary, the tracked key with the smallest estimated count is
    evicted (stable tie-break: the least recently *installed* of the
    minima) and the newcomer inherits its count as ``error``.

    Guarantees (n = total offered weight):

    * ``estimate >= true count`` for every tracked key;
    * ``estimate - error <= true count`` (error is the possible
      over-count inherited at installation);
    * every key with true count > ``n / capacity`` is tracked.
    """

    __slots__ = ("capacity", "n", "_entries", "_seq")

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.n = 0
        # key -> [count, error, installed_seq]
        self._entries: Dict[object, List[int]] = {}
        self._seq = 0

    def offer(self, key, n: int = 1) -> None:
        if n <= 0:
            return
        self.n += n
        entry = self._entries.get(key)
        if entry is not None:
            entry[0] += n
            return
        if len(self._entries) < self.capacity:
            self._seq += 1
            self._entries[key] = [n, 0, self._seq]
            return
        victim_key, victim = min(self._entries.items(),
                                 key=lambda kv: (kv[1][0], kv[1][2]))
        del self._entries[victim_key]
        self._seq += 1
        self._entries[key] = [victim[0] + n, victim[0], self._seq]

    def estimate(self, key) -> Tuple[int, int]:
        """``(count, error)`` for ``key`` (0, 0 when untracked)."""
        entry = self._entries.get(key)
        return (entry[0], entry[1]) if entry is not None else (0, 0)

    def top(self, k: Optional[int] = None) -> List[Tuple[object, int, int]]:
        """``(key, count, error)`` rows, heaviest first (stable order)."""
        rows = sorted(self._entries.items(),
                      key=lambda kv: (-kv[1][0], kv[1][2]))
        if k is not None:
            rows = rows[:k]
        return [(key, entry[0], entry[1]) for key, entry in rows]

    def heavy_hitters(self, phi: float) -> List[Tuple[object, int, int]]:
        """Keys whose *guaranteed* count exceeds ``phi * n``."""
        floor = phi * self.n
        return [(key, count, error) for key, count, error in self.top()
                if count - error > floor]

    def to_dict(self, key_repr=repr) -> dict:
        return {
            "capacity": self.capacity,
            "n": self.n,
            "top": [{"key": key_repr(key), "count": count, "error": error}
                    for key, count, error in self.top()],
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SpaceSaving capacity={self.capacity} n={self.n} "
                f"tracked={len(self._entries)}>")
