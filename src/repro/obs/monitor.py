"""The online monitor: windows + sketches + SLOs + gray detection.

:class:`Monitor` composes the telemetry plane (docs/monitoring.md) over
one live cluster:

* a :class:`~repro.obs.windows.WindowStore` of tumbling panes fed from
  ended tracer spans (per-op latency sketches, ok/err counters) and —
  via :attr:`metrics` — from any harness metrics call site;
* optional Space-Saving hot-key / hot-bucket sketches fed from the
  client key-touch hook, plus per-MN skew from fabric op counters;
* :class:`~repro.obs.slo.SloState` burn-rate evaluation per closed
  pane, emitting ``alert.slo.*`` spans into the tracer;
* a :class:`~repro.obs.detect.GrayDetector` fed per-delivery service
  times from the fabric (``note_verb``/``note_rpc``) and per-port
  drop/op deltas, emitting ``alert.gray.*`` spans.

The monitor runs as one DES process that wakes at every pane boundary
(pure function of simulated time, so window edges are deterministic),
evaluates the pane that just closed, then prunes state older than the
longest sliding window — memory stays O(windows x instruments), never
O(operations).

The monitor only *observes*: it reads resource counters and listens to
hooks, never takes simulated time or resources, so an enabled monitor
does not perturb operation timing (asserted by
tests/test_trace_determinism.py: a monitored clean run's operation
records are byte-identical to the unmonitored run).  Detached, every
hook site is a single ``is None`` check (benchmarks/test_obs_overhead).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..rdma.verbs import CasOp, FaaOp, ReadOp, WriteOp
from .detect import GrayDetector
from .sketches import SpaceSaving
from .slo import ERR_STREAM, KV_OPS, OK_STREAM, SloSpec, SloState
from .windows import WindowStore, windowed_metrics

__all__ = ["MonitorConfig", "Monitor", "render_health", "write_health",
           "load_health", "health_fingerprint"]

_KV_OPS = frozenset(KV_OPS)
_VERB_KIND = {ReadOp: "read", WriteOp: "write", CasOp: "cas", FaaOp: "faa"}


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs of the telemetry plane (defaults match docs/monitoring.md)."""

    window_us: float = 250.0       # tumbling pane width (simulated us)
    alpha: float = 0.01            # DDSketch relative accuracy
    fast_panes: int = 1            # SLO fast window (panes)
    slow_panes: int = 6            # SLO slow window (panes, merged)
    burn_threshold: float = 2.0    # both windows must burn >= this
    min_volume: int = 20           # slow-window ops needed to alert
    hotkey_capacity: int = 0       # Space-Saving size; 0 = off
    detector: bool = True
    detect_rel: float = 2.0        # peer-median ratio to flag
    detect_z: float = 3.5          # robust z needed at >= 4 peers
    detect_min_count: int = 8      # observations per scope/family/pane
    drop_rate_threshold: float = 0.5
    keep_rows: int = 512           # health-report window rows retained


class Monitor:
    """Online telemetry over one cluster (see module docstring).

    Attach with :meth:`FuseeCluster.attach_monitor`, which wires the
    fabric service/drop hooks, the client key-touch hook and the tracer
    span hook, then starts the pane-boundary evaluation process.
    """

    def __init__(self, env, fabric, config: Optional[MonitorConfig] = None,
                 slos: Sequence[SloSpec] = (), race=None):
        self.env = env
        self.fabric = fabric
        self.config = cfg = config or MonitorConfig()
        self.race = race
        self.width = cfg.window_us
        self.windows = WindowStore(env, cfg.window_us, alpha=cfg.alpha)
        self.metrics = windowed_metrics(self.windows)
        self.slo_states = [
            SloState(spec, fast_panes=cfg.fast_panes,
                     slow_panes=cfg.slow_panes,
                     burn_threshold=cfg.burn_threshold,
                     min_volume=cfg.min_volume)
            for spec in slos]
        self.detector = GrayDetector(
            alpha=cfg.alpha, rel_threshold=cfg.detect_rel,
            z_threshold=cfg.detect_z, min_count=cfg.detect_min_count,
            drop_rate_threshold=cfg.drop_rate_threshold,
        ) if cfg.detector else None
        if cfg.hotkey_capacity > 0:
            self.hot_total = SpaceSaving(cfg.hotkey_capacity)
            self.bucket_total = SpaceSaving(cfg.hotkey_capacity)
            self._hot_panes: Dict[int, SpaceSaving] = {}
            self._bucket_panes: Dict[int, SpaceSaving] = {}
        else:
            self.hot_total = self.bucket_total = None
            self._hot_panes = self._bucket_panes = None
        # which MNs expose per-port scopes (single-port == the MN itself)
        self._multiport = {mn_id: node.num_ports > 1
                           for mn_id, node in fabric.nodes.items()}
        self.rows: List[dict] = []
        self.skew_rows: List[dict] = []
        self._last_port_ops: Dict[str, int] = {}
        self._last_port_drops: Dict[str, int] = {}
        self._last_mn_ops: Dict[int, int] = {}
        self._next_pane = 0
        self._panes_evaluated = 0
        self._running = False
        self._proc = None
        self._start_us: Optional[float] = None
        self.hook_calls = 0
        self._start_wall: Optional[float] = None
        self._eval_wall = 0.0
        self._health: Optional[dict] = None

    # ------------------------------------------------------------ wants
    @property
    def wants_keys(self) -> bool:
        return self.hot_total is not None

    # -------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Begin pane-boundary evaluation (idempotent)."""
        if self._running:
            return
        self._running = True
        self._start_wall = time.perf_counter()
        self._start_us = self.env.now
        self._next_pane = self.windows.current_pane
        # Baseline the fabric counters so the first pane sees deltas
        # from attach time, not from the (unmonitored) bulk load.
        stats = self.fabric.stats
        self._last_port_ops = dict(stats.per_port_ops)
        self._last_port_drops = dict(stats.per_port_drops)
        self._last_mn_ops = dict(stats.per_mn_ops)
        self._proc = self.env.process(self._tick(), name="monitor")

    def stop(self) -> None:
        self._running = False

    def _tick(self):
        width = self.width
        env = self.env
        while self._running:
            now = env.now
            next_edge = (int(now // width) + 1) * width
            yield env.timeout(next_edge - now)
            if not self._running:
                return
            self._evaluate_through(int(env.now // width) - 1)

    def finish(self) -> dict:
        """Stop, evaluate the final (possibly partial) pane, and build
        the health report (cached; safe to call repeatedly)."""
        if self._health is not None:
            return self._health
        self._running = False
        self._evaluate_through(self.windows.current_pane)
        self._health = self._build_health()
        return self._health

    # ------------------------------------------------------------ hooks
    def on_span(self, span) -> None:
        """Tracer hook: one ended span (called from ``Tracer.end_span``)."""
        op = span.op
        if op.startswith("alert."):
            return
        self.hook_calls += 1
        windows = self.windows
        duration = span.duration_us
        if op in _KV_OPS:
            windows.inc(OK_STREAM if span.ok else ERR_STREAM)
            windows.observe(f"span.latency_us.{op}", duration)
            windows.observe("span.latency_us.all", duration)
        else:
            windows.observe(f"span.latency_us.{op}", duration)

    def on_key(self, op: str, key: bytes) -> None:
        """Client hook: one KV-op key touch (hot-key tracking)."""
        if self.hot_total is None:
            return
        self.hook_calls += 1
        pane = int(self.env.now // self.width)
        sketch = self._hot_panes.get(pane)
        if sketch is None:
            sketch = self._hot_panes[pane] = SpaceSaving(
                self.config.hotkey_capacity)
        sketch.offer(key)
        self.hot_total.offer(key)
        if self.race is not None:
            meta = self.race.key_meta(key)
            bucket = (meta.subtable, meta.group1)
            bsketch = self._bucket_panes.get(pane)
            if bsketch is None:
                bsketch = self._bucket_panes[pane] = SpaceSaving(
                    self.config.hotkey_capacity)
            bsketch.offer(bucket)
            self.bucket_total.offer(bucket)

    def note_verb(self, mn_id: int, port_label: str, verb_cls, nbytes: int,
                  service_us: float, n: int = 1) -> None:
        """Fabric hook: one NIC serialisation slot's service time."""
        detector = self.detector
        if detector is None:
            return
        self.hook_calls += 1
        pane = int(self.env.now // self.width)
        family = (f"{_VERB_KIND.get(verb_cls, 'verb')}"
                  f"@{int(nbytes).bit_length()}")
        per_verb = service_us / n if n > 1 else service_us
        detector.observe(pane, f"mn{mn_id}", family, per_verb, n)
        if self._multiport.get(mn_id):
            detector.observe(pane, port_label, family, per_verb, n)

    def note_rpc(self, mn_id: int, shard_label: str, name: str,
                 cpu_us: float) -> None:
        """Fabric hook: one RPC handler's CPU service time."""
        detector = self.detector
        if detector is None:
            return
        self.hook_calls += 1
        pane = int(self.env.now // self.width)
        detector.observe(pane, shard_label, f"rpc:{name}", cpu_us)

    # --------------------------------------------------------- evaluate
    def _evaluate_through(self, last_pane: int) -> None:
        t_wall = time.perf_counter()
        while self._next_pane <= last_pane:
            self._evaluate_pane(self._next_pane)
            self._next_pane += 1
        self._eval_wall += time.perf_counter() - t_wall

    def _pane_deltas(self):
        stats = self.fabric.stats
        d_port: Dict[str, int] = {}
        for label, total in stats.per_port_ops.items():
            d_port[label] = total - self._last_port_ops.get(label, 0)
            self._last_port_ops[label] = total
        d_drop: Dict[str, int] = {}
        for label, total in stats.per_port_drops.items():
            d_drop[label] = total - self._last_port_drops.get(label, 0)
            self._last_port_drops[label] = total
        d_mn: Dict[int, int] = {}
        for mn_id, total in stats.per_mn_ops.items():
            d_mn[mn_id] = total - self._last_mn_ops.get(mn_id, 0)
            self._last_mn_ops[mn_id] = total
        port_rates = {label: (d_port.get(label, 0), d_drop.get(label, 0))
                      for label in set(d_port) | set(d_drop)}
        return port_rates, d_mn

    def _evaluate_pane(self, pane: int) -> None:
        cfg = self.config
        t0 = pane * self.width
        t1 = (pane + 1) * self.width
        tracer = self.fabric.tracer
        emit = tracer.enabled
        port_rates, d_mn = self._pane_deltas()

        # per-MN skew over the pane's verb dispatches
        skew = 1.0
        total_ops = sum(d_mn.values())
        if total_ops and len(d_mn) > 1:
            skew = max(d_mn.values()) / (total_ops / len(d_mn))
            self.skew_rows.append(
                {"pane": pane, "t0": t0, "skew": skew,
                 "per_mn": {f"mn{mn}": d_mn[mn] for mn in sorted(d_mn)}})
            del self.skew_rows[:-cfg.keep_rows]

        alerts = []
        for state in self.slo_states:
            alert = state.evaluate(self.windows, pane)
            if alert is not None:
                alerts.append(state.spec.name)
                if emit:
                    tracer.alert(
                        f"alert.slo.{state.spec.name}", alert.t0, alert.t1,
                        outcome=(f"burn_fast={alert.burn_fast:.2f} "
                                 f"burn_slow={alert.burn_slow:.2f} "
                                 f"bad={alert.bad}/{alert.total}"))

        flags = []
        if self.detector is not None:
            flags = self.detector.evaluate(pane, t0, t1, port_rates)
            for flag in flags:
                if emit:
                    tracer.alert(
                        f"alert.gray.{flag.scope}", t0, t1,
                        outcome=(f"{flag.kind} {flag.family} "
                                 f"rel={flag.rel:.2f} z={flag.z:.2f}"))
            self.detector.prune(pane + 1)

        latency = self.windows.sketch("span.latency_us.all", pane)
        row = {
            "pane": pane, "t0": t0, "t1": t1,
            "ops": int(self.windows.count(OK_STREAM, pane)),
            "errors": int(self.windows.count(ERR_STREAM, pane)),
            "p50_us": latency.quantile(0.50),
            "p99_us": latency.quantile(0.99),
            "mn_skew": skew,
        }
        if self._hot_panes is not None:
            hot = self._hot_panes.pop(pane, None)
            if hot is not None:
                row["hot_keys"] = [
                    {"key": _key_repr(key), "count": count, "error": error}
                    for key, count, error in hot.top(5)]
            buckets = self._bucket_panes.pop(pane, None)
            if buckets is not None:
                row["hot_buckets"] = [
                    {"bucket": _key_repr(key), "count": count,
                     "error": error}
                    for key, count, error in buckets.top(3)]
        if alerts:
            row["alerts"] = alerts
        if flags:
            row["flags"] = [flag.scope for flag in flags]
        self.rows.append(row)
        del self.rows[:-cfg.keep_rows]
        self._panes_evaluated += 1

        # bound memory: keep only the panes future sliding windows need
        max_slow = max([cfg.slow_panes]
                       + [s.slow_panes for s in self.slo_states])
        self.windows.prune(pane - max_slow + 2)

    # ------------------------------------------------------------ health
    def _build_health(self) -> dict:
        cfg = self.config
        wall = (time.perf_counter() - self._start_wall
                if self._start_wall is not None else 0.0)
        health: dict = {
            "config": {
                "window_us": cfg.window_us,
                "alpha": cfg.alpha,
                "fast_panes": cfg.fast_panes,
                "slow_panes": cfg.slow_panes,
                "burn_threshold": cfg.burn_threshold,
                "hotkey_capacity": cfg.hotkey_capacity,
                "detector": cfg.detector,
                "detect_rel": cfg.detect_rel,
                "detect_z": cfg.detect_z,
            },
            "run": {
                "start_us": self._start_us,
                "end_us": self.env.now,
                "panes_evaluated": self._panes_evaluated,
            },
            "windows": {"width_us": self.width, "rows": self.rows},
            "slos": [state.to_dict() for state in self.slo_states],
            "detector": (self.detector.to_dict()
                         if self.detector is not None else None),
            "hot_keys": (self.hot_total.to_dict(_key_repr)
                         if self.hot_total is not None else None),
            "hot_buckets": (self.bucket_total.to_dict(_key_repr)
                            if self.bucket_total is not None else None),
            "mn_skew": self.skew_rows,
            # Wall-clock cost of running the monitor: the evaluation
            # share is monitor-only work; hook calls approximate the
            # per-observation overhead (each is O(1) dict/sketch work).
            "overhead": {
                "run_wall_s": wall,
                "eval_wall_s": self._eval_wall,
                "eval_share": (self._eval_wall / wall) if wall > 0 else 0.0,
                "hook_calls": self.hook_calls,
            },
        }
        return health


def _key_repr(key) -> str:
    if isinstance(key, bytes):
        try:
            text = key.decode("ascii")
            if text.isprintable():
                # YCSB-style keys end in the interesting digits; keep the
                # tail when truncating.
                return text if len(text) <= 24 else "…" + text[-23:]
        except UnicodeDecodeError:
            pass
        return key.hex()
    if isinstance(key, tuple):
        return "st{}/g{}".format(*key)
    return repr(key)


# ---------------------------------------------------------------------------
# Health artifact: text render + JSON round trip
# ---------------------------------------------------------------------------
def render_health(health: dict) -> str:
    """Human-readable end-of-run health report."""
    run = health["run"]
    lines = [
        "== health report ==",
        f"window {health['windows']['width_us']:g}us, "
        f"{run['panes_evaluated']} pane(s) evaluated over "
        f"[{run['start_us']:.0f}, {run['end_us']:.0f}]us",
    ]
    rows = health["windows"]["rows"]
    if rows:
        shown = rows[-8:]
        lines.append(f"last {len(shown)} window(s):")
        for row in shown:
            extra = ""
            if row.get("alerts"):
                extra += "  ALERT " + ",".join(row["alerts"])
            if row.get("flags"):
                extra += "  FLAG " + ",".join(row["flags"])
            if row.get("hot_keys"):
                top = row["hot_keys"][0]
                extra += f"  hot={top['key']}x{top['count']}"
            lines.append(
                f"  [{row['t0']:>8.0f}] ops={row['ops']:<6d} "
                f"err={row['errors']:<4d} p50={row['p50_us']:.2f}us "
                f"p99={row['p99_us']:.2f}us skew={row['mn_skew']:.2f}"
                + extra)
    for slo in health["slos"]:
        lines.append(
            f"slo {slo['name']}: {slo['objective']} — "
            f"{slo['windows_tripped']}/{slo['windows_evaluated']} "
            f"window(s) tripped"
            + (f", first alert at {slo['alerts'][0]['t0']:.0f}us"
               if slo["alerts"] else ""))
    detector = health.get("detector")
    if detector is not None:
        flags = detector["flags"]
        lines.append(f"gray detector: {len(flags)} flag(s) over "
                     f"{len(detector['scopes_seen'])} scope(s)")
        for flag in flags[:12]:
            lines.append(
                f"  [{flag['t0']:>8.0f}] {flag['scope']} {flag['kind']} "
                f"{flag['family']} rel={flag['rel']:.2f} "
                f"z={flag['z']:.2f}")
        if len(flags) > 12:
            lines.append(f"  ... and {len(flags) - 12} more")
    hot = health.get("hot_keys")
    if hot is not None and hot["top"]:
        top = ", ".join(f"{row['key']}x{row['count']}"
                        for row in hot["top"][:5])
        lines.append(f"hot keys (run total, n={hot['n']}): {top}")
    buckets = health.get("hot_buckets")
    if buckets is not None and buckets["top"]:
        top = ", ".join(f"{row['key']}x{row['count']}"
                        for row in buckets["top"][:3])
        lines.append(f"hot buckets: {top}")
    overhead = health["overhead"]
    lines.append(
        f"monitor overhead: {overhead['eval_wall_s'] * 1e3:.1f}ms "
        f"evaluation ({overhead['eval_share'] * 100:.1f}% of monitored "
        f"wall), {overhead['hook_calls']} hook calls")
    return "\n".join(lines)


def write_health(health: dict, path) -> None:
    """Write the JSON health artifact (sorted keys, trailing newline)."""
    with open(path, "w") as fh:
        json.dump(health, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_health(path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def health_fingerprint(health: dict) -> str:
    """Deterministic serialisation of the health report: everything but
    the wall-clock ``overhead`` section (byte-identical across same-seed
    runs; see tests/test_trace_determinism.py)."""
    data = {key: value for key, value in health.items()
            if key != "overhead"}
    return json.dumps(data, sort_keys=True, separators=(",", ":"))
