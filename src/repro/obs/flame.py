"""Folded-stack flamegraph export for latency attribution.

Each profiled span contributes frames ``op;phase;leaf`` where the leaf is
``<resource> <kind>`` — e.g. ``insert;kv.cas;mn0.nic_rx wait`` — and the
value is simulated microseconds.  Lines are the classic *folded stacks*
format consumed by ``flamegraph.pl`` and speedscope::

    insert;kv.cas;mn0.nic_rx wait 12.400000
    insert;(op);client compute 3.100000

Values carry six decimals (``flamegraph.pl`` accepts fractional counts);
the sum of every line equals the sum of span durations, because each
line's value comes from the additive per-span partition of
:func:`repro.obs.profile.span_breakdown`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .profile import Profiler, span_breakdown

__all__ = ["folded_stacks", "write_folded"]

#: Leaf wording per category.
_KIND_WORD = {
    "cpu_service": "service",
    "cpu_wait": "wait",
    "nic_service": "service",
    "nic_wait": "wait",
    "backoff": "backoff",
    "propagation": "propagation",
    "client": "compute",
}


def _phase_lookup(span) -> List[Tuple[float, float, str]]:
    """Phase windows of a span, from its traced batch records."""
    windows = []
    for record in getattr(span, "batches", ()):
        t1 = record.get("t1")
        if t1 is None:
            continue
        windows.append((record["t0"], t1, record.get("phase") or "(op)"))
    windows.sort()
    return windows


def _phase_at(windows: List[Tuple[float, float, str]], t: float) -> str:
    """Phase label covering time ``t`` (last matching window wins)."""
    hit = "(op)"
    for w0, w1, phase in windows:
        if w0 > t:
            break
        if t < w1:
            hit = phase
    return hit


def folded_stacks(profiler: Profiler, spans) -> List[str]:
    """Folded flamegraph lines for the ended spans, sorted and summed.

    The per-span partition is recomputed *per segment* so each piece of a
    span can be filed under the phase (batch label) active at that time;
    systems without phase tracing collapse to the ``(op)`` pseudo-phase.
    """
    by_span: Dict[int, List[tuple]] = {}
    for span, cat, label, a, b in profiler.intervals:
        if span is not None:
            by_span.setdefault(id(span), []).append((cat, label, a, b))
    totals: Dict[str, float] = {}
    for span in spans:
        if span.end_us is None:
            continue
        windows = _phase_lookup(span)
        intervals = by_span.get(id(span), ())
        # Partition phase window by phase window so segments inherit the
        # right label; the windows never overlap the residual outside
        # them, which files under the op-level pseudo-phase.
        cuts = sorted({span.start_us, span.end_us}
                      | {t for w0, w1, _ in windows
                         for t in (w0, w1)
                         if span.start_us < t < span.end_us})
        for lo, hi in zip(cuts, cuts[1:]):
            phase = _phase_at(windows, lo)
            for (cat, label), us in span_breakdown(
                    intervals, lo, hi).items():
                if cat == "client":
                    leaf = f"client {label}"   # client post / client compute
                else:
                    leaf = f"{label} {_KIND_WORD[cat]}"
                stack = f"{span.op};{phase};{leaf}"
                totals[stack] = totals.get(stack, 0.0) + us
    return [f"{stack} {totals[stack]:.6f}" for stack in sorted(totals)]


def write_folded(profiler: Profiler, spans, path) -> None:
    with open(path, "w") as fh:
        for line in folded_stacks(profiler, spans):
            fh.write(line + "\n")
