"""Comparative gray-failure detection over windowed service times.

A gray failure (degraded-but-not-dead hardware: a slow NIC port, an
overheating MN, a wedged RPC core) is invisible to liveness checks — the
node still answers, just slowly.  The classic detection strategy is
**peer comparison**: in a homogeneous cluster, every MN / NIC port / RPC
shard should serve like its peers, so a scope whose per-window
service-time median diverges from the peer group is suspect.

Per closed window the detector scores every scope against its peers:

* **Service rule** — observations are per-delivery NIC/CPU service
  times, bucketed by *family* ``(verb kind, payload-size octave)`` (or
  RPC handler name) so scopes are only ever compared on like-for-like
  work, never confounded by a different verb or payload mix.  For each
  (peer class, family) with enough volume, a scope's median ``x`` is
  compared to the median of its peers' medians (leave-one-out):
  flagged when ``x / peer_median >= rel_threshold`` (default 2.0 —
  campaign gray factors are 4-8x) **and**, when 4+ peers exist, the
  robust z-score ``0.6745 * (x - peer_median) / MAD`` clears
  ``z_threshold`` (the MAD is floored at 5% of the peer median so a
  zero-variance clean group cannot divide by zero).  In a clean
  homogeneous bed every scope's median is the same pure function of
  (profile, verb, bytes), so the ratio is exactly 1.0 and the clean
  false-positive rate is structurally zero.
* **Drop rule** — a port whose requests vanish (port-scoped partition
  or link fault) produces *no* service observations, so it is caught by
  its per-window drop rate instead: flagged when
  ``drops / (drops + ops) >= drop_rate_threshold`` with at least
  ``drop_min_attempts`` attempts while the peer-median drop rate stays
  under 10%.

Scopes are labelled like the profiler's resources: ``mn0`` (whole-MN
verb service), ``mn0.nic_tx.p2`` (one port of a multi-queue NIC),
``mn0.cpu`` / ``mn0.cpu.s1`` (RPC shard).  Peer classes keep rx ports,
tx ports, MNs and shards in separate comparison pools.

:func:`detector_verdict` turns flags plus a seeded
:class:`~repro.faults.model.FaultPlan` into the campaign acceptance
verdict: every gray node / port-scoped fault must be flagged within a
bounded number of windows of onset, and every flag must be explained by
an active fault (unexplained flags are the false positives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .sketches import DDSketch

__all__ = ["DetectorFlag", "GrayDetector", "detector_verdict"]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _scope_class(scope: str) -> str:
    if ".nic_rx" in scope:
        return "rx-port"
    if ".nic_tx" in scope:
        return "tx-port"
    if ".cpu" in scope:
        return "shard"
    return "mn"


@dataclass
class DetectorFlag:
    """One (scope, window) anomaly."""

    scope: str
    scope_class: str
    kind: str            # "service" | "drops"
    family: str
    pane: int
    t0: float
    t1: float
    value: float         # median service us, or drop rate
    peer: float          # peer median of the same quantity
    rel: float
    z: float
    count: int

    def to_dict(self) -> dict:
        return {"scope": self.scope, "class": self.scope_class,
                "kind": self.kind, "family": self.family,
                "pane": self.pane, "t0": self.t0, "t1": self.t1,
                "value": self.value, "peer": self.peer,
                "rel": self.rel, "z": self.z, "count": self.count}


class GrayDetector:
    """Windowed peer-comparison scoring (see module docstring)."""

    def __init__(self, alpha: float = 0.01, rel_threshold: float = 2.0,
                 z_threshold: float = 3.5, min_count: int = 8,
                 min_gap_us: float = 0.05,
                 drop_rate_threshold: float = 0.5,
                 drop_min_attempts: int = 5):
        self.alpha = alpha
        self.rel_threshold = rel_threshold
        self.z_threshold = z_threshold
        self.min_count = min_count
        self.min_gap_us = min_gap_us
        self.drop_rate_threshold = drop_rate_threshold
        self.drop_min_attempts = drop_min_attempts
        # pane -> (scope, family) -> sketch of service times
        self._panes: Dict[int, Dict[Tuple[str, str], DDSketch]] = {}
        self.scopes_seen: set = set()
        self.flags: List[DetectorFlag] = []

    # -------------------------------------------------------------- feed
    def observe(self, pane: int, scope: str, family: str, value: float,
                n: int = 1) -> None:
        per_pane = self._panes.get(pane)
        if per_pane is None:
            per_pane = self._panes[pane] = {}
        key = (scope, family)
        sketch = per_pane.get(key)
        if sketch is None:
            sketch = per_pane[key] = DDSketch(self.alpha)
            self.scopes_seen.add(scope)
        sketch.add(value, n)

    # ---------------------------------------------------------- evaluate
    def evaluate(self, pane: int, t0: float, t1: float,
                 port_rates: Optional[Dict[str, Tuple[int, int]]] = None,
                 ) -> List[DetectorFlag]:
        """Score the pane that just closed; returns (and records) flags.

        ``port_rates`` maps port label -> ``(ops, drops)`` deltas for
        the pane (from ``FabricStats.per_port_ops`` /
        ``per_port_drops``), driving the drop rule.
        """
        flags = self._service_flags(pane, t0, t1)
        if port_rates:
            flags.extend(self._drop_flags(pane, t0, t1, port_rates))
        self.flags.extend(flags)
        return flags

    def _service_flags(self, pane: int, t0: float,
                       t1: float) -> List[DetectorFlag]:
        per_pane = self._panes.get(pane)
        if not per_pane:
            return []
        # (class, family) -> list of (scope, median, count)
        groups: Dict[Tuple[str, str], List[Tuple[str, float, int]]] = {}
        for (scope, family), sketch in per_pane.items():
            if sketch.count < self.min_count:
                continue
            groups.setdefault((_scope_class(scope), family), []).append(
                (scope, sketch.quantile(0.5), sketch.count))
        flags = []
        for (scope_class, family), rows in sorted(groups.items()):
            if len(rows) < 2:
                continue
            for scope, x, count in sorted(rows):
                others = [m for s, m, _c in rows if s != scope]
                peer_med = _median(others)
                if x - peer_med < self.min_gap_us:
                    continue
                rel = x / peer_med if peer_med > 0.0 else float("inf")
                mad = _median([abs(m - peer_med) for m in others])
                mad = max(mad, 0.05 * peer_med, 1e-9)
                z = 0.6745 * (x - peer_med) / mad
                if rel < self.rel_threshold:
                    continue
                if len(others) >= 4 and z < self.z_threshold:
                    continue
                flags.append(DetectorFlag(
                    scope=scope, scope_class=scope_class, kind="service",
                    family=family, pane=pane, t0=t0, t1=t1, value=x,
                    peer=peer_med, rel=rel, z=z, count=count))
        return flags

    def _drop_flags(self, pane: int, t0: float, t1: float,
                    port_rates: Dict[str, Tuple[int, int]],
                    ) -> List[DetectorFlag]:
        rates = {}
        for label, (ops, drops) in port_rates.items():
            attempts = ops + drops
            if attempts >= self.drop_min_attempts:
                rates[label] = (drops / attempts, attempts, drops)
        if len(rates) < 2:
            return []
        flags = []
        for label, (rate, attempts, drops) in sorted(rates.items()):
            if drops == 0 or rate < self.drop_rate_threshold:
                continue
            others = [r for other, (r, _a, _d) in rates.items()
                      if other != label]
            peer_med = _median(others)
            if peer_med > 0.1:
                continue    # cluster-wide loss, not a scoped fault
            rel = rate / peer_med if peer_med > 0.0 else float("inf")
            flags.append(DetectorFlag(
                scope=label, scope_class=_scope_class(label),
                kind="drops", family="drop_rate", pane=pane, t0=t0, t1=t1,
                value=rate, peer=peer_med, rel=rel,
                z=float("inf") if peer_med == 0.0 else rel,
                count=attempts))
        return flags

    # ------------------------------------------------------------- prune
    def prune(self, before_pane: int) -> None:
        for pane in [p for p in self._panes if p < before_pane]:
            del self._panes[pane]

    def to_dict(self) -> dict:
        return {
            "rel_threshold": self.rel_threshold,
            "z_threshold": self.z_threshold,
            "min_count": self.min_count,
            "scopes_seen": sorted(self.scopes_seen),
            "flags": [flag.to_dict() for flag in self.flags],
        }


# ---------------------------------------------------------------------------
# Campaign verdicts: flags vs the seeded fault plan
# ---------------------------------------------------------------------------
def _covers(mn_id: int, port: Optional[int], scope: str) -> bool:
    """Does a fault on ``mn_id`` (optionally scoped to ``port``) cover a
    flag on ``scope``?"""
    if not (scope == f"mn{mn_id}" or scope.startswith(f"mn{mn_id}.")):
        return False
    if port is None:
        return True
    # Port-scoped: the MN-level rollup or the matching port index.
    return "." not in scope or scope.endswith(f".p{port}")


def _active(start_us: float, end_us: float, t0: float, t1: float,
            slack_us: float) -> bool:
    return start_us < t1 and end_us > t0 - slack_us


def detector_verdict(plan, flags: List[DetectorFlag], width_us: float,
                     windows: int = 3,
                     traffic_end_us: Optional[float] = None) -> dict:
    """Score detector output against a seeded fault plan.

    *Expected*: every ``GrayNode`` and every port-scoped
    ``Partition``/lossy ``LinkFault`` must have a covering flag whose
    window closes within ``windows`` panes of the fault's onset.  A
    comparative detector can only see faults that requests actually
    experience, so with ``traffic_end_us`` set (the completion time of
    the run's last KV op) faults whose onset falls after it are not
    expected — e.g. a gray window seeded into a campaign's quiescent
    tail.  *Unexplained*: flags not covered by any fault active during
    (or one pane before) their window — the false positives.  A
    campaign's detector verdict is ``ok`` iff nothing is missed and
    nothing is unexplained.
    """
    def _observable(onset_us: float) -> bool:
        return traffic_end_us is None or onset_us < traffic_end_us

    expected = []
    for gray in plan.gray_nodes:
        if _observable(gray.start_us):
            expected.append({"fault": "gray", "mn": gray.mn_id,
                             "port": gray.port, "onset_us": gray.start_us,
                             "end_us": gray.end_us, "kinds": ("service",)})
    for part in plan.partitions:
        if part.port is not None and _observable(part.start_us):
            mn = part.b if part.a == "cn" else part.a
            expected.append({"fault": "partition", "mn": mn,
                             "port": part.port, "onset_us": part.start_us,
                             "end_us": part.end_us,
                             "kinds": ("drops", "service")})
    for link in plan.link_faults:
        if link.port is not None and link.drop_p > 0.0 \
                and link.mn_id is not None and _observable(link.start_us):
            expected.append({"fault": "link", "mn": link.mn_id,
                             "port": link.port, "onset_us": link.start_us,
                             "end_us": link.end_us,
                             "kinds": ("drops", "service")})

    caught = []
    missed = []
    deadline_panes = windows
    for exp in expected:
        hit = None
        for flag in flags:
            if flag.kind not in exp["kinds"]:
                continue
            if not _covers(exp["mn"], exp["port"], flag.scope):
                continue
            if flag.t1 <= exp["onset_us"]:
                continue
            if flag.t0 > exp["onset_us"] + deadline_panes * width_us:
                continue
            hit = flag
            break
        row = dict(exp)
        if hit is None:
            missed.append(row)
        else:
            row["flag_scope"] = hit.scope
            row["detected_at_us"] = hit.t1
            row["latency_windows"] = max(
                0, hit.pane - int(exp["onset_us"] // width_us))
            caught.append(row)

    unexplained = []
    for flag in flags:
        explained = False
        for gray in plan.gray_nodes:
            if _covers(gray.mn_id, None, flag.scope) \
                    and _active(gray.start_us, gray.end_us, flag.t0,
                                flag.t1, width_us):
                explained = True
                break
        if not explained and flag.kind == "drops":
            for part in plan.partitions:
                mn = part.b if part.a == "cn" else part.a
                if _covers(mn, None, flag.scope) \
                        and _active(part.start_us, part.end_us, flag.t0,
                                    flag.t1, width_us):
                    explained = True
                    break
            if not explained:
                for link in plan.link_faults:
                    if link.drop_p <= 0.0:
                        continue
                    if link.mn_id is not None \
                            and not _covers(link.mn_id, None, flag.scope):
                        continue
                    if _active(link.start_us, link.end_us, flag.t0,
                               flag.t1, width_us):
                        explained = True
                        break
        if not explained:
            unexplained.append(flag.to_dict())

    return {
        "expected": len(expected),
        "caught": caught,
        "missed": missed,
        "unexplained": unexplained,
        "ok": not missed and not unexplained,
    }
