"""System beds: uniform construction + execution adapters for FUSEE, its
variants (FUSEE-CR, FUSEE-NC), Clover, and pDPM-Direct.

Every bed exposes::

    bed.env          # the simulation environment
    bed.new_client() # -> a client object
    bed.execute      # (client, op, key, value) generator -> bool
    bed.load(items)  # bulk-load the dataset

so the closed-loop runner and the experiment functions can treat all
systems identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from ..baselines.clover import CloverCluster, CloverConfig
from ..baselines.pdpm import PdpmCluster, PdpmConfig
from ..core.addressing import RegionConfig
from ..core.client import ClientConfig
from ..core.kvstore import ClusterConfig, FuseeCluster
from ..core.race import RaceConfig
from ..rdma.fabric import FabricConfig
from .loader import clover_load, fusee_load, pdpm_load

__all__ = ["SystemBed", "fusee_bed", "clover_bed", "pdpm_bed"]


@dataclass
class SystemBed:
    name: str
    env: object
    cluster: object
    new_client: Callable[[], object]
    execute: Callable
    load: Callable[[Iterable[Tuple[bytes, bytes]]], int]


# ---------------------------------------------------------------- FUSEE
def _fusee_execute(client, op, key, value):
    if op == "search":
        result = yield from client.search(key)
        return result.ok
    if op == "update":
        result = yield from client.update(key, value)
        return result.ok
    if op == "insert":
        result = yield from client.insert(key, value)
        return result.ok
    if op == "delete":
        result = yield from client.delete(key)
        return result.ok
    raise ValueError(f"unknown op {op!r}")


def fusee_bed(n_memory_nodes: int = 2,
              replication_factor: int = 2,
              index_replication: Optional[int] = 1,
              dataset_bytes: int = 32 << 20,
              variant: str = "fusee",
              cache_threshold: float = 0.5,
              background_interval_us: float = 1000.0,
              race: Optional[RaceConfig] = None,
              max_clients: int = 256,
              mn_cpu_cores: int = 2,
              read_spread: str = "primary",
              max_coalesce_width: int = 1,
              coalesce_adaptive: bool = True,
              nic_ports: int = 1,
              rpc_shards: int = 1,
              port_affinity: str = "qp",
              replication: Optional[str] = None,
              tracer=None) -> SystemBed:
    """A FUSEE deployment sized for a given dataset.

    ``variant``: "fusee" (default), "fusee-cr" (sequential replication),
    "fusee-nc" (no client cache) or "fusee-swarm" (SWARM-style 1-RTT
    in-place slot replication).  The paper's §6.2/6.3 comparisons use
    one index replica and two data replicas, hence the defaults.
    ``replication`` names a registered slot-replication strategy
    explicitly ("snapshot" | "sequential" | "swarm"), overriding the
    variant's default.
    ``read_spread`` ("primary" | "round_robin" | "least_loaded") spreads
    KV READs across alive replicas; ``max_coalesce_width`` > 1 enables
    doorbell verb coalescing on the fabric (``coalesce_adaptive`` limits
    it to backlogged ports) — both default to the paper-faithful model.
    ``nic_ports`` > 1 gives every MN that many rx/tx NIC port pairs with
    per-QP ``port_affinity`` ("qp" | "rss"), and ``rpc_shards`` > 1
    splits each MN's RPC CPU into independent shards — the multi-queue
    scaling knobs (defaults model the paper's single-queue node).
    ``tracer`` (a :class:`repro.obs.Tracer`) observes every verb batch and
    client operation of the bed.
    """
    region = RegionConfig(region_size=1 << 22, block_size=1 << 16,
                          min_object_size=64)
    # Size the pool: dataset * replication + churn/grant headroom.
    need = dataset_bytes * replication_factor * 3 + (64 << 20)
    regions_per_mn = max(
        4, math.ceil(need / (region.region_size * n_memory_nodes)))
    variant_modes = {"fusee-cr": "sequential", "fusee-swarm": "swarm"}
    client_cfg = ClientConfig(
        replication_mode=replication or variant_modes.get(variant,
                                                          "snapshot"),
        cache_enabled=variant != "fusee-nc",
        cache_threshold=cache_threshold,
        read_spread=read_spread)
    config = ClusterConfig(
        n_memory_nodes=n_memory_nodes,
        replication_factor=replication_factor,
        index_replication=index_replication,
        regions_per_mn=regions_per_mn,
        max_clients=max_clients,
        region=region,
        race=race or RaceConfig(n_subtables=32, n_groups=256,
                                slots_per_bucket=7),
        fabric=FabricConfig(max_coalesce_width=max_coalesce_width,
                            coalesce_adaptive=coalesce_adaptive,
                            port_affinity=port_affinity),
        client=client_cfg,
        mn_cpu_cores=mn_cpu_cores,
        nic_ports=nic_ports,
        rpc_shards=rpc_shards,
    )
    cluster = FuseeCluster(config, tracer=tracer)
    loader_client = cluster.new_client()

    def new_client():
        client = cluster.new_client()
        if background_interval_us:
            client.start_background(background_interval_us)
        return client

    def load(items):
        return fusee_load(cluster, loader_client, items)

    return SystemBed(name=variant, env=cluster.env, cluster=cluster,
                     new_client=new_client, execute=_fusee_execute,
                     load=load)


# ---------------------------------------------------------------- Clover
def _clover_execute(client, op, key, value):
    if op == "search":
        result = yield from client.search(key)
        return result is not None
    if op == "update":
        return (yield from client.update(key, value))
    if op == "insert":
        return (yield from client.insert(key, value))
    raise ValueError(f"Clover does not support {op!r}")


def clover_bed(n_memory_nodes: int = 2,
               metadata_cores: int = 8,
               data_replicas: int = 2,
               dataset_bytes: int = 32 << 20) -> SystemBed:
    config = CloverConfig(
        n_memory_nodes=n_memory_nodes,
        data_replicas=min(data_replicas, n_memory_nodes),
        metadata_cores=metadata_cores,
        mn_capacity=max(1 << 28,
                        dataset_bytes * data_replicas * 8 // n_memory_nodes))
    cluster = CloverCluster(config)
    return SystemBed(name="clover", env=cluster.env, cluster=cluster,
                     new_client=cluster.new_client,
                     execute=_clover_execute,
                     load=lambda items: clover_load(cluster, items))


# ---------------------------------------------------------------- pDPM
def _pdpm_execute(client, op, key, value):
    if op == "search":
        result = yield from client.search(key)
        return result is not None
    if op == "update":
        return (yield from client.update(key, value))
    if op == "insert":
        return (yield from client.insert(key, value))
    if op == "delete":
        return (yield from client.delete(key))
    raise ValueError(f"unknown op {op!r}")


def pdpm_bed(n_memory_nodes: int = 2,
             data_replicas: int = 2,
             dataset_bytes: int = 32 << 20,
             n_keys_hint: int = 200_000) -> SystemBed:
    config = PdpmConfig(
        n_memory_nodes=n_memory_nodes,
        data_replicas=min(data_replicas, n_memory_nodes),
        n_buckets=max(4096, n_keys_hint // 4),
        record_area=max(1 << 25, dataset_bytes * 4),
    )
    cluster = PdpmCluster(config)
    return SystemBed(name="pdpm-direct", env=cluster.env, cluster=cluster,
                     new_client=cluster.new_client,
                     execute=_pdpm_execute,
                     load=lambda items: pdpm_load(cluster, items))
