"""Rendering helpers for experiment results: CSV, Markdown, ASCII charts.

Everything in the harness reports through :class:`ExperimentResult`
(headers + rows); these functions turn one into the formats a paper-repro
workflow wants — spreadsheets (CSV), READMEs (Markdown tables), and quick
terminal visualisation (bar charts for the timeline figures).
"""

from __future__ import annotations

import csv
import io
from typing import Optional, Sequence

from .experiments import ExperimentResult

__all__ = ["to_csv", "to_markdown", "ascii_bars", "render",
           "timeline_chart", "obs_report"]


def _cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def to_csv(result: ExperimentResult) -> str:
    """Comma-separated rendering (header row + data rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow([_cell(cell) for cell in row])
    return buffer.getvalue()


def to_markdown(result: ExperimentResult) -> str:
    """A GitHub-flavoured Markdown table with a title and notes."""
    lines = [f"### {result.name}: {result.title}", ""]
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(_cell(c) for c in row) + " |")
    if result.notes:
        lines.append("")
        lines.append(f"*{result.notes}*")
    return "\n".join(lines) + "\n"


def ascii_bars(values: Sequence[float], labels: Optional[Sequence] = None,
               width: int = 50, unit: str = "") -> str:
    """Horizontal bar chart; one row per value, scaled to ``width``."""
    if not values:
        return "(no data)"
    peak = max(values) or 1.0
    label_strs = [str(lbl) for lbl in (labels or range(len(values)))]
    label_w = max(len(s) for s in label_strs)
    lines = []
    for label, value in zip(label_strs, values):
        bar = "#" * max(0, round(value / peak * width))
        lines.append(f"{label:>{label_w}} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def timeline_chart(result: ExperimentResult, width: int = 50) -> str:
    """Bar chart for fig20/fig21-style (bucket, t, mops) tables."""
    if len(result.headers) < 3:
        raise ValueError("not a timeline result")
    values = [row[-1] for row in result.rows]
    labels = [f"t={row[1]:.0f}us" for row in result.rows]
    return (f"{result.title}\n"
            + ascii_bars(values, labels, width=width, unit=" Mops"))


def obs_report(tracer=None, metrics=None) -> str:
    """Combined audit text for a run: span summary + metrics registry.

    Either argument may be None; renders whichever observability sinks
    were attached (see ``repro.obs``).
    """
    from ..obs import metrics_table, summary_table

    sections = []
    if tracer is not None and tracer.spans:
        sections.append("== per-operation spans ==\n" + summary_table(tracer))
    if metrics is not None and metrics.names():
        sections.append("== metrics ==\n" + metrics_table(metrics))
    return "\n\n".join(sections) if sections else "(no observability data)"


def render(result: ExperimentResult, fmt: str = "table") -> str:
    """Render in one of: table (default), csv, md, chart."""
    if fmt == "table":
        return result.format()
    if fmt == "csv":
        return to_csv(result)
    if fmt == "md":
        return to_markdown(result)
    if fmt == "chart":
        return timeline_chart(result)
    raise ValueError(f"unknown format {fmt!r}")
