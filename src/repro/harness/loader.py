"""Fast dataset loading.

The paper preloads 100,000 keys before each YCSB run.  Driving every load
through the full simulated protocol is wasted wall-clock time (load-phase
performance is not measured), so the loaders below populate memory-node
``bytearray`` state directly — producing byte-for-byte the same layout the
normal INSERT path would (verified by ``tests/test_loader.py``) — while
registering ownership with the same allocators the clients use.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..baselines.clover import CloverCluster
from ..baselines.common import encode_record, record_size
from ..baselines.pdpm import PdpmCluster
from ..core.client import FuseeClient
from ..core.kvstore import FuseeCluster
from ..core.oplog import entry_for_alloc
from ..core.wire import OP_INSERT, encode_kv_block, kv_block_size, \
    kv_len_units, pack_slot

__all__ = ["fusee_load", "clover_load", "pdpm_load"]


def fusee_load(cluster: FuseeCluster, client: FuseeClient,
               items: Iterable[Tuple[bytes, bytes]]) -> int:
    """Bulk-load KV pairs through ``client``'s allocator, bypassing the DES.

    Every byte written matches what the INSERT path would produce
    (KV block + embedded log entry on all data replicas, slot words on all
    index replicas, block tables/heads via the allocator), so subsequent
    simulated operations behave identically to a protocol-driven load.
    """
    env = cluster.env
    loaded = 0
    for key, value in items:
        class_idx = client.allocator.class_for(
            kv_block_size(len(key), len(value)))
        # Drain the allocator generator synchronously: its only yields are
        # RPC/post events, which the env can run to completion.
        alloc = cluster.run_op(client.allocator.alloc(class_idx))
        entry = entry_for_alloc(alloc, OP_INSERT)
        block = encode_kv_block(key, value, alloc.size, entry)
        for mn_id, addr in cluster.region_map.translate(alloc.gaddr):
            node = cluster.fabric.node(mn_id)
            node.memory[addr:addr + len(block)] = block
        meta = cluster.race.key_meta(key)
        word = pack_slot(meta.fingerprint, kv_len_units(len(key), len(value)),
                         alloc.gaddr)
        ref = _pick_slot(cluster, meta)
        for mn_id, addr in ref.locations():
            cluster.fabric.node(mn_id).write_word(addr, word)
        client.cache.store(key, ref, word)
        loaded += 1
    return loaded


def _pick_slot(cluster: FuseeCluster, meta):
    """First empty candidate slot for a key, reading memory directly."""
    race = cluster.race
    ranges = race._combined_ranges(meta)
    placement = race.placement(meta.subtable)
    mn_id, base = placement[0]
    node = cluster.fabric.node(mn_id)
    for start, count in ranges:
        for i in range(count):
            index = start + i
            if node.read_word(base + index * 8) == 0:
                return race.slot_ref(meta.subtable, index)
    raise RuntimeError("index full during bulk load — enlarge RaceConfig")


def clover_load(cluster: CloverCluster, items) -> int:
    """Bulk-load records into a Clover cluster (index is server-side)."""
    cfg = cluster.config
    loaded = 0
    serial = 0
    for key, value in items:
        size = record_size(key, value)
        aligned = (size + 63) // 64 * 64
        serial += 1
        mns = cluster.replica_mns(serial)
        locs = []
        for mn in mns:
            base = cluster._bump[mn]
            cluster._bump[mn] += aligned
            if cluster._bump[mn] > cfg.mn_capacity:
                raise MemoryError("Clover pool exhausted during load")
            locs.append((mn, base))
        record = encode_record(key, value)
        for mn, addr in locs:
            node = cluster.fabric.node(mn)
            node.memory[addr:addr + len(record)] = record
        cluster._index[key] = (tuple(locs), size)
        loaded += 1
    return loaded


def pdpm_load(cluster: PdpmCluster, items) -> int:
    """Bulk-load records into a pDPM-Direct cluster."""
    cfg = cluster.config
    loaded = 0
    for key, value in items:
        primary_mn, offset = cluster.alloc_record()
        record = encode_record(key, value)
        if len(record) > cfg.record_capacity:
            raise ValueError("record exceeds pDPM slab capacity")
        for mn, addr in cluster.record_locs(primary_mn, offset):
            node = cluster.fabric.node(mn)
            node.memory[addr:addr + len(record)] = record
        bucket = cluster.bucket_of(key)
        word = cluster.slot_word(primary_mn, offset)
        node0 = cluster.fabric.node(cluster.index_mn)
        placed = False
        for i in range(cfg.slots_per_bucket):
            addr = cluster.bucket_addr(bucket) + 8 * (1 + i)
            if node0.read_word(addr) == 0:
                node0.write_word(addr, word)
                placed = True
                break
        if not placed:
            raise RuntimeError("pDPM bucket full during load — "
                               "enlarge n_buckets")
        loaded += 1
    return loaded
