"""One function per table/figure of the paper's evaluation (§2, §3, §6).

Every function returns an :class:`ExperimentResult` whose rows are the
series the corresponding paper artefact plots.  Absolute numbers are
simulated; the *shapes* (who wins, by what factor, where curves bend) are
the reproduction targets — see EXPERIMENTS.md for paper-vs-measured.

Scale: experiments accept a :class:`Scale`; ``Scale.bench()`` keeps each
experiment in seconds of wall-clock for the pytest-benchmark harness,
``Scale.full()`` is closer to the paper's setup (more clients, keys and
simulated time; minutes of wall-clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.fig3 import (
    ConsensusReplicatedObject,
    LockReplicatedObject,
    ReplicatedObjectBed,
    SnapshotReplicatedObject,
)
from ..core.client import CrashPoint, ClientCrashed
from ..workloads import MicroConfig, MicroWorkload, YcsbConfig, YcsbWorkload
from ..workloads.scenarios import SCENARIOS, get_scenario, tenant_report
from ..workloads.ycsb import key_bytes, make_value
from .runner import RunResult, cdf_points, percentile, run_closed_loop, \
    run_latency, run_open_loop
from .systems import SystemBed, clover_bed, fusee_bed, pdpm_bed

__all__ = [
    "Scale",
    "ExperimentResult",
    "fig02_clover_metadata_cpu",
    "fig03_serialization",
    "fig10_latency_cdf",
    "fig11_micro_throughput",
    "fig12_kv_sizes",
    "fig13_ycsb_scalability",
    "fig14_memory_nodes",
    "fig15_rw_ratio",
    "fig16_cache_threshold",
    "fig17_allocation",
    "fig18_replication_throughput",
    "fig19_replication_latency",
    "fig20_mn_crash",
    "fig21_elasticity",
    "scenario_suite",
    "table1_recovery",
    "ablation_oplog",
    "ablation_expansion",
    "resource_efficiency",
    "ALL_EXPERIMENTS",
]


@dataclass(frozen=True)
class Scale:
    """Knobs shrinking experiments below the paper's testbed size."""

    n_keys: int = 2_000
    kv_size: int = 1024
    n_clients: int = 32
    clients_sweep: Tuple[int, ...] = (4, 8, 16, 32)
    mns_sweep: Tuple[int, ...] = (2, 3, 4, 5)
    duration_us: float = 2_000.0
    warmup_us: float = 400.0
    latency_ops: int = 300
    seed: int = 42

    @classmethod
    def bench(cls) -> "Scale":
        return cls()

    @classmethod
    def tiny(cls) -> "Scale":
        return cls(n_keys=400, n_clients=8, clients_sweep=(2, 4, 8),
                   duration_us=800.0, warmup_us=200.0, latency_ops=60)

    @classmethod
    def full(cls) -> "Scale":
        return cls(n_keys=10_000, n_clients=128,
                   clients_sweep=(8, 16, 32, 64, 128),
                   duration_us=4_000.0, warmup_us=800.0, latency_ops=2_000)

    @classmethod
    def production(cls) -> "Scale":
        """Hundreds-to-a-thousand clients and 8-16 MNs: the scaling bed.

        Sized to show where the plateau moves once ``nic_ports`` /
        ``rpc_shards`` lift the single-queue tx-NIC wall (ISSUE 6); pair
        it with ``fig13_ycsb_scalability(..., nic_ports=4,
        rpc_shards=2)`` or the ``--nic-ports`` CLI flags.  The sweep
        reaches 1024 clients, which the kernel fast path (ISSUE 7)
        makes affordable — the beds assert the fast drain loop via
        ``run_closed_loop(fast=True)``.  Minutes of wall-clock.
        """
        return cls(n_keys=10_000, n_clients=256,
                   clients_sweep=(32, 64, 128, 256, 384, 512, 768, 1024),
                   mns_sweep=(2, 4, 8, 12, 16),
                   duration_us=3_000.0, warmup_us=600.0, latency_ops=2_000)


@dataclass
class ExperimentResult:
    name: str
    title: str
    headers: List[str]
    rows: List[List]
    notes: str = ""
    # Structured side-channel for results that don't fit a table (the
    # fig21 rebalance-phase attribution, per-tenant isolation reports).
    extras: Dict[str, object] = field(default_factory=dict)

    def format(self) -> str:
        widths = [len(h) for h in self.headers]
        str_rows = []
        for row in self.rows:
            cells = [f"{c:.3f}" if isinstance(c, float) else str(c)
                     for c in row]
            str_rows.append(cells)
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        lines = [f"== {self.name}: {self.title} =="]
        lines.append("  ".join(h.ljust(w)
                               for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in str_rows:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(cells, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


# ---------------------------------------------------------------- helpers
def _dataset(scale: Scale):
    return [(key_bytes(i), make_value(scale.kv_size - 24, salt=i))
            for i in range(scale.n_keys)]


def _ycsb_factory(scale: Scale, workload: str,
                  mix: Optional[Tuple[float, float, float]] = None,
                  kv_size: Optional[int] = None):
    config = YcsbConfig(workload=workload if mix is None else "A",
                        n_keys=scale.n_keys,
                        kv_size=kv_size or scale.kv_size, mix=mix)

    def factory(index: int):
        return YcsbWorkload(config, seed=scale.seed * 1_000 + index)

    return factory


def _run_ycsb(bed: SystemBed, scale: Scale, workload: str,
              n_clients: Optional[int] = None,
              mix: Optional[Tuple[float, float, float]] = None,
              kv_size: Optional[int] = None,
              collect_latency: bool = False) -> RunResult:
    clients = [bed.new_client() for _ in range(n_clients or scale.n_clients)]
    return run_closed_loop(
        bed.env, clients, _ycsb_factory(scale, workload, mix, kv_size),
        bed.execute, duration_us=scale.duration_us,
        warmup_us=scale.warmup_us, collect_latency=collect_latency)


def _loaded_bed(maker: Callable[[], SystemBed], scale: Scale) -> SystemBed:
    bed = maker()
    bed.load(_dataset(scale))
    return bed


# ======================================================================
# Motivation figures
# ======================================================================
def fig02_clover_metadata_cpu(scale: Optional[Scale] = None,
                              cores_sweep: Sequence[int] = (1, 2, 4, 6, 8)
                              ) -> ExperimentResult:
    """Fig. 2: Clover throughput vs metadata-server CPU cores."""
    scale = scale or Scale.bench()
    rows = []
    for cores in cores_sweep:
        bed = _loaded_bed(
            lambda: clover_bed(n_memory_nodes=2, metadata_cores=cores,
                               dataset_bytes=scale.n_keys * scale.kv_size),
            scale)
        result = _run_ycsb(bed, scale, "A")
        rows.append([cores, result.mops])
    return ExperimentResult(
        "fig02", "Clover throughput vs metadata-server CPUs (YCSB-A)",
        ["metadata_cores", "mops"], rows,
        notes="expect: rises with cores, saturates around ~6 (paper Fig. 2)")


def fig03_serialization(scale: Optional[Scale] = None,
                        clients_sweep: Optional[Sequence[int]] = None
                        ) -> ExperimentResult:
    """Fig. 3: consensus (Derecho-like) and lock replication don't scale."""
    scale = scale or Scale.bench()
    clients_sweep = clients_sweep or scale.clients_sweep
    rows = []
    for n_clients in clients_sweep:
        row = [n_clients]
        for system in ("consensus", "lock", "snapshot"):
            bed = ReplicatedObjectBed(replicas=2)
            if system == "consensus":
                obj = ConsensusReplicatedObject(bed)

                def execute(client, op, key, value, _obj=obj):
                    return (yield from _obj.write(value))
            elif system == "lock":
                obj = LockReplicatedObject(bed)

                def execute(client, op, key, value, _obj=obj):
                    return (yield from _obj.write(value, owner=client))
            else:
                obj = SnapshotReplicatedObject(bed)

                def execute(client, op, key, value, _obj=obj):
                    return (yield from _obj.write(value))

            class _Seq:
                def __init__(self, base):
                    self.serial = base

                def next_op(self):
                    self.serial += 1
                    return ("write", b"", self.serial)

            result = run_closed_loop(
                bed.env, list(range(1, n_clients + 1)),
                lambda i: _Seq((i + 1) << 32), execute,
                duration_us=scale.duration_us, warmup_us=scale.warmup_us)
            row.append(result.mops)
        rows.append(row)
    return ExperimentResult(
        "fig03", "Replicated-object write throughput vs clients",
        ["clients", "consensus_mops", "lock_mops", "snapshot_mops"], rows,
        notes="expect: consensus and lock flat/low (paper Fig. 3); "
              "snapshot scales")


# ======================================================================
# §6.2 microbenchmarks
# ======================================================================
_LAT_SYSTEMS = ("fusee", "clover", "pdpm-direct")


def _micro_ops(op: str, scale: Scale, loaded_keys: List[bytes]):
    """A deterministic op sequence for the latency study."""
    ops = []
    value = make_value(scale.kv_size - 24, salt=7)
    n = scale.latency_ops
    if op == "insert":
        ops = [("insert", f"lat-{i:08d}".encode(), value) for i in range(n)]
    elif op == "update":
        ops = [("update", loaded_keys[i % len(loaded_keys)], value)
               for i in range(n)]
    elif op == "search":
        ops = [("search", loaded_keys[i % len(loaded_keys)], None)
               for i in range(n)]
    elif op == "delete":
        # delete each key once; the sequence re-inserts to keep going
        ops = []
        for i in range(n):
            key = loaded_keys[i % len(loaded_keys)]
            ops.append(("delete", key, None))
            ops.append(("insert", key, value))
    return ops


def fig10_latency_cdf(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 10: per-op latency percentiles, single client (10k ops in the
    paper; ``scale.latency_ops`` here)."""
    scale = scale or Scale.bench()
    dataset = _dataset(scale)
    keys = [k for k, _v in dataset]
    rows = []
    for system in _LAT_SYSTEMS:
        if system == "fusee":
            bed = _loaded_bed(lambda: fusee_bed(
                dataset_bytes=scale.n_keys * scale.kv_size), scale)
        elif system == "clover":
            bed = _loaded_bed(lambda: clover_bed(
                dataset_bytes=scale.n_keys * scale.kv_size), scale)
        else:
            bed = _loaded_bed(lambda: pdpm_bed(
                dataset_bytes=scale.n_keys * scale.kv_size,
                n_keys_hint=scale.n_keys), scale)
        client = bed.new_client()
        for op in ("insert", "update", "search", "delete"):
            if system == "clover" and op == "delete":
                continue
            ops = _micro_ops(op, scale, keys)
            latencies = run_latency(bed.env, client, bed.execute, ops)
            if op == "delete":
                latencies = latencies[0::2]  # deletes only, not re-inserts
            if op == "insert":
                pass
            points = cdf_points(latencies, (50, 90, 99))
            rows.append([system, op, points[50], points[90], points[99]])
    return ExperimentResult(
        "fig10", "Request latency percentiles (us), single client",
        ["system", "op", "p50_us", "p90_us", "p99_us"], rows,
        notes="expect: FUSEE best INSERT/UPDATE; Clover best SEARCH; "
              "pDPM best DELETE (paper Fig. 10)")


def fig11_micro_throughput(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 11: per-op-type throughput with many clients."""
    scale = scale or Scale.bench()
    rows = []
    for op in ("insert", "update", "search", "delete"):
        row = [op]
        for system in _LAT_SYSTEMS:
            if system == "clover" and op == "delete":
                row.append(None)
                continue
            if system == "fusee":
                bed = _loaded_bed(lambda: fusee_bed(
                    dataset_bytes=scale.n_keys * scale.kv_size), scale)
            elif system == "clover":
                bed = _loaded_bed(lambda: clover_bed(
                    dataset_bytes=scale.n_keys * scale.kv_size), scale)
            else:
                bed = _loaded_bed(lambda: pdpm_bed(
                    dataset_bytes=scale.n_keys * scale.kv_size,
                    n_keys_hint=scale.n_keys * 4), scale)
            clients = [bed.new_client() for _ in range(scale.n_clients)]
            config = MicroConfig(op=op, n_keys=scale.n_keys,
                                 kv_size=scale.kv_size, use_ycsb_keys=True)

            def factory(index):
                return MicroWorkload(config, client_id=index,
                                     seed=scale.seed)

            result = run_closed_loop(bed.env, clients, factory, bed.execute,
                                     duration_us=scale.duration_us,
                                     warmup_us=scale.warmup_us)
            row.append(result.mops)
        rows.append(row)
    return ExperimentResult(
        "fig11", "Microbenchmark throughput (Mops)",
        ["op", "fusee", "clover", "pdpm_direct"], rows,
        notes="micro keys reuse the loaded 'user...' keyspace; "
              "expect FUSEE highest on writes, pDPM lowest (paper Fig. 11)")


# ======================================================================
# §6.3 YCSB
# ======================================================================
def fig12_kv_sizes(scale: Optional[Scale] = None,
                   sizes: Sequence[int] = (256, 512, 1024)
                   ) -> ExperimentResult:
    """Fig. 12: FUSEE throughput under different KV sizes."""
    scale = scale or Scale.bench()
    # The KV-size effect is a bandwidth-saturation effect (the paper ran
    # 128 clients); make sure the MN RNICs are actually the bottleneck.
    n_clients = max(scale.n_clients, 48)
    rows = []
    for kv_size in sizes:
        row = [kv_size]
        for workload in ("A", "C"):
            sub = replace(scale, kv_size=kv_size)
            bed = _loaded_bed(lambda: fusee_bed(
                dataset_bytes=scale.n_keys * kv_size), sub)
            result = _run_ycsb(bed, sub, workload, n_clients=n_clients)
            row.append(result.mops)
        rows.append(row)
    return ExperimentResult(
        "fig12", "FUSEE throughput vs KV size",
        ["kv_bytes", "ycsb_a_mops", "ycsb_c_mops"], rows,
        notes="expect YCSB-C +~44%/+~56% at 512B/256B vs 1KB "
              "(MN RNIC bandwidth bound, paper Fig. 12)")


def fig13_ycsb_scalability(scale: Optional[Scale] = None,
                           workloads: Sequence[str] = ("A", "B", "C", "D"),
                           systems: Sequence[str] = ("fusee", "clover",
                                                     "pdpm-direct"),
                           n_memory_nodes: int = 2,
                           nic_ports: int = 1,
                           rpc_shards: int = 1) -> ExperimentResult:
    """Fig. 13: throughput vs number of clients, per workload.

    ``nic_ports`` / ``rpc_shards`` (FUSEE only) run the sweep on
    multi-queue memory nodes — with ``Scale.production()`` this is the
    scaled bed that shows where the plateau lands once the single-queue
    tx-NIC wall is lifted.
    """
    scale = scale or Scale.bench()
    fusee_kw = {"nic_ports": nic_ports, "rpc_shards": rpc_shards,
                "max_clients": max(256, max(scale.clients_sweep) + 8)}
    rows = []
    for workload in workloads:
        for n_clients in scale.clients_sweep:
            row = [workload, n_clients]
            for system in systems:
                bed = _make_system(system, scale,
                                   n_memory_nodes=n_memory_nodes,
                                   **(fusee_kw if system == "fusee"
                                      else {}))
                result = _run_ycsb(bed, scale, workload,
                                   n_clients=n_clients)
                row.append(result.mops)
            rows.append(row)
    return ExperimentResult(
        "fig13", "YCSB throughput vs clients",
        ["workload", "clients"] + [s.replace("-", "_") for s in systems],
        rows,
        notes="expect: FUSEE scales; Clover flat (metadata CPU); pDPM "
              "collapses on writes (paper: 4.9x and 117x at 128 clients)")


def _make_system(system: str, scale: Scale, n_memory_nodes: int = 2,
                 **kw) -> SystemBed:
    dataset_bytes = scale.n_keys * scale.kv_size
    if system == "fusee":
        bed = fusee_bed(n_memory_nodes=n_memory_nodes,
                        dataset_bytes=dataset_bytes, **kw)
    elif system == "clover":
        bed = clover_bed(n_memory_nodes=n_memory_nodes,
                         dataset_bytes=dataset_bytes, **kw)
    elif system == "pdpm-direct":
        bed = pdpm_bed(n_memory_nodes=n_memory_nodes,
                       dataset_bytes=dataset_bytes,
                       n_keys_hint=scale.n_keys * 4, **kw)
    else:
        raise ValueError(f"unknown system {system!r}")
    bed.load(_dataset(scale))
    return bed


def fig14_memory_nodes(scale: Optional[Scale] = None,
                       mns_sweep: Optional[Sequence[int]] = None,
                       nic_ports: int = 1,
                       rpc_shards: int = 1) -> ExperimentResult:
    """Fig. 14: throughput vs number of memory nodes (fixed clients).

    The MN sweep comes from ``scale.mns_sweep`` unless overridden —
    ``Scale.production()`` sweeps 2-16 MNs; ``nic_ports`` /
    ``rpc_shards`` (FUSEE only) put multi-queue nodes under the sweep.
    """
    scale = scale or Scale.bench()
    mns_sweep = mns_sweep or scale.mns_sweep
    fusee_kw = {"nic_ports": nic_ports, "rpc_shards": rpc_shards,
                "max_clients": max(256, scale.n_clients + 8)}
    rows = []
    for workload in ("A", "C"):
        for n_mns in mns_sweep:
            row = [workload, n_mns]
            for system in ("fusee", "clover", "pdpm-direct"):
                bed = _make_system(system, scale, n_memory_nodes=n_mns,
                                   **(fusee_kw if system == "fusee"
                                      else {}))
                result = _run_ycsb(bed, scale, workload)
                row.append(result.mops)
            rows.append(row)
    return ExperimentResult(
        "fig14", "YCSB throughput vs memory nodes",
        ["workload", "memory_nodes", "fusee", "clover", "pdpm_direct"],
        rows,
        notes="expect FUSEE improves 2->3 then plateaus (CN-bound); "
              "baselines flat (paper Fig. 14)")


def fig15_rw_ratio(scale: Optional[Scale] = None,
                   ratios: Sequence[Tuple[int, int]] = (
                       (100, 0), (95, 5), (50, 50), (5, 95), (0, 100))
                   ) -> ExperimentResult:
    """Fig. 15: throughput vs SEARCH:UPDATE ratio."""
    scale = scale or Scale.bench()
    rows = []
    for search_pct, update_pct in ratios:
        mix = (search_pct / 100.0, update_pct / 100.0, 0.0)
        row = [f"{search_pct}:{update_pct}"]
        for system in ("fusee", "clover", "pdpm-direct"):
            bed = _make_system(system, scale)
            result = _run_ycsb(bed, scale, "A", mix=mix)
            row.append(result.mops)
        rows.append(row)
    return ExperimentResult(
        "fig15", "Throughput vs SEARCH:UPDATE ratio",
        ["search:update", "fusee", "clover", "pdpm_direct"], rows,
        notes="expect all decline with more updates, FUSEE best throughout "
              "(paper Fig. 15)")


def fig16_cache_threshold(scale: Optional[Scale] = None,
                          thresholds: Sequence[float] = (0.0, 0.2, 0.5,
                                                         1.0, 2.0, 8.0)
                          ) -> ExperimentResult:
    """Fig. 16: FUSEE YCSB-A throughput vs adaptive-cache threshold."""
    scale = scale or Scale.bench()
    rows = []
    for threshold in thresholds:
        bed = _loaded_bed(lambda: fusee_bed(
            dataset_bytes=scale.n_keys * scale.kv_size,
            cache_threshold=threshold), scale)
        result = _run_ycsb(bed, scale, "A")
        rows.append([threshold, result.mops])
    return ExperimentResult(
        "fig16", "FUSEE YCSB-A throughput vs cache threshold",
        ["threshold", "mops"], rows,
        notes="expect throughput decreases as the threshold grows "
              "(more bandwidth wasted on invalid pairs, paper Fig. 16)")


def fig17_allocation(scale: Optional[Scale] = None) -> ExperimentResult:
    """Fig. 17: two-level vs MN-centric memory allocation."""
    scale = scale or Scale.bench()
    rows = []
    for workload in ("A", "C"):
        row = [workload]
        for mn_centric in (False, True):
            bed = fusee_bed(dataset_bytes=scale.n_keys * scale.kv_size)
            if mn_centric:
                base = bed.cluster.config.client
                bed.cluster.config = replace(
                    bed.cluster.config,
                    client=replace(base, mn_centric_alloc=True))
            bed.load(_dataset(scale))
            result = _run_ycsb(bed, scale, workload)
            row.append(result.mops)
        rows.append(row)
    return ExperimentResult(
        "fig17", "Two-level vs MN-centric allocation",
        ["workload", "two_level_mops", "mn_centric_mops"], rows,
        notes="expect YCSB-A drops ~90% with MN-centric; YCSB-C unchanged "
              "(paper Fig. 17)")


# ======================================================================
# §6.4 fault tolerance & elasticity
# ======================================================================
def fig18_replication_throughput(scale: Optional[Scale] = None,
                                 factors: Sequence[int] = (1, 2, 3),
                                 workloads: Sequence[str] = ("A", "B",
                                                             "C", "D"),
                                 replication: Optional[str] = None
                                 ) -> ExperimentResult:
    """Fig. 18: FUSEE YCSB throughput vs replication factor.

    ``replication`` selects the slot replication strategy ("snapshot"
    default; "sequential" and "swarm" turn this into the shoot-out bed).
    """
    scale = scale or Scale.bench()
    rows = []
    for r in factors:
        row = [r]
        for workload in workloads:
            bed = _loaded_bed(lambda: fusee_bed(
                n_memory_nodes=max(3, r),
                replication_factor=r, index_replication=r,
                dataset_bytes=scale.n_keys * scale.kv_size,
                replication=replication), scale)
            result = _run_ycsb(bed, scale, workload)
            row.append(result.mops)
        rows.append(row)
    return ExperimentResult(
        "fig18", "FUSEE YCSB throughput vs replication factor"
        + (f" [{replication}]" if replication else ""),
        ["r"] + [f"ycsb_{w.lower()}_mops" for w in workloads], rows,
        notes="expect A/B drop with r, D slightly, C flat (paper Fig. 18)")


def fig19_replication_latency(scale: Optional[Scale] = None,
                              factors: Sequence[int] = (1, 2, 3, 4),
                              variants: Sequence[str] = ("fusee",
                                                         "fusee-nc",
                                                         "fusee-cr",
                                                         "fusee-swarm")
                              ) -> ExperimentResult:
    """Fig. 19: median op latency vs replication factor, per variant.

    Beyond the paper's three variants this adds "fusee-swarm" — the
    1-RTT in-place replication strategy — making this the replication
    shoot-out bed: SWARM's UPDATE latency should stay flat in ``r`` and
    beat SNAPSHOT's in the low-conflict single-client regime."""
    scale = scale or Scale.bench()
    dataset = _dataset(scale)
    keys = [k for k, _v in dataset]
    rows = []
    for variant in variants:
        for r in factors:
            bed = fusee_bed(n_memory_nodes=max(4, r),
                            replication_factor=r, index_replication=r,
                            dataset_bytes=scale.n_keys * scale.kv_size,
                            variant=variant)
            bed.load(dataset)
            client = bed.new_client()
            row = [variant, r]
            for op in ("insert", "update", "search", "delete"):
                ops = _micro_ops(op, scale, keys)
                latencies = run_latency(bed.env, client, bed.execute, ops)
                if op == "delete":
                    latencies = latencies[0::2]
                row.append(percentile(latencies, 50))
            rows.append(row)
    return ExperimentResult(
        "fig19", "Median latency (us) vs replication factor",
        ["variant", "r", "insert_us", "update_us", "search_us",
         "delete_us"], rows,
        notes="expect FUSEE-CR write latency grows linearly with r; "
              "FUSEE nearly flat (paper Fig. 19)")


def fig20_mn_crash(scale: Optional[Scale] = None,
                   n_buckets: int = 9) -> ExperimentResult:
    """Fig. 20: YCSB-C throughput timeline; one MN crashes mid-run."""
    scale = scale or Scale.bench()
    bed = _loaded_bed(lambda: fusee_bed(
        n_memory_nodes=2, replication_factor=2, index_replication=2,
        dataset_bytes=scale.n_keys * scale.kv_size), scale)
    bucket_us = scale.duration_us / 2.0
    duration = bucket_us * n_buckets
    crash_at = bucket_us * 5

    def crash():
        bed.cluster.crash_memory_node(1)

    clients = [bed.new_client() for _ in range(scale.n_clients)]
    result = run_closed_loop(
        bed.env, clients, _ycsb_factory(scale, "C"), bed.execute,
        duration_us=duration, warmup_us=0.0,
        timeline_bucket_us=bucket_us, events=[(crash_at, crash)])
    rows = [[i, t, mops] for i, (t, mops) in enumerate(result.timeline)]
    return ExperimentResult(
        "fig20", "YCSB-C throughput with an MN crash at bucket 5",
        ["bucket", "t_us", "mops"], rows,
        notes="expect throughput halves after the crash (single RNIC "
              "serves all reads, paper Fig. 20)")


def fig21_elasticity(scale: Optional[Scale] = None,
                     n_buckets: int = 9,
                     saturate: bool = False,
                     scenario: str = "hot-key-storm",
                     seed: int = 0) -> ExperimentResult:
    """Fig. 21: elasticity under load.

    Default mode reproduces the paper's shape: add clients mid-run,
    remove them later (YCSB-C).  ``saturate=True`` is the production
    variant (ISSUE 10): drive the bed with a *saturating* scenario
    workload (closed-loop over a scenario stream, so the hot-set churn
    is realistic but the offered load is unbounded) and **grow the MN
    pool at bucket 3** through the timed :meth:`grow_pool` rebalance.
    The PR-4 profiler attributes where rebalance time goes — the
    snapshot read-only window vs. the copy — into
    ``result.extras["rebalance"]``.
    """
    scale = scale or Scale.bench()
    if saturate:
        return _fig21_saturating(scale, n_buckets, scenario, seed)
    bed = _loaded_bed(lambda: fusee_bed(
        dataset_bytes=scale.n_keys * scale.kv_size), scale)
    base = max(4, scale.n_clients // 2)
    extra = base
    bucket_us = scale.duration_us / 2.0
    duration = bucket_us * n_buckets
    retired = set()

    def execute(client, op, key, value):
        if id(client) in retired:
            from .runner import StopLoop
            raise StopLoop()
        return (yield from bed.execute(client, op, key, value))

    extra_clients = []

    def add_clients():
        new = []
        for i in range(extra):
            client = bed.new_client()
            extra_clients.append(client)
            new.append((client,
                        _ycsb_factory(scale, "C")(1000 + i)))
        return new

    def remove_clients():
        for client in extra_clients:
            retired.add(id(client))

    clients = [bed.new_client() for _ in range(base)]
    result = run_closed_loop(
        bed.env, clients, _ycsb_factory(scale, "C"), execute,
        duration_us=duration, warmup_us=0.0,
        timeline_bucket_us=bucket_us,
        events=[(bucket_us * 3, add_clients),
                (bucket_us * 6, remove_clients)])
    rows = [[i, t, mops] for i, (t, mops) in enumerate(result.timeline)]
    return ExperimentResult(
        "fig21", "Elasticity: clients added at bucket 3, removed at 6",
        ["bucket", "t_us", "mops"], rows,
        notes="expect throughput steps up then returns (paper Fig. 21)")


def _fig21_saturating(scale: Scale, n_buckets: int, scenario: str,
                      seed: int) -> ExperimentResult:
    """fig21 saturating-load mode: grow the pool under saturation and
    attribute rebalance time with the profiler."""
    from ..obs import Profiler, RunProfile, Tracer

    bucket_us = scale.duration_us / 2.0
    duration = bucket_us * n_buckets
    n_clients = max(4, scale.n_clients // 2)
    scn = get_scenario(scenario, duration_us=duration,
                       keys_per_tenant=max(64, scale.n_keys // 4),
                       n_clients=n_clients, seed=seed)
    dataset = scn.preload_items()
    tracer = Tracer()
    bed = fusee_bed(dataset_bytes=max(1 << 22, len(dataset)
                                      * scale.kv_size * 4),
                    tracer=tracer)
    bed.load(dataset)
    profiler = Profiler(tracer=tracer).install(bed.env)
    tracer.clear()
    grown: Dict[str, int] = {}

    def grow():
        def proc():
            # regions=2 matches the bed's growth headroom (backup
            # replicas carve on the existing nodes)
            grown["mn_id"] = yield from bed.cluster.grow_pool(regions=2)
        bed.env.process(proc(), name="grow-pool")

    clients = [bed.new_client() for _ in range(n_clients)]
    result = run_closed_loop(
        bed.env, clients, lambda i: scn.saturating_workload(i),
        bed.execute, duration_us=duration, warmup_us=0.0,
        timeline_bucket_us=bucket_us,
        events=[(bucket_us * 3, grow)], fast=False)

    profile = RunProfile.collect(profiler, tracer.spans, tail_pct=99.0)
    window = profile.ops.get("rebalance.snapshot_window",
                             {"total_us": 0.0})["total_us"]
    copy = profile.ops.get("rebalance.copy", {"total_us": 0.0})["total_us"]
    total = profile.ops.get("rebalance.grow", {"total_us": 0.0})["total_us"]
    rebalance = {
        "scenario": scn.name,
        "seed": seed,
        "new_mn_id": grown.get("mn_id"),
        "snapshot_window_us": window,
        "copy_us": copy,
        "total_us": total,
        "window_share": (window / total) if total else 0.0,
        "copy_share": (copy / total) if total else 0.0,
    }
    rows = [[i, t, mops] for i, (t, mops) in enumerate(result.timeline)]
    return ExperimentResult(
        "fig21", f"Elasticity under saturation ({scn.name}): MN pool "
                 "grows at bucket 3",
        ["bucket", "t_us", "mops"], rows,
        notes=f"rebalance attribution: snapshot read-only window "
              f"{window:.1f} us ({rebalance['window_share']:.0%}), "
              f"copy {copy:.1f} us ({rebalance['copy_share']:.0%}) "
              f"of {total:.1f} us total; new MN "
              f"{grown.get('mn_id')}",
        extras={"rebalance": rebalance})


def scenario_suite(scale: Optional[Scale] = None,
                   scenarios: Optional[Sequence[str]] = None,
                   seed: int = 0) -> ExperimentResult:
    """Paced (open-loop) runs of the shipped scenario catalog.

    One clean-fabric FUSEE bed per scenario, driven at the scenario's
    scheduled arrival times by :func:`run_open_loop`; reports achieved
    vs offered ops and the per-tenant isolation shares
    (``extras["tenants"]``).  The *verdicts* for these scenarios —
    fault-campaign soundness and linearizability — live in the test
    suite (``tests/test_scenarios.py``); this experiment is the
    throughput/latency readout.
    """
    from ..obs import Metrics

    scale = scale or Scale.bench()
    names = list(scenarios) if scenarios else sorted(SCENARIOS)
    rows: List[List] = []
    extras: Dict[str, object] = {"tenants": {}}
    for name in names:
        scn = get_scenario(name, duration_us=scale.duration_us * 4,
                           keys_per_tenant=max(64, scale.n_keys // 8),
                           n_clients=min(scale.n_clients, 8), seed=seed)
        dataset = scn.preload_items()
        bed = fusee_bed(dataset_bytes=max(1 << 22, len(dataset)
                                          * scale.kv_size * 4))
        bed.load(dataset)
        metrics = Metrics()
        clients = [bed.new_client() for _ in range(scn.n_clients)]
        result = run_open_loop(
            bed.env, clients, lambda i: scn.client_stream(i),
            bed.execute, duration_us=scn.duration_us, metrics=metrics)
        offered = scn.schedule.integral(0.0, scn.duration_us)
        p99 = max((metrics.histogram(f"tenant.{t.name}.latency_us")
                   .percentile(99.0) for t in scn.tenants), default=0.0)
        rows.append([name, scn.family, round(offered, 1), result.ops,
                     result.errors, round(p99, 2)])
        extras["tenants"][name] = tenant_report(metrics, scn)
    return ExperimentResult(
        "scenarios", "Production scenario suite (paced open-loop)",
        ["scenario", "family", "offered_ops", "done_ops", "errors",
         "worst_tenant_p99_us"], rows,
        notes="per-tenant isolation shares in extras['tenants']; "
              "verdicts (faults + linearizability) in "
              "tests/test_scenarios.py",
        extras=extras)


def table1_recovery(scale: Optional[Scale] = None,
                    n_updates: int = 1000) -> ExperimentResult:
    """Table 1: client recovery time breakdown after N updates."""
    scale = scale or Scale.bench()
    bed = fusee_bed(n_memory_nodes=3, replication_factor=2,
                    index_replication=2,
                    dataset_bytes=max(1 << 20, n_updates * scale.kv_size))
    cluster = bed.cluster
    client = cluster.new_client()
    key = b"recovery-key"
    value = make_value(scale.kv_size - 24, salt=1)
    cluster.run_op(client.insert(key, value))
    for i in range(n_updates - 1):
        cluster.run_op(client.update(key, make_value(
            scale.kv_size - 24, salt=i + 2)))
    client.arm_crash(CrashPoint.C1)
    try:
        cluster.run_op(client.update(key, value))
    except ClientCrashed:
        pass

    def proc():
        return (yield from cluster.master.recover_client(client.cid))

    report, _state = cluster.run_op(proc())
    rows = [[step, ms, pct] for step, ms, pct in report.rows()]
    return ExperimentResult(
        "table1", f"Client recovery breakdown ({n_updates} UPDATEs)",
        ["step", "time_ms", "percentage"], rows,
        notes=f"objects visited: {report.objects_visited}; expect "
              "connection+MR ~92%, log traversal ~2% (paper Table 1)")


# ======================================================================
# Extra ablation: embedded vs separate operation log
# ======================================================================
def ablation_oplog(scale: Optional[Scale] = None) -> ExperimentResult:
    """DESIGN.md ablation: what the embedded log saves on the write path."""
    scale = scale or Scale.bench()
    dataset = _dataset(scale)
    keys = [k for k, _v in dataset]
    rows = []
    for embedded in (True, False):
        bed = fusee_bed(dataset_bytes=scale.n_keys * scale.kv_size)
        base = bed.cluster.config.client
        bed.cluster.config = replace(
            bed.cluster.config, client=replace(base, embedded_log=embedded))
        bed.load(dataset)
        client = bed.new_client()
        ops = _micro_ops("update", scale, keys)
        latencies = run_latency(bed.env, client, bed.execute, ops)
        result = _run_ycsb(bed, scale, "A", n_clients=scale.n_clients)
        rows.append(["embedded" if embedded else "separate",
                     percentile(latencies, 50), result.mops])
    return ExperimentResult(
        "ablation_oplog", "Embedded vs separate operation log",
        ["log_scheme", "update_p50_us", "ycsb_a_mops"], rows,
        notes="the separate log adds one RTT per write (§4.5)")


def ablation_expansion(scale: Optional[Scale] = None) -> ExperimentResult:
    """Extension artefact: extendible index expansion under insert load.

    Builds FUSEE with a deliberately tiny index directory and keeps
    inserting far past its initial capacity; the master splits overloaded
    subtables on demand (RACE extendible resize).  Reports insert
    throughput per fill phase plus the directory growth.
    """
    scale = scale or Scale.bench()
    from ..core.race import RaceConfig as _RC
    bed = fusee_bed(dataset_bytes=scale.n_keys * scale.kv_size,
                    race=_RC(n_subtables=2, n_groups=8, slots_per_bucket=7))
    cluster = bed.cluster
    initial_capacity = (2 * cluster.race.config.slots_per_subtable)
    target = initial_capacity * 3
    client = cluster.new_client()
    rows = []
    inserted = 0
    phase = 0
    env = bed.env
    while inserted < target:
        phase += 1
        goal = min(target, inserted + initial_capacity)
        start_us, start_n = env.now, inserted

        def filler():
            nonlocal inserted
            while inserted < goal:
                result = yield from client.insert(
                    f"grow-{inserted:08d}".encode(),
                    make_value(scale.kv_size - 24, salt=inserted))
                if result.ok:
                    inserted += 1

        env.run(until=env.process(filler()))
        elapsed = env.now - start_us
        rows.append([phase, inserted,
                     (inserted - start_n) / max(1e-9, elapsed),
                     len(cluster.race.physical_tables()),
                     cluster.master.splits_performed])
    cluster.race.check_directory_invariants()
    return ExperimentResult(
        "ablation_expansion",
        "Insert throughput while the index grows (extendible splits)",
        ["phase", "keys_inserted", "insert_mops", "physical_subtables",
         "splits"],
        rows,
        notes="extension beyond the paper: splits are master-coordinated "
              "stop-the-world per subtable, so insert throughput dips "
              "while the directory doubles and recovers afterwards")


def resource_efficiency(scale: Optional[Scale] = None) -> ExperimentResult:
    """The paper's §1/§6 resource-consumption claim, quantified.

    Runs YCSB-A on all three systems and reports, besides throughput, the
    *compute* each one consumed: Clover's metadata-server core-seconds
    (the resource FUSEE's disaggregated metadata eliminates), the weak
    MN-core time each system used, and the derived efficiency metric
    kilo-ops per CPU-core-second of server-side compute.
    """
    scale = scale or Scale.bench()
    rows = []
    for system in ("fusee", "clover", "pdpm-direct"):
        bed = _make_system(system, scale)
        start_us = bed.env.now
        result = _run_ycsb(bed, scale, "A")
        elapsed = bed.env.now - start_us
        if system == "clover":
            server_busy = bed.cluster.metadata.stats.busy_us
            server_cores = bed.cluster.metadata.cpu.capacity
        else:
            server_busy = 0.0
            server_cores = 0
        mn_busy = 0.0
        if system == "fusee":
            # MN CPU time spent serving coarse-grained ALLOC RPCs — the
            # only server-side compute FUSEE uses (2 us per RPC).
            mn_busy = bed.cluster.fabric.stats.rpcs * 2.0
        total_ops = result.ops
        server_core_seconds = server_busy / 1e6
        ops_per_core_s = (total_ops / server_core_seconds / 1e3
                          if server_core_seconds > 0 else float("inf"))
        rows.append([system, result.mops, server_cores,
                     round(server_busy / 1000.0, 3),
                     round(mn_busy / 1000.0, 3),
                     "inf" if ops_per_core_s == float("inf")
                     else round(ops_per_core_s, 1)])
    return ExperimentResult(
        "resource_efficiency",
        "Server-side compute consumed per system (YCSB-A)",
        ["system", "mops", "dedicated_server_cores",
         "server_cpu_busy_ms", "mn_cpu_busy_ms", "kops_per_core_s"],
        rows,
        notes="FUSEE dedicates zero metadata-server cores; its only "
              "server-side compute is coarse-grained ALLOC RPCs on the "
              "weak MN cores (paper §1: 'less resource consumption')")


ALL_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig02": fig02_clover_metadata_cpu,
    "fig03": fig03_serialization,
    "fig10": fig10_latency_cdf,
    "fig11": fig11_micro_throughput,
    "fig12": fig12_kv_sizes,
    "fig13": fig13_ycsb_scalability,
    "fig14": fig14_memory_nodes,
    "fig15": fig15_rw_ratio,
    "fig16": fig16_cache_threshold,
    "fig17": fig17_allocation,
    "fig18": fig18_replication_throughput,
    "fig19": fig19_replication_latency,
    "fig20": fig20_mn_crash,
    "fig21": fig21_elasticity,
    "scenarios": scenario_suite,
    "table1": table1_recovery,
    "ablation_oplog": ablation_oplog,
    "ablation_expansion": ablation_expansion,
    "resource_efficiency": resource_efficiency,
}
