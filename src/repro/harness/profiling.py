"""Profiled workload runs: where do the simulated microseconds go?

Glue between the harness beds and :mod:`repro.obs.profile`: run a YCSB
mix on any system bed with a profiler installed and return the full
attribution bundle — per-op breakdowns, tail attribution, the critical
path, folded flamegraph stacks, and sampled resource counters — in one
deterministic, JSON-serialisable result.

FUSEE traces its own spans (`attach_tracer`); the baseline beds (Clover,
pDPM) have no internal tracing, so their ``execute`` is wrapped in a
begin/end span per operation — coarser (no phases) but attribution of
wait/service/propagation still lands via the resource layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs import (
    CriticalPath,
    Metrics,
    Profiler,
    RunProfile,
    Tracer,
    analyze_critical_path,
    critical_report,
    folded_stacks,
    profile_report,
    sample_fabric,
)
from ..workloads.scenarios import get_scenario
from .experiments import Scale, _dataset, _ycsb_factory
from .runner import RunResult, run_closed_loop
from .systems import SystemBed, clover_bed, fusee_bed, pdpm_bed

__all__ = ["ProfiledRun", "profile_ycsb", "PROFILE_SYSTEMS"]

PROFILE_SYSTEMS = ("fusee", "clover", "pdpm")


@dataclass
class ProfiledRun:
    """Everything a profiled run produced."""

    system: str
    workload: str
    run: RunResult
    profile: RunProfile
    critical: CriticalPath
    tracer: Tracer
    profiler: Profiler
    metrics: Metrics
    # Monitor health report (repro.obs.monitor); None when the run was
    # not monitored.
    health: Optional[dict] = None

    @property
    def spans(self):
        return self.tracer.spans

    def folded(self) -> List[str]:
        return folded_stacks(self.profiler, self.tracer.spans)

    def report(self) -> str:
        return "\n\n".join([
            f"profile: {self.system} YCSB-{self.workload} "
            f"({self.run.ops} ops, {self.run.mops:.3f} Mops)",
            profile_report(self.profile),
            critical_report(self.critical),
        ])

    def to_dict(self) -> dict:
        """Deterministic payload for ``BENCH_profile.json``."""
        return {
            "system": self.system,
            "workload": self.workload,
            "ops": self.run.ops,
            "errors": self.run.errors,
            "duration_us": self.run.duration_us,
            "mops": round(self.run.mops, 6),
            "profile": self.profile.to_dict(),
            "critical_path": self.critical.to_dict(),
            "series": {name: self.metrics.series[name].summary()
                       for name in sorted(self.metrics.series)},
            # the health report minus its wall-clock "overhead" section,
            # keeping this payload deterministic across same-seed runs
            **({"health": {k: v for k, v in self.health.items()
                           if k != "overhead"}}
               if self.health is not None else {}),
        }


def _traced_execute(bed: SystemBed, tracer: Tracer):
    """Wrap ``bed.execute`` in one span per op (for untraced beds)."""
    inner = bed.execute

    def execute(client, op, key, value):
        span = tracer.begin_span(op, getattr(client, "cid", 0), key=key)
        ok = yield from inner(client, op, key, value)
        tracer.end_span(span, bool(ok))
        return ok

    return execute


def _make_bed(system: str, scale: Scale, n_memory_nodes: int,
              metadata_cores: int, tracer: Tracer,
              read_spread: str = "primary",
              max_coalesce_width: int = 1,
              nic_ports: int = 1,
              rpc_shards: int = 1,
              port_affinity: str = "qp",
              replication: Optional[str] = None,
              max_clients: int = 256) -> SystemBed:
    dataset_bytes = scale.n_keys * scale.kv_size
    if system == "fusee":
        return fusee_bed(n_memory_nodes=n_memory_nodes,
                         dataset_bytes=dataset_bytes,
                         read_spread=read_spread,
                         max_coalesce_width=max_coalesce_width,
                         nic_ports=nic_ports,
                         rpc_shards=rpc_shards,
                         port_affinity=port_affinity,
                         replication=replication,
                         max_clients=max_clients,
                         tracer=tracer)
    if system == "clover":
        return clover_bed(n_memory_nodes=n_memory_nodes,
                          metadata_cores=metadata_cores,
                          dataset_bytes=dataset_bytes)
    if system == "pdpm":
        return pdpm_bed(n_memory_nodes=n_memory_nodes,
                        dataset_bytes=dataset_bytes,
                        n_keys_hint=scale.n_keys)
    raise ValueError(f"unknown system {system!r}; "
                     f"pick from {PROFILE_SYSTEMS}")


def profile_ycsb(system: str = "fusee", workload: str = "A",
                 scale: Optional[Scale] = None,
                 n_clients: Optional[int] = None,
                 n_memory_nodes: int = 2,
                 metadata_cores: int = 2,
                 tail_pct: float = 99.0,
                 sample_interval_us: float = 50.0,
                 read_spread: str = "primary",
                 max_coalesce_width: int = 1,
                 nic_ports: int = 1,
                 rpc_shards: int = 1,
                 port_affinity: str = "qp",
                 replication: Optional[str] = None,
                 monitor_config=None,
                 slos=(),
                 scenario: Optional[object] = None,
                 seed: int = 0) -> ProfiledRun:
    """Run a profiled closed-loop YCSB mix and attribute its time.

    The bulk load runs unprofiled on the fast kernel (the profiler is
    installed after it).  No warmup: every span that *ends* inside the run
    is attributed; spans cut off at the deadline are skipped and counted
    (``RunProfile.unfinished_spans``).  ``read_spread``,
    ``max_coalesce_width``, ``nic_ports``, ``rpc_shards``,
    ``port_affinity`` and ``replication`` (FUSEE only) select the
    replica read-spread policy, the doorbell coalescing width, the
    multi-queue NIC / sharded-RPC configuration, and the slot
    replication strategy of the bed.

    ``monitor_config`` (a :class:`repro.obs.MonitorConfig`) attaches the
    online monitor to the measured window — windowed quantiles, SLO
    burn-rate alerts from ``slos``, the gray-failure detector — and
    lands its health report in ``ProfiledRun.health``.

    ``scenario`` (a name from ``repro.workloads.SCENARIOS`` or a
    :class:`~repro.workloads.Scenario`) replaces the YCSB mix with the
    scenario's multi-tenant key population driven at saturation
    (closed-loop, so the profiler attributes pure service time rather
    than pacing idle).
    """
    scale = scale or Scale.bench()
    if isinstance(scenario, str):
        scenario = get_scenario(scenario, seed=seed)
    tracer = Tracer()
    if scenario is not None:
        want_clients = n_clients or scenario.n_clients
    else:
        want_clients = n_clients or scale.n_clients
    bed = _make_bed(system, scale, n_memory_nodes, metadata_cores, tracer,
                    read_spread=read_spread,
                    max_coalesce_width=max_coalesce_width,
                    nic_ports=nic_ports,
                    rpc_shards=rpc_shards,
                    port_affinity=port_affinity,
                    replication=replication,
                    # scaled beds run hundreds of clients; keep headroom
                    # for the loader client and background churn
                    max_clients=max(256, want_clients + 8))
    self_traced = hasattr(bed.cluster, "attach_tracer")
    # The bulk load runs on the kernel's fast drain loop: the profiler
    # is only installed afterwards (its load intervals were discarded
    # before the measured window anyway, so this is observationally
    # identical and much faster).  require_fast() guards against a
    # check hook accidentally left on the bed.
    bed.env.require_fast()
    if scenario is not None:
        bed.load(scenario.preload_items())
    else:
        bed.load(_dataset(scale))
    profiler = Profiler(tracer=tracer).install(bed.env)
    tracer.clear()

    execute = bed.execute if self_traced else _traced_execute(bed, tracer)
    metrics = Metrics()
    if hasattr(bed.cluster, "fabric"):
        sample_fabric(bed.env, metrics, bed.cluster.fabric,
                      interval_us=sample_interval_us)
    monitor = None
    if monitor_config is not None and self_traced:
        from ..obs import Monitor
        monitor = Monitor(bed.env, bed.cluster.fabric,
                          config=monitor_config, slos=slos,
                          race=getattr(bed.cluster, "race", None))
        bed.cluster.attach_monitor(monitor)
    clients = [bed.new_client() for _ in range(want_clients)]
    if scenario is not None:
        factory = scenario.saturating_workload
        duration_us = scenario.duration_us
        workload = f"scenario:{scenario.name}"
    else:
        factory = _ycsb_factory(scale, workload)
        duration_us = scale.duration_us
    run = run_closed_loop(bed.env, clients, factory,
                          execute, duration_us=duration_us,
                          warmup_us=0.0, metrics=metrics,
                          fast=False,  # the profiler is the point here
                          monitor=monitor)
    profile = RunProfile.collect(profiler, tracer.spans, tail_pct=tail_pct)
    critical = analyze_critical_path(profiler, tracer.spans)
    return ProfiledRun(system=system, workload=workload, run=run,
                       profile=profile, critical=critical, tracer=tracer,
                       profiler=profiler, metrics=metrics,
                       health=run.health)
