"""Closed-loop experiment driver.

Reproduces the paper's measurement methodology: N closed-loop clients
(the paper runs 128 client processes over 16 CNs) each repeatedly draw
the next operation from their workload stream and execute it; throughput
is completed operations per simulated second over the measurement window,
latency is per-operation completion time.  Timeline mode (Figs. 20, 21)
buckets completions into fixed windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import Environment

__all__ = ["RunResult", "run_closed_loop", "run_open_loop", "run_latency",
           "percentile", "cdf_points"]


@dataclass
class RunResult:
    ops: int
    duration_us: float
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    errors: int = 0
    timeline: List[Tuple[float, float]] = field(default_factory=list)
    per_op_counts: Dict[str, int] = field(default_factory=dict)
    # End-of-run monitor health report (repro.obs.monitor); None when no
    # monitor was attached to the run.
    health: Optional[dict] = None

    @property
    def mops(self) -> float:
        """Throughput in million operations per (simulated) second."""
        if self.duration_us <= 0:
            return 0.0
        return self.ops / self.duration_us


def _normalize(op_tuple):
    """Accept (op, key, value) or (op, key, value, measured)."""
    if len(op_tuple) == 3:
        op, key, value = op_tuple
        return op, key, value, True
    return op_tuple


def run_closed_loop(env: Environment,
                    clients: Sequence,
                    workload_factory: Callable[[int], object],
                    execute: Callable,
                    duration_us: float,
                    warmup_us: float = 0.0,
                    collect_latency: bool = False,
                    timeline_bucket_us: Optional[float] = None,
                    events: Sequence[Tuple[float, Callable]] = (),
                    metrics=None,
                    fast: bool = True,
                    monitor=None) -> RunResult:
    """Drive ``clients`` against per-client workloads for ``duration_us``.

    ``fast=True`` (the default) asserts the kernel's fast drain loop is
    eligible (no scheduler/profiler/access hook), so sweep beds never
    silently run hook-aware; profiled runs pass ``fast=False``.

    ``execute(client, op, key, value)`` is a generator performing one
    operation and returning truthy on success.  ``events`` is a list of
    ``(at_us_from_start, callback)`` timeline actions (crash an MN, add
    clients, ...); callbacks run at the scheduled simulated time and may
    return a list of new (client, workload) pairs to start driving.

    ``metrics`` (a :class:`repro.obs.Metrics`) additionally accumulates
    ``ops.<op>`` / ``ops.errors`` counters and ``latency_us.<op>``
    histograms over the measurement window.

    ``monitor`` (a :class:`repro.obs.Monitor`, usually already attached
    via ``cluster.attach_monitor``) is started if needed and finished at
    the deadline; its health report lands in ``RunResult.health``.
    """
    if monitor is not None:
        monitor.start()
    if fast:
        env.require_fast()
    start = env.now
    measure_from = start + warmup_us
    deadline = start + duration_us
    result = RunResult(ops=0, duration_us=duration_us - warmup_us)
    buckets: Dict[int, int] = {}

    def record(op: str, began: float, ok: bool) -> None:
        now = env.now
        if now < measure_from or now > deadline:
            return
        if not ok:
            result.errors += 1
            if metrics is not None:
                metrics.counter("ops.errors").inc()
            return
        result.ops += 1
        result.per_op_counts[op] = result.per_op_counts.get(op, 0) + 1
        if metrics is not None:
            metrics.counter(f"ops.{op}").inc()
            metrics.histogram(f"latency_us.{op}").observe(now - began)
        if collect_latency:
            result.latencies.setdefault(op, []).append(now - began)
        if timeline_bucket_us:
            buckets[int((now - start) // timeline_bucket_us)] = \
                buckets.get(int((now - start) // timeline_bucket_us), 0) + 1

    def client_proc(index: int, client, workload):
        while env.now < deadline:
            op, key, value, measured = _normalize(workload.next_op())
            began = env.now
            try:
                ok = yield from execute(client, op, key, value)
            except StopLoop:
                return
            if measured:
                record(op, began, bool(ok))

    for index, client in enumerate(clients):
        env.process(client_proc(index, client, workload_factory(index)),
                    name=f"load-client-{index}")

    def event_proc(at: float, callback):
        yield env.timeout(at)
        new = callback() or ()
        for client, workload in new:
            env.process(client_proc(id(client), client, workload),
                        name="late-client")

    for at, callback in events:
        env.process(event_proc(at, callback), name="timeline-event")

    env.run(until=deadline)
    if monitor is not None:
        result.health = monitor.finish()
    if timeline_bucket_us:
        n_buckets = int(duration_us // timeline_bucket_us)
        result.timeline = [
            (bucket * timeline_bucket_us,
             buckets.get(bucket, 0) / timeline_bucket_us)
            for bucket in range(n_buckets)]
    return result


class StopLoop(Exception):
    """Raised inside ``execute`` to retire a client from the loop."""


def run_open_loop(env: Environment,
                  clients: Sequence,
                  stream_factory: Callable[[int], object],
                  execute: Callable,
                  duration_us: float,
                  warmup_us: float = 0.0,
                  collect_latency: bool = False,
                  timeline_bucket_us: Optional[float] = None,
                  events: Sequence[Tuple[float, Callable]] = (),
                  metrics=None,
                  fast: bool = True,
                  monitor=None) -> RunResult:
    """Drive paced (open-loop) scenario streams against ``clients``.

    ``stream_factory(index)`` yields an iterable of timed arrivals —
    objects with ``at_us``, ``tenant``, ``op``, ``key``, ``value``
    attributes (:class:`repro.workloads.scenarios.ScenarioOp`).  Each
    client sleeps until the scheduled arrival time and then executes;
    arrivals that fall behind (the client is still busy) run
    immediately, so overload shows up as queueing latency rather than
    a rate reduction — the open-loop property the closed-loop driver
    cannot express.

    Per-tenant isolation metrics are recorded when ``metrics`` is
    given: ``tenant.<name>.ops`` / ``tenant.<name>.errors`` counters
    and ``tenant.<name>.latency_us`` histograms, alongside the usual
    ``ops.<op>`` / ``latency_us.<op>`` instruments (which a windowed
    metrics adapter can pane as in closed-loop runs).
    """
    if monitor is not None:
        monitor.start()
    if fast:
        env.require_fast()
    start = env.now
    measure_from = start + warmup_us
    deadline = start + duration_us
    result = RunResult(ops=0, duration_us=duration_us - warmup_us)
    buckets: Dict[int, int] = {}

    def record(op: str, tenant: Optional[str], began: float,
               ok: bool) -> None:
        now = env.now
        if now < measure_from or now > deadline:
            return
        if not ok:
            result.errors += 1
            if metrics is not None:
                metrics.counter("ops.errors").inc()
                if tenant is not None:
                    metrics.counter(f"tenant.{tenant}.errors").inc()
            return
        result.ops += 1
        result.per_op_counts[op] = result.per_op_counts.get(op, 0) + 1
        if metrics is not None:
            metrics.counter(f"ops.{op}").inc()
            metrics.histogram(f"latency_us.{op}").observe(now - began)
            if tenant is not None:
                metrics.counter(f"tenant.{tenant}.ops").inc()
                metrics.histogram(
                    f"tenant.{tenant}.latency_us").observe(now - began)
        if collect_latency:
            result.latencies.setdefault(op, []).append(now - began)
        if timeline_bucket_us:
            bucket = int((now - start) // timeline_bucket_us)
            buckets[bucket] = buckets.get(bucket, 0) + 1

    def client_proc(index: int, client, stream):
        for arrival in stream:
            at = start + arrival.at_us
            if at > env.now:
                yield env.timeout(at - env.now)
            if env.now >= deadline:
                return
            began = env.now
            try:
                ok = yield from execute(client, arrival.op, arrival.key,
                                        arrival.value)
            except StopLoop:
                return
            record(arrival.op, getattr(arrival, "tenant", None), began,
                   bool(ok))

    for index, client in enumerate(clients):
        env.process(client_proc(index, client, iter(stream_factory(index))),
                    name=f"paced-client-{index}")

    def event_proc(at: float, callback):
        yield env.timeout(at)
        new = callback() or ()
        for client, stream in new:
            env.process(client_proc(id(client), client, iter(stream)),
                        name="late-paced-client")

    for at, callback in events:
        env.process(event_proc(at, callback), name="timeline-event")

    env.run(until=deadline)
    if monitor is not None:
        result.health = monitor.finish()
    if timeline_bucket_us:
        n_buckets = int(duration_us // timeline_bucket_us)
        result.timeline = [
            (bucket * timeline_bucket_us,
             buckets.get(bucket, 0) / timeline_bucket_us)
            for bucket in range(n_buckets)]
    return result


def run_latency(env: Environment, client, execute: Callable,
                ops: Sequence[Tuple[str, bytes, Optional[bytes]]]) -> List[float]:
    """Execute operations sequentially on one client; returns latencies.

    This is the paper's latency methodology: 'we use a single client to
    iteratively execute each operation 10,000 times' (§6.2).
    """
    latencies: List[float] = []

    def proc():
        for op, key, value in ops:
            began = env.now
            yield from execute(client, op, key, value)
            latencies.append(env.now - began)

    env.run(until=env.process(proc(), name="latency-client"))
    return latencies


def percentile(values: Sequence[float], p: float) -> float:
    if not values:
        raise ValueError("no values")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = p / 100.0 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def cdf_points(values: Sequence[float],
               points: Sequence[float] = (50, 90, 99, 99.9)) -> Dict[float, float]:
    return {p: percentile(values, p) for p in points}
