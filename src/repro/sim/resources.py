"""Shared resources for the simulation kernel.

Two queueing primitives cover every contention point in the reproduction:

* :class:`Resource` — a counted server pool with a FIFO queue.  Used for
  metadata-server CPU cores (Clover), memory-node cores (ALLOC RPCs and the
  MN-centric allocation ablation), and anything else that serializes work.
* :class:`NicPort` — a serialisation line modelling an RNIC: each operation
  occupies the port for a service time derived from a fixed per-op overhead
  plus a byte-transfer time, with an extra penalty for atomics.  This is the
  mechanism that makes memory-node NICs saturate, which drives the plateaus
  in Figures 12-14 of the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from .core import Environment, Event

__all__ = ["Resource", "Request", "NicPort", "NicProfile"]


class Request(Event):
    """Pending acquisition of a :class:`Resource`; fires when granted.

    ``t_request``/``t_grant`` stamp the FIFO queueing interval so the
    profiler (repro.obs.profile) can attribute CPU wait vs. service time
    and :meth:`Resource.utilisation` can integrate busy time.
    """

    __slots__ = ("resource", "t_request", "t_grant", "prof_span")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self.t_grant: Optional[float] = None
        # t_request / prof_span are stamped by Resource.request only when
        # a profiler is installed — the unprofiled path skips the
        # bookkeeping entirely (they are profiler-only attribution data).

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1,
                 label: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: Deque[Request] = deque()
        # Deterministic identity for schedule-exploration footprints: the
        # grant order of a contended pool is shared state, so acquisitions
        # and releases must register as conflicting accesses.
        self._uid = env.next_uid()
        # Attribution identity for the profiler and total granted-core
        # busy time (for utilisation sampling).
        self.label = label or f"cpu{self._uid}"
        self.total_busy = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        env = self.env
        if env._access_hook is not None:
            env.note_access(("res", self._uid), True)
        req = Request(self)
        prof = env._profiler
        if prof is not None:
            req.t_request = env._now
            req.prof_span = prof.current_span()
        if self._in_use < self.capacity:
            self._in_use += 1
            req.t_grant = env._now
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        env = self.env
        if env._access_hook is not None:
            env.note_access(("res", self._uid), True)
        now = env._now
        if request.t_grant is not None:
            self.total_busy += now - request.t_grant
        prof = env._profiler
        if prof is not None and request.t_grant is not None:
            prof.note("cpu_service", self.label, request.t_grant, now,
                      span=getattr(request, "prof_span", None))
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.t_grant = now
            if prof is not None:
                prof.note("cpu_wait", self.label,
                          getattr(nxt, "t_request", now), now,
                          span=getattr(nxt, "prof_span", None))
            nxt.succeed()
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise RuntimeError("release without matching request")

    def utilisation(self, elapsed: float) -> float:
        """Mean fraction of granted core-time over ``elapsed`` (0..1)."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / (elapsed * self.capacity))


@dataclass(frozen=True)
class NicProfile:
    """Serialisation costs of one RNIC port (all times in microseconds).

    ``op_overhead``        fixed cost to process one verb;
    ``atomic_overhead``    fixed cost for CAS/FAA (RNIC atomics units are the
                           scaling bottleneck the paper cites from Kalia et
                           al. [30]);
    ``bandwidth_gbps``     payload bandwidth used to charge byte time;
    ``rpc_overhead``       fixed NIC cost of sending/receiving an RPC packet.
    """

    op_overhead: float = 0.030
    atomic_overhead: float = 0.060
    bandwidth_gbps: float = 56.0
    rpc_overhead: float = 0.060

    def byte_time(self, nbytes: int) -> float:
        # gbps -> bytes/us: 56 Gbps = 7e3 MB/s = 7000 bytes/us.
        bytes_per_us = self.bandwidth_gbps / 8.0 * 1000.0
        return nbytes / bytes_per_us


class NicPort:
    """A single serialisation line: operations queue and occupy it in turn.

    ``occupy(service_time)`` returns an event that fires when the operation's
    slot on the wire *ends*; the caller adds propagation delay itself.
    """

    def __init__(self, env: Environment, profile: NicProfile,
                 label: str = ""):
        self.env = env
        self.profile = profile
        self._next_free = 0.0
        self.total_busy = 0.0
        self.ops = 0
        self._uid = env.next_uid()
        self.label = label or f"nic{self._uid}"

    def occupy(self, service_time: float,
               not_before: Optional[float] = None) -> Event:
        """Reserve the port for ``service_time``; event fires at completion.

        ``not_before`` lets the caller model propagation delay before the
        operation reaches the port (service cannot start earlier).
        """
        env = self.env
        earliest = env._now if not_before is None else not_before
        start = max(earliest, self._next_free)
        end = start + service_time
        if service_time > 0.0 and not env._fast:
            # With zero service time the line never queues, so occupancy is
            # not observable shared state — keep it out of footprints.
            if env._access_hook is not None:
                env.note_access(("nic", self._uid), True)
            prof = env._profiler
            if prof is not None:
                prof.note_nic(self.label, earliest, start, end)
        self._next_free = end
        self.total_busy += service_time
        self.ops += 1
        return env.timeout(end - env._now)

    def finish_time(self, service_time: float,
                    not_before: Optional[float] = None) -> float:
        """Like :meth:`occupy` but returns the absolute completion time."""
        env = self.env
        earliest = env._now if not_before is None else not_before
        start = max(earliest, self._next_free)
        end = start + service_time
        if service_time > 0.0 and not env._fast:
            if env._access_hook is not None:
                env.note_access(("nic", self._uid), True)
            prof = env._profiler
            if prof is not None:
                prof.note_nic(self.label, earliest, start, end)
        self._next_free = end
        self.total_busy += service_time
        self.ops += 1
        return end

    def backlog(self, now: float) -> float:
        """Microseconds of already-accepted service still queued at ``now``.

        The port's analogue of queue depth: how far its serialisation line
        is committed beyond the current instant (0 when idle).
        """
        return max(0.0, self._next_free - now)

    def utilisation(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / elapsed)
