"""Discrete-event simulation kernel.

A tiny, dependency-free event loop in the style of SimPy: an
:class:`Environment` owns a priority queue of timestamped events, and
*processes* are Python generators that yield events to wait on.  Simulated
time is a float in **microseconds** (the natural unit for RDMA-scale
systems); nothing in the kernel depends on the unit, but the rest of the
repository assumes it.

The kernel provides exactly what the FUSEE reproduction needs:

* :class:`Event` — one-shot condition with callbacks and a value.
* :class:`Timeout` — an event that fires after a delay.
* :class:`Process` — wraps a generator; itself an event that fires when the
  generator returns (value = return value) or raises (failure).
* :class:`AllOf` / :class:`AnyOf` — composite conditions.
* :class:`Interrupt` — thrown into a process by :meth:`Process.interrupt`.

Kernel modes
------------

The environment runs in one of two modes (see
``docs/simulation_model.md``, "Kernel fast path & determinism contract"):

* ``"fast"`` (the default) — when no controlled scheduler and no profiler
  are installed, :meth:`Environment.run` drains the queue through an
  inlined loop that pools :class:`Timeout`, :class:`Initialize` and
  resume-proxy events on free lists and recycles them once their sole
  remaining reference is the drain loop's own local.  Event *identity*
  is reused but every observable field is reset, the heap tie-break is a
  monotone insertion id, and the sequence of ``_schedule`` calls is
  unchanged — so event ordering (time, priority, insertion) is
  bit-for-bit identical to the reference path.
* ``"reference"`` — the pre-optimisation allocation behaviour, kept as
  the oracle for the conformance and differential suites: every proxy /
  timeout / initialize is a fresh object and ``run`` dispatches through
  :meth:`Environment.step`.

Installing a scheduler or profiler on a ``"fast"`` environment demotes it
to the hook-aware path automatically (``env._fast`` goes False); the mode
only controls whether the demotion is *permanent*.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "kernel_mode",
    "default_kernel_mode",
]

#: Priority bit packed above the insertion id in heap keys.  Interrupt
#: delivery uses priority 0 (sorts first at equal time); everything else
#: priority 1.  62 bits of insertion id is ~4.6e18 events — unreachable.
_PRIO_SHIFT = 62
_PRIO_NORMAL = 1 << _PRIO_SHIFT

_KERNEL_MODES = ("fast", "reference")
_DEFAULT_KERNEL = "fast"


def default_kernel_mode() -> str:
    """The mode new :class:`Environment` objects are created with."""
    return _DEFAULT_KERNEL


@contextmanager
def kernel_mode(mode: str):
    """Set the default kernel mode for environments created in the block.

    ``with kernel_mode("reference"):`` makes every bed built inside the
    block run on the retained pre-optimisation code path — the oracle the
    differential suites diff the fast path against.  The mode is captured
    at :class:`Environment` construction; leaving the block does not
    change already-built environments.
    """
    global _DEFAULT_KERNEL
    if mode not in _KERNEL_MODES:
        raise SimulationError(f"unknown kernel mode {mode!r}")
    previous = _DEFAULT_KERNEL
    _DEFAULT_KERNEL = mode
    try:
        yield
    finally:
        _DEFAULT_KERNEL = previous


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* (scheduled to fire), then *processed* (its
    callbacks run).  ``succeed`` and ``fail`` trigger it with a value or an
    exception respectively.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered",
                 "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value read before event triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, _PRIO_NORMAL | eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid
        env._eid = eid + 1
        heappush(env._queue, (env._now, _PRIO_NORMAL | eid, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Initialize(Event):
    """Internal event used to start a process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        self._ok = True
        env._schedule(self)


class _Proxy(Event):
    """Resume-proxy for a yield on an already-processed target.

    Behaviourally identical to the plain :class:`Event` the reference
    path allocates; a distinct class only so the fast drain loop can
    recognise and recycle it.
    """

    __slots__ = ()


class Process(Event):
    """A running generator-based process.

    The process is itself an event: it fires when the generator finishes.
    Yield an :class:`Event` from the generator to wait for it; the ``yield``
    expression evaluates to the event's value (or raises its exception).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        if env._fast and env._init_pool:
            init = env._init_pool.pop()
            init.callbacks.append(self._resume)
            eid = env._eid
            env._eid = eid + 1
            heappush(env._queue, (env._now, _PRIO_NORMAL | eid, init))
        else:
            Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self is self.env._active_process:
            raise SimulationError("a process cannot interrupt itself")
        if self._target is None:
            # The generator has not run its first step (its Initialize is
            # still queued): throwing into a fresh generator would kill
            # it before its body — and the queued Initialize would then
            # double-resume it.  Reject loudly, like SimPy does.
            raise SimulationError(
                "cannot interrupt a process before its first step")
        event = Event(self.env)
        event._defused = True
        event.callbacks.append(self._resume_interrupt)
        event._triggered = True
        event._ok = False
        event._value = Interrupt(cause)
        self.env._schedule(event, priority=0)

    # -- internal ----------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self._triggered:  # process finished before interrupt delivered
            return
        if (self._target is not None and self._target.callbacks is not None
                and self._resume in self._target.callbacks):
            self._target.callbacks.remove(self._resume)
        self._target = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event.value, throw=False)
        else:
            event._defused = True
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        env = self.env
        env._active_process = self
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            env._active_process = None
            self.fail(exc)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")
        if target._processed:
            # Already fired: resume immediately (next scheduler step).
            if env._fast:
                pool = env._proxy_pool
                proxy = pool.pop() if pool else _Proxy(env)
                proxy._triggered = True
            else:
                proxy = Event(env)
                proxy._triggered = True
            proxy.callbacks.append(self._resume)
            proxy._ok = target._ok
            proxy._value = target._value
            if not target._ok:
                target._defused = True
            # Park on the proxy: an interrupt racing this resume must be
            # able to find (and detach from) the pending wakeup, or the
            # process would be resumed twice.
            self._target = proxy
            eid = env._eid
            env._eid = eid + 1
            heappush(env._queue, (env._now, _PRIO_NORMAL | eid, proxy))
        else:
            self._target = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_count")

    #: AnyOf overrides this: an empty waiter list would never fire, which
    #: silently masks bugs in callers that build the list dynamically.
    _allow_empty = True

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        if not self.events:
            if not self._allow_empty:
                raise SimulationError(
                    f"{type(self).__name__}([]) would never fire: an empty "
                    "any-of has no event that could trigger it")
            self.succeed(self._build_value())
            return
        for event in self.events:
            if event._processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _build_value(self):
        return [e._value for e in self.events if e._triggered]

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when all child events have fired; value is the list of values."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is that event's value.

    ``AnyOf([])`` raises :class:`SimulationError`: with no children the
    condition could never fire, so an empty waiter list is always a bug
    at the call site (``AllOf([])`` stays vacuously true, matching the
    usual universal/existential quantifier convention).
    """

    __slots__ = ()

    _allow_empty = False

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(event._value)


class Environment:
    """The simulation environment: clock plus event queue.

    ``kernel`` selects the execution mode (``"fast"`` or ``"reference"``,
    see the module docstring); ``None`` takes the module default, which
    :func:`kernel_mode` overrides for a block.
    """

    def __init__(self, initial_time: float = 0.0,
                 kernel: Optional[str] = None):
        self._now = float(initial_time)
        self._queue: List = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Controlled-schedule hooks (repro.check): both default to None so
        # the normal path costs one attribute check per step/access.
        self._scheduler = None
        self._access_hook = None
        self._uids = itertools.count()
        # Latency-attribution hook (repro.obs.profile.Profiler): resources
        # and the fabric emit typed wait/service intervals through it.
        # None keeps the unprofiled path at one attribute check per site.
        self._profiler = None
        if kernel is None:
            kernel = _DEFAULT_KERNEL
        elif kernel not in _KERNEL_MODES:
            raise SimulationError(f"unknown kernel mode {kernel!r}")
        self._kernel = kernel
        # Free lists for the fast path.  Events land here only when the
        # drain loop holds their sole remaining reference, so identity
        # reuse is unobservable from simulation code.
        self._timeout_pool: List[Timeout] = []
        self._proxy_pool: List[_Proxy] = []
        self._init_pool: List[Initialize] = []
        # Single hot-path flag: true iff fast mode AND no scheduler AND no
        # profiler.  Collapses the per-event three-hook check.
        self._fast = kernel == "fast"

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def kernel(self) -> str:
        return self._kernel

    def _update_fast(self) -> None:
        self._fast = (self._kernel == "fast" and self._scheduler is None
                      and self._profiler is None)

    def require_fast(self) -> None:
        """Raise unless the fast drain loop is eligible to run.

        The kernel silently falls back to the hook-aware path when a
        controlled scheduler, profiler, or access hook is installed.
        Callers that promised a fast bed (``run_op(fast=True)``, the
        harness sweeps) call this to surface the fallback as an error
        instead of paying a hidden order-of-magnitude slowdown.  The
        retained reference mode (``kernel_mode("reference")``) passes:
        it is a deliberate differential-testing choice with identical
        semantics and similar speed, not an accidental hook.
        """
        if self._scheduler is not None:
            raise SimulationError(
                "fast kernel required, but a controlled scheduler is "
                "installed; pass fast=False for checked runs")
        if self._profiler is not None:
            raise SimulationError(
                "fast kernel required, but a profiler is installed; "
                "pass fast=False for profiled runs")
        if self._access_hook is not None:
            raise SimulationError(
                "fast kernel required, but an access hook is installed; "
                "pass fast=False for schedule-explored runs")

    # -- latency attribution (repro.obs.profile) ----------------------------
    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        self._update_fast()

    # -- controlled scheduling (repro.check) --------------------------------
    @property
    def scheduler(self):
        return self._scheduler

    def set_scheduler(self, scheduler) -> None:
        """Install (or remove, with ``None``) a controlled scheduler.

        A scheduler object must provide ``select(env) -> entry`` which pops
        and returns one entry from ``env._queue`` (the choice among all
        co-runnable entries at the minimum timestamp), plus
        ``begin_event(event)`` / ``end_event(event)`` bracketing hooks and
        a ``note_access(token, write)`` footprint sink.
        """
        self._scheduler = scheduler
        self._access_hook = None if scheduler is None \
            else scheduler.note_access
        self._update_fast()
        if scheduler is not None and getattr(scheduler, "env", None) is None:
            scheduler.env = self

    def note_access(self, token, write: bool) -> None:
        """Report a shared-state access of the currently running step.

        ``token`` is any hashable identity of the touched state (a memory
        word, a resource, an RPC target); used by the schedule explorer's
        sleep-set reduction to decide which event reorderings commute.
        """
        hook = self._access_hook
        if hook is not None:
            hook(token, write)

    def next_uid(self) -> int:
        """A deterministic id for shared resources (footprint tokens)."""
        return next(self._uids)

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if self._fast and self._timeout_pool:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
            tmo = self._timeout_pool.pop()
            tmo.delay = delay
            tmo._value = value
            tmo._triggered = True
            eid = self._eid
            self._eid = eid + 1
            heappush(self._queue,
                     (self._now + delay, _PRIO_NORMAL | eid, tmo))
            return tmo
        return Timeout(self, delay, value)

    def attributed_timeout(self, delay: float, category: str,
                           label: str) -> Timeout:
        """A timeout tagged for latency attribution.

        When a profiler (repro.obs.profile) is installed the sleep is
        recorded as a ``category`` interval (e.g. "backoff",
        "propagation") against the active span; otherwise this is
        exactly :meth:`timeout`.  Lives on the Environment so layers
        that cannot import each other (fabric vs. faults vs. client)
        share one implementation.
        """
        prof = self._profiler
        if prof is not None and delay > 0.0:
            prof.note(category, label, self._now, self._now + delay)
        return self.timeout(delay)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = 1) -> None:
        eid = self._eid
        self._eid = eid + 1
        heappush(self._queue,
                 (self._now + delay, (priority << _PRIO_SHIFT) | eid, event))

    def step(self) -> None:
        """Process the next scheduled event.

        With a controlled scheduler installed the choice among co-runnable
        events (all entries sharing the minimum timestamp) is delegated to
        it; otherwise the heap order (time, priority, insertion) applies.
        """
        if not self._queue:
            raise SimulationError("no more events")
        scheduler = self._scheduler
        if scheduler is None:
            when, _key, event = heappop(self._queue)
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            for callback in callbacks or ():
                callback(event)
            if event._ok is False and not event._defused:
                # Unhandled failure: surface it to the run()/step() caller.
                raise event._value
            return
        when, _key, event = scheduler.select(self)
        self._now = when
        scheduler.begin_event(event)
        try:
            callbacks, event.callbacks = event.callbacks, None
            event._processed = True
            for callback in callbacks or ():
                callback(event)
        finally:
            scheduler.end_event(event)
        if event._ok is False and not event._defused:
            raise event._value

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        if self._fast:
            return self._run_fast(until)
        return self._run_hooked(until)

    def _run_hooked(self, until: Any = None) -> Any:
        """The reference/hook-aware loop: dispatch through :meth:`step`."""
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop._processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ended before awaited event fired")
                self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = deadline
        return None

    def _run_fast(self, until: Any = None) -> Any:
        """Inlined drain loop for the no-hook case.

        Per event this costs one heap pop, the callback sweep, and one
        class check for free-list reclamation — no per-step method
        dispatch, no scheduler/profiler/access-hook triple check.  An
        event is recycled only when ``getrefcount`` proves the loop's
        local is its last reference; events never expose ``__weakref__``
        (slots-only), so no observer can tell identities were reused.
        """
        stop: Optional[Event] = None
        deadline: Optional[float] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop = until
        else:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(
                    f"until={deadline} is in the past (now={self._now})")
        queue = self._queue
        tpool = self._timeout_pool
        ppool = self._proxy_pool
        ipool = self._init_pool
        getrc = getrefcount
        pop = heappop
        while True:
            if stop is not None:
                if stop._processed:
                    break
                if not queue:
                    raise SimulationError(
                        "simulation ended before awaited event fired")
            elif not queue:
                if deadline is not None:
                    self._now = deadline
                return None
            elif deadline is not None and queue[0][0] > deadline:
                self._now = deadline
                return None
            if not self._fast:
                # A hook was installed mid-run (e.g. a profiler attached
                # from a callback): finish on the hook-aware path.
                return self._run_hooked(
                    stop if stop is not None else
                    (deadline if deadline is not None else None))
            when, _key, event = pop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            for callback in callbacks or ():
                callback(event)
            if event._ok is False and not event._defused:
                raise event._value
            # -- free-list reclamation ---------------------------------
            cls = event.__class__
            if cls is Timeout:
                if getrc(event) == 2 and callbacks is not None:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._processed = False
                    event._defused = False
                    event._value = None
                    tpool.append(event)
            elif cls is _Proxy:
                if getrc(event) == 2 and callbacks is not None:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._processed = False
                    event._triggered = False
                    event._defused = False
                    event._ok = None
                    event._value = None
                    ppool.append(event)
            elif cls is Initialize:
                if getrc(event) == 2 and callbacks is not None:
                    callbacks.clear()
                    event.callbacks = callbacks
                    event._processed = False
                    event._defused = False
                    ipool.append(event)
        if stop._ok:
            return stop._value
        stop._defused = True
        raise stop._value
