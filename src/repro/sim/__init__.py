"""Discrete-event simulation kernel used by the FUSEE reproduction."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    default_kernel_mode,
    kernel_mode,
)
from .resources import NicPort, NicProfile, Request, Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "default_kernel_mode",
    "kernel_mode",
    "NicPort",
    "NicProfile",
    "Request",
    "Resource",
]
