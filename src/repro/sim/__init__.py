"""Discrete-event simulation kernel used by the FUSEE reproduction."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import NicPort, NicProfile, Request, Resource

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "NicPort",
    "NicProfile",
    "Request",
    "Resource",
]
