"""Microbenchmark workloads (§6.2).

The paper's microbenchmark measures each operation type in isolation:
one stream of INSERTs of fresh keys, or UPDATE/SEARCH/DELETE over a
pre-loaded key set, uniformly distributed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .ycsb import key_bytes, make_value

__all__ = ["MicroConfig", "MicroWorkload"]

OPS = ("insert", "update", "search", "delete")


@dataclass(frozen=True)
class MicroConfig:
    op: str = "update"
    n_keys: int = 10_000
    kv_size: int = 1024
    key_prefix: str = "micro"
    # address the YCSB-style 'user...' keyspace (so a dataset loaded with
    # repro.workloads.ycsb.key_bytes can be reused for micro runs)
    use_ycsb_keys: bool = False

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown micro op {self.op!r}")

    @property
    def value_size(self) -> int:
        return max(0, self.kv_size - len(key_bytes(0)))


class MicroWorkload:
    """A per-client operation stream for a single-op microbenchmark.

    For INSERT, every client inserts fresh keys from a disjoint range.
    For DELETE, keys are deleted round-robin and re-inserted lazily by
    interleaved inserts so the stream never runs dry (delete/insert pairs,
    with only the deletes measured — matching how sustained DELETE
    throughput must be measured on a finite key set).
    """

    def __init__(self, config: MicroConfig, client_id: int = 0,
                 seed: int = 0):
        self.config = config
        self.client_id = client_id
        self._rng = random.Random((seed << 16) ^ client_id)
        self._insert_serial = 0
        self._delete_toggle = False
        self._pending_reinsert: Optional[bytes] = None

    def load_keys(self) -> List[bytes]:
        return [self._key(i) for i in range(self.config.n_keys)]

    def load_value(self, index: int) -> bytes:
        return make_value(self.config.value_size, salt=index)

    def _key(self, index: int) -> bytes:
        if self.config.use_ycsb_keys:
            return key_bytes(index)
        return f"{self.config.key_prefix}-{index:012d}".encode()

    def _fresh_key(self) -> bytes:
        key = (f"{self.config.key_prefix}-c{self.client_id}"
               f"-{self._insert_serial:012d}").encode()
        self._insert_serial += 1
        return key

    def next_op(self) -> Tuple[str, bytes, Optional[bytes], bool]:
        """Returns ``(op, key, value, measured)``."""
        cfg = self.config
        if cfg.op == "insert":
            return ("insert", self._fresh_key(),
                    make_value(cfg.value_size, salt=self._insert_serial),
                    True)
        if cfg.op == "search":
            return ("search", self._key(self._rng.randrange(cfg.n_keys)),
                    None, True)
        if cfg.op == "update":
            index = self._rng.randrange(cfg.n_keys)
            return ("update", self._key(index),
                    make_value(cfg.value_size, salt=index ^ self._rng.getrandbits(16)),
                    True)
        # delete: alternate delete (measured) / re-insert (unmeasured)
        if self._pending_reinsert is not None:
            key = self._pending_reinsert
            self._pending_reinsert = None
            return ("insert", key, make_value(cfg.value_size, salt=1), False)
        key = self._key(self._rng.randrange(cfg.n_keys))
        self._pending_reinsert = key
        return ("delete", key, None, True)
