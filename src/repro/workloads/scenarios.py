"""Production traffic scenarios: time-varying load, shifting popularity,
multi-tenant key spaces, and compound fault+load events.

The YCSB generators (:mod:`repro.workloads.ycsb`) model *stationary*
Zipfian mixes; production traffic is not stationary.  This module layers
three composable processes on top of them:

* **Rate schedules** — the aggregate arrival rate as a function of
  simulated time: :class:`DiurnalRate` curves with an idle trough,
  :class:`FlashCrowdRate` steps, linear :class:`RampRate` segments, and
  sums of all three (``schedule_a + schedule_b``).  Every schedule knows
  its own analytic integral, so tests can check *conservation*: the
  arrivals a seeded stream generates match ``integral(t0, t1)`` within
  Poisson tolerance.
* **Popularity shifts** — a monotonic rotation of the Zipf head over
  time: :class:`HotKeyStorm` rotates the hot set once per epoch (the
  FlexKV regime: index hot spots that only exist while a key is hot),
  :class:`WorkingSetDrift` slides it continuously.
* **Tenants** — disjoint per-tenant key namespaces with their own mix,
  skew and value size.  Per-tenant throughput/latency/error shares are
  recorded through the PR-9 telemetry plane (``tenant.<name>.*``
  instruments) and summarised by :func:`tenant_report`.

A :class:`Scenario` ties the three together plus an optional list of
:class:`FaultEvent` windows (expressed as *fractions* of the scenario
duration, so trimming a scenario keeps its compound fault+load alignment
— e.g. a flash crowd arriving inside a gray-node window).  Scenario
streams are **seeded and deterministic**: the same seed yields a
byte-identical operation stream, which is what makes the fault-campaign
and linearizability verdicts shipped with every scenario replayable
(``tests/test_scenarios.py``, ``repro faults --scenario``).

The registry :data:`SCENARIOS` maps a name to a factory; every entry
belongs to one of the five shipped families (``storm``, ``flash_crowd``,
``diurnal``, ``multi_tenant``, ``compound``).  See docs/scenarios.md for
the catalog and the verdict policy.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from .ycsb import ZIPFIAN_CONSTANT, ZipfianGenerator, make_value

__all__ = [
    "RateSchedule",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "RampRate",
    "SumRate",
    "PopularityShift",
    "HotKeyStorm",
    "WorkingSetDrift",
    "TenantSpec",
    "FaultEvent",
    "ScenarioOp",
    "Scenario",
    "ScenarioStream",
    "SaturatingStream",
    "SCENARIOS",
    "SCENARIO_FAMILIES",
    "SMOKE_TRIM",
    "get_scenario",
    "tenant_report",
]


# ==================================================================
# Rate schedules
# ==================================================================
class RateSchedule:
    """Aggregate arrival rate (ops per simulated microsecond) over time.

    Subclasses implement :meth:`rate`, :meth:`integral` (analytic — the
    conservation property in tests checks generated arrivals against
    it) and :meth:`peak_rate` (a tight upper bound used for Lewis &
    Shedler thinning).  Schedules compose by addition.
    """

    def rate(self, t_us: float) -> float:
        raise NotImplementedError

    def integral(self, t0_us: float, t1_us: float) -> float:
        """Exact expected arrivals in ``[t0_us, t1_us)``."""
        raise NotImplementedError

    def peak_rate(self) -> float:
        raise NotImplementedError

    def mean_rate(self, t0_us: float, t1_us: float) -> float:
        if t1_us <= t0_us:
            return 0.0
        return self.integral(t0_us, t1_us) / (t1_us - t0_us)

    def __add__(self, other: "RateSchedule") -> "SumRate":
        return SumRate(parts=(self, other))


@dataclass(frozen=True)
class ConstantRate(RateSchedule):
    """A stationary arrival rate (the degenerate schedule)."""

    rate_per_us: float

    def __post_init__(self):
        if self.rate_per_us < 0.0:
            raise ValueError("rate must be >= 0")

    def rate(self, t_us: float) -> float:
        return self.rate_per_us

    def integral(self, t0_us: float, t1_us: float) -> float:
        return self.rate_per_us * max(0.0, t1_us - t0_us)

    def peak_rate(self) -> float:
        return self.rate_per_us


@dataclass(frozen=True)
class DiurnalRate(RateSchedule):
    """A raised-cosine day/night curve.

    ``rate(t) = trough + (peak - trough) * (1 - cos(2*pi*t/period
    + phase)) / 2`` — with ``phase=0`` the schedule *starts* in the
    trough, so the first telemetry panes of a diurnal run see (near-)
    zero arrivals: exactly the idle-trough case the windowed metrics
    must survive without NaN burn rates (tests/test_telemetry.py).
    """

    trough: float
    peak: float
    period_us: float
    phase: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.trough <= self.peak:
            raise ValueError("need 0 <= trough <= peak")
        if self.period_us <= 0.0:
            raise ValueError("period must be > 0")

    def _angle(self, t_us: float) -> float:
        return 2.0 * math.pi * t_us / self.period_us + self.phase

    def rate(self, t_us: float) -> float:
        swing = self.peak - self.trough
        return self.trough + swing * (1.0 - math.cos(self._angle(t_us))) / 2.0

    def integral(self, t0_us: float, t1_us: float) -> float:
        if t1_us <= t0_us:
            return 0.0
        swing = self.peak - self.trough
        mid = self.trough + swing / 2.0
        scale = self.period_us / (2.0 * math.pi)
        anti = (math.sin(self._angle(t1_us)) - math.sin(self._angle(t0_us)))
        return mid * (t1_us - t0_us) - swing / 2.0 * scale * anti

    def peak_rate(self) -> float:
        return self.peak


@dataclass(frozen=True)
class FlashCrowdRate(RateSchedule):
    """A base rate plus a rectangular surge (the flash-crowd step)."""

    base: float
    surge: float
    at_us: float
    duration_us: float

    def __post_init__(self):
        if self.base < 0.0 or self.surge < 0.0:
            raise ValueError("rates must be >= 0")
        if self.duration_us < 0.0:
            raise ValueError("surge duration must be >= 0")

    def rate(self, t_us: float) -> float:
        if self.at_us <= t_us < self.at_us + self.duration_us:
            return self.base + self.surge
        return self.base

    def integral(self, t0_us: float, t1_us: float) -> float:
        if t1_us <= t0_us:
            return 0.0
        overlap = max(0.0, min(t1_us, self.at_us + self.duration_us)
                      - max(t0_us, self.at_us))
        return self.base * (t1_us - t0_us) + self.surge * overlap

    def peak_rate(self) -> float:
        return self.base + self.surge


@dataclass(frozen=True)
class RampRate(RateSchedule):
    """Linear ramp from ``lo`` to ``hi`` between ``t0_us`` and ``t1_us``
    (flat on both sides)."""

    lo: float
    hi: float
    t0_us: float
    t1_us: float

    def __post_init__(self):
        if self.lo < 0.0 or self.hi < 0.0:
            raise ValueError("rates must be >= 0")
        if self.t1_us <= self.t0_us:
            raise ValueError("need t1_us > t0_us")

    def rate(self, t_us: float) -> float:
        if t_us <= self.t0_us:
            return self.lo
        if t_us >= self.t1_us:
            return self.hi
        frac = (t_us - self.t0_us) / (self.t1_us - self.t0_us)
        return self.lo + (self.hi - self.lo) * frac

    def integral(self, t0_us: float, t1_us: float) -> float:
        if t1_us <= t0_us:
            return 0.0
        total = 0.0
        # flat head, ramp middle (trapezoid), flat tail
        head = max(0.0, min(t1_us, self.t0_us) - t0_us)
        total += self.lo * head
        a = max(t0_us, self.t0_us)
        b = min(t1_us, self.t1_us)
        if b > a:
            total += (self.rate(a) + self.rate(b)) / 2.0 * (b - a)
        tail = max(0.0, t1_us - max(t0_us, self.t1_us))
        total += self.hi * tail
        return total

    def peak_rate(self) -> float:
        return max(self.lo, self.hi)


@dataclass(frozen=True)
class SumRate(RateSchedule):
    """The sum of component schedules (flash crowd *on top of* a
    diurnal curve, and so on)."""

    parts: Tuple[RateSchedule, ...]

    def rate(self, t_us: float) -> float:
        return sum(p.rate(t_us) for p in self.parts)

    def integral(self, t0_us: float, t1_us: float) -> float:
        return sum(p.integral(t0_us, t1_us) for p in self.parts)

    def peak_rate(self) -> float:
        return sum(p.peak_rate() for p in self.parts)


# ==================================================================
# Popularity shifts
# ==================================================================
class PopularityShift:
    """A monotonic (never-rewinding) rotation of the popularity head.

    :meth:`offset` maps simulated time to a rank-space offset; streams
    add it to the Zipf rank before scattering, so the *identity* of the
    hot keys moves while the skew stays fixed.  Monotonicity (``t1 <=
    t2`` implies ``offset(t1) <= offset(t2)``) is a tested property —
    a hot set must never rotate backwards.
    """

    def offset(self, t_us: float) -> int:
        raise NotImplementedError

    def epoch(self, t_us: float) -> int:
        """A label that changes whenever the hot set moves."""
        return self.offset(t_us)


@dataclass(frozen=True)
class HotKeyStorm(PopularityShift):
    """Rotate the Zipf head by ``stride`` ranks once per ``period_us``:
    each epoch crowns a different hot-key set."""

    period_us: float
    stride: int = 1

    def __post_init__(self):
        if self.period_us <= 0.0:
            raise ValueError("period must be > 0")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")

    def offset(self, t_us: float) -> int:
        return int(t_us // self.period_us) * self.stride

    def epoch(self, t_us: float) -> int:
        return int(t_us // self.period_us)


@dataclass(frozen=True)
class WorkingSetDrift(PopularityShift):
    """Slide the working set continuously at ``keys_per_us``."""

    keys_per_us: float

    def __post_init__(self):
        if self.keys_per_us < 0.0:
            raise ValueError("drift must be >= 0")

    def offset(self, t_us: float) -> int:
        return int(t_us * self.keys_per_us)


# ==================================================================
# Tenants
# ==================================================================
@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a private key namespace plus its own mix and skew.

    ``mix`` is ``(search, update, insert, delete)`` fractions.  Deletes
    target keys the same stream freshly inserted (so alloc/free churn
    stays per-tenant and the history stays checkable); a delete drawn
    with nothing live degrades to a search.
    """

    name: str
    n_keys: int
    weight: float = 1.0
    mix: Tuple[float, float, float, float] = (0.50, 0.45, 0.05, 0.00)
    theta: float = ZIPFIAN_CONSTANT
    value_size: int = 64

    def __post_init__(self):
        if not self.name or ":" in self.name:
            raise ValueError("tenant name must be non-empty, ':'-free")
        if self.n_keys < 1:
            raise ValueError("tenant needs at least one key")
        if self.weight <= 0.0:
            raise ValueError("tenant weight must be > 0")
        if abs(sum(self.mix) - 1.0) > 1e-9 or any(f < 0 for f in self.mix):
            raise ValueError("mix fractions must be >= 0 and sum to 1")

    def key(self, index: int) -> bytes:
        """A preloaded key of this tenant's namespace."""
        return f"{self.name}:user{index % self.n_keys:012d}".encode()

    def fresh_key(self, client_index: int, serial: int) -> bytes:
        """A never-preloaded key for INSERT churn (per-stream private)."""
        return (f"{self.name}:c{client_index:04d}"
                f"n{serial:010d}").encode()

    def preload_items(self) -> Iterator[Tuple[bytes, bytes]]:
        for i in range(self.n_keys):
            yield self.key(i), make_value(self.value_size, salt=i)


# ==================================================================
# Compound fault events
# ==================================================================
@dataclass(frozen=True)
class FaultEvent:
    """A declarative fault window carried by a compound scenario.

    Times are *fractions of the scenario duration* so a trimmed
    scenario keeps the fault aligned with its load event (the flash
    crowd still lands inside the gray window).  The faults layer
    translates these into a :class:`repro.faults.model.FaultPlan`
    (:func:`repro.faults.campaign.scenario_fault_plan`) — this module
    stays import-free of the fault layer.
    """

    kind: str                      # "gray" | "loss" | "partition"
    start_frac: float
    end_frac: float
    mn_id: int = 0
    factor: float = 4.0            # gray service-time multiplier
    drop_p: float = 0.0
    dup_p: float = 0.0
    jitter_us: float = 0.0

    def __post_init__(self):
        if self.kind not in ("gray", "loss", "partition"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise ValueError("need 0 <= start_frac < end_frac <= 1")


# ==================================================================
# Scenario + streams
# ==================================================================
class ScenarioOp(tuple):
    """``(at_us, tenant, op, key, value)`` — one timed arrival."""
    __slots__ = ()

    def __new__(cls, at_us, tenant, op, key, value):
        return tuple.__new__(cls, (at_us, tenant, op, key, value))

    at_us = property(lambda self: self[0])
    tenant = property(lambda self: self[1])
    op = property(lambda self: self[2])
    key = property(lambda self: self[3])
    value = property(lambda self: self[4])

    def encode(self) -> bytes:
        """Canonical byte form (the determinism property compares these)."""
        value = self.value if self.value is not None else b""
        return b"|".join([repr(self.at_us).encode(),
                          self.tenant.encode(), self.op.encode(),
                          self.key, value])


_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a64(value: int) -> int:
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


@dataclass(frozen=True)
class Scenario:
    """A named, seeded production-traffic scenario.

    ``schedule`` paces the *aggregate* arrival process (split evenly
    over ``n_clients`` independent thinned streams); ``tenants`` carve
    the key space; ``shift`` rotates each tenant's popularity head;
    ``faults`` declares the compound fault windows (empty for pure-load
    scenarios).  Instances are frozen — use :func:`dataclasses.replace`
    or :func:`get_scenario` overrides to resize one.
    """

    name: str
    family: str                    # one of SCENARIO_FAMILIES
    schedule: RateSchedule
    tenants: Tuple[TenantSpec, ...]
    duration_us: float
    n_clients: int = 4
    shift: Optional[PopularityShift] = None
    faults: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    description: str = ""

    def __post_init__(self):
        if self.family not in SCENARIO_FAMILIES:
            raise ValueError(f"unknown family {self.family!r} "
                             f"(one of {sorted(SCENARIO_FAMILIES)})")
        if not self.tenants:
            raise ValueError("a scenario needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.duration_us <= 0.0:
            raise ValueError("duration must be > 0")
        if self.n_clients < 1:
            raise ValueError("need at least one client")

    # ------------------------------------------------------------ keys
    def preload_items(self) -> List[Tuple[bytes, bytes]]:
        """Every tenant's preloaded key set (the linearizability
        checker's initial map)."""
        items: List[Tuple[bytes, bytes]] = []
        for tenant in self.tenants:
            items.extend(tenant.preload_items())
        return items

    def hot_index(self, tenant: TenantSpec, t_us: float) -> int:
        """The key index a rank-0 (hottest) draw maps to at ``t_us``."""
        off = self.shift.offset(t_us) if self.shift is not None else 0
        return _fnv1a64(off) % tenant.n_keys

    # ---------------------------------------------------------- streams
    def client_stream(self, client_index: int,
                      seed: Optional[int] = None) -> "ScenarioStream":
        """The timed, deterministic op stream of one client."""
        return ScenarioStream(self, client_index,
                              self.seed if seed is None else seed)

    def saturating_workload(self, client_index: int,
                            seed: Optional[int] = None
                            ) -> "SaturatingStream":
        """A closed-loop adapter: same op sequence, no pacing.

        The scheduled arrival times still drive the popularity
        rotation, so a saturating run sees the same hot-set churn —
        this is the workload behind ``fig21_elasticity``'s
        saturating-load mode.
        """
        return SaturatingStream(self.client_stream(client_index, seed))

    def ops(self, seed: Optional[int] = None) -> List[ScenarioOp]:
        """All clients' streams merged in arrival order (analysis/tests)."""
        merged: List[ScenarioOp] = []
        for index in range(self.n_clients):
            merged.extend(self.client_stream(index, seed))
        merged.sort(key=lambda op: (op.at_us, op.key))
        return merged


class ScenarioStream:
    """One client's seeded arrival stream (iterator of ScenarioOp).

    Arrivals come from Lewis & Shedler thinning of the scenario
    schedule at ``1/n_clients`` of the aggregate rate, so the union of
    all client streams realises the schedule.  Everything downstream of
    the seed is deterministic: same ``(scenario, client_index, seed)``
    means a byte-identical stream.
    """

    def __init__(self, scenario: Scenario, client_index: int, seed: int):
        self.scenario = scenario
        self.client_index = client_index
        self.seed = seed
        self._rng = random.Random(
            (seed * 0x9E3779B97F4A7C15 + client_index * 0x100000001B3 + 1)
            & 0xFFFFFFFFFFFFFFFF)
        self._choosers = {
            t.name: ZipfianGenerator(
                t.n_keys, t.theta,
                seed=(seed << 16) ^ (client_index << 4) ^ hash_name(t.name))
            for t in scenario.tenants}
        self._weights = [t.weight for t in scenario.tenants]
        self._total_weight = sum(self._weights)
        self._live: Dict[str, List[bytes]] = {t.name: []
                                              for t in scenario.tenants}
        self._serial = 0

    # ------------------------------------------------------------ draw
    def _pick_tenant(self) -> TenantSpec:
        tenants = self.scenario.tenants
        if len(tenants) == 1:
            return tenants[0]
        roll = self._rng.random() * self._total_weight
        acc = 0.0
        for tenant, weight in zip(tenants, self._weights):
            acc += weight
            if roll < acc:
                return tenant
        return tenants[-1]

    def _pick_key(self, tenant: TenantSpec, t_us: float) -> bytes:
        rank = self._choosers[tenant.name].next()
        shift = self.scenario.shift
        off = shift.offset(t_us) if shift is not None else 0
        return tenant.key(_fnv1a64(rank + off) % tenant.n_keys)

    def _make_op(self, at_us: float) -> ScenarioOp:
        tenant = self._pick_tenant()
        search_f, update_f, insert_f, _delete_f = tenant.mix
        roll = self._rng.random()
        self._serial += 1
        if roll < search_f:
            return ScenarioOp(at_us, tenant.name, "search",
                              self._pick_key(tenant, at_us), None)
        if roll < search_f + update_f:
            key = self._pick_key(tenant, at_us)
            value = make_value(tenant.value_size, salt=self._serial)
            return ScenarioOp(at_us, tenant.name, "update", key, value)
        if roll < search_f + update_f + insert_f:
            key = tenant.fresh_key(self.client_index, self._serial)
            self._live[tenant.name].append(key)
            value = make_value(tenant.value_size, salt=self._serial)
            return ScenarioOp(at_us, tenant.name, "insert", key, value)
        live = self._live[tenant.name]
        if live:
            return ScenarioOp(at_us, tenant.name, "delete", live.pop(0),
                              None)
        return ScenarioOp(at_us, tenant.name, "search",
                          self._pick_key(tenant, at_us), None)

    # -------------------------------------------------------- iterate
    def __iter__(self) -> Iterator[ScenarioOp]:
        scenario = self.scenario
        lam_max = scenario.schedule.peak_rate() / scenario.n_clients
        if lam_max <= 0.0:
            return
        t = 0.0
        while True:
            t += self._rng.expovariate(lam_max)
            if t >= scenario.duration_us:
                return
            accept = (scenario.schedule.rate(t) / scenario.n_clients
                      / lam_max)
            if self._rng.random() < accept:
                yield self._make_op(t)


class SaturatingStream:
    """Closed-loop view of a :class:`ScenarioStream`: ``next_op()``
    returns plain ``(op, key, value)`` tuples as fast as they are asked
    for; once the timed stream is exhausted it wraps around on a fresh
    pass (saturation outlives the scheduled arrivals)."""

    def __init__(self, stream: ScenarioStream):
        self._stream = stream
        self._it = iter(stream)
        self._passes = 0

    def next_op(self) -> Tuple[str, bytes, Optional[bytes]]:
        for _ in range(2):
            try:
                event = next(self._it)
            except StopIteration:
                self._passes += 1
                self._it = iter(ScenarioStream(
                    self._stream.scenario, self._stream.client_index,
                    self._stream.seed + 7919 * self._passes))
                continue
            return event.op, event.key, event.value
        raise RuntimeError("scenario stream produced no arrivals; "
                           "raise the schedule's rate")


def hash_name(name: str) -> int:
    """Stable (non-PYTHONHASHSEED) tenant-name hash for seeding."""
    h = _FNV_OFFSET
    for b in name.encode():
        h ^= b
        h = (h * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return h


# ==================================================================
# Per-tenant isolation report
# ==================================================================
def tenant_report(metrics, scenario: Scenario) -> Dict[str, dict]:
    """Summarise per-tenant isolation from a run's ``Metrics``.

    The paced/open-loop runner records ``tenant.<name>.ops``,
    ``tenant.<name>.errors`` and ``tenant.<name>.latency_us`` (and,
    under :func:`repro.obs.windowed_metrics`, the same per windowed
    pane).  Returns per tenant: op count, throughput share, error
    share, and p50/p99 latency — the numbers a multi-tenant SLO would
    be written against.
    """
    total_ops = 0
    total_errors = 0
    rows: Dict[str, dict] = {}
    for tenant in scenario.tenants:
        ops = metrics.counter(f"tenant.{tenant.name}.ops").value
        errors = metrics.counter(f"tenant.{tenant.name}.errors").value
        total_ops += ops
        total_errors += errors
    for tenant in scenario.tenants:
        ops = metrics.counter(f"tenant.{tenant.name}.ops").value
        errors = metrics.counter(f"tenant.{tenant.name}.errors").value
        hist = metrics.histogram(f"tenant.{tenant.name}.latency_us")
        rows[tenant.name] = {
            "ops": int(ops),
            "errors": int(errors),
            "throughput_share": (ops / total_ops) if total_ops else 0.0,
            "error_share": (errors / total_errors) if total_errors else 0.0,
            "p50_us": hist.percentile(50.0),
            "p99_us": hist.percentile(99.0),
        }
    return rows


# ==================================================================
# The shipped catalog (one factory per family)
# ==================================================================
SCENARIO_FAMILIES = ("storm", "flash_crowd", "diurnal", "multi_tenant",
                     "compound")


def _storm(duration_us: float = 20_000.0, keys_per_tenant: int = 600,
           n_clients: int = 4, rate_scale: float = 1.0,
           seed: int = 0) -> Scenario:
    """Hot-key storm: constant saturating-ish load, the Zipf head
    rotates every eighth of the run."""
    return Scenario(
        name="hot-key-storm", family="storm",
        schedule=ConstantRate(0.16 * rate_scale),
        tenants=(TenantSpec("storm", keys_per_tenant,
                            mix=(0.50, 0.45, 0.05, 0.00)),),
        shift=HotKeyStorm(period_us=duration_us / 8.0, stride=7),
        duration_us=duration_us, n_clients=n_clients, seed=seed,
        description="constant load; the hot-key set rotates 8x per run")


def _flash_crowd(duration_us: float = 20_000.0,
                 keys_per_tenant: int = 600, n_clients: int = 4,
                 rate_scale: float = 1.0, seed: int = 0) -> Scenario:
    """Flash crowd: a 4x surge arriving in the middle third of the run."""
    return Scenario(
        name="flash-crowd", family="flash_crowd",
        schedule=FlashCrowdRate(base=0.05 * rate_scale,
                                surge=0.20 * rate_scale,
                                at_us=duration_us / 3.0,
                                duration_us=duration_us / 3.0),
        tenants=(TenantSpec("crowd", keys_per_tenant,
                            mix=(0.70, 0.25, 0.05, 0.00)),),
        duration_us=duration_us, n_clients=n_clients, seed=seed,
        description="4x step surge over the middle third of the run")


def _diurnal(duration_us: float = 20_000.0, keys_per_tenant: int = 600,
             n_clients: int = 4, rate_scale: float = 1.0,
             seed: int = 0) -> Scenario:
    """Diurnal curve with working-set drift; starts in the idle trough
    (the zero-arrival panes the telemetry plane must survive)."""
    return Scenario(
        name="diurnal", family="diurnal",
        schedule=DiurnalRate(trough=0.0, peak=0.22 * rate_scale,
                             period_us=duration_us / 2.0),
        tenants=(TenantSpec("day", keys_per_tenant,
                            mix=(0.60, 0.35, 0.05, 0.00)),),
        shift=WorkingSetDrift(keys_per_us=keys_per_tenant
                              / (4.0 * duration_us)),
        duration_us=duration_us, n_clients=n_clients, seed=seed,
        description="two day/night cycles from an idle trough, with "
                    "slow working-set drift")


def _multi_tenant(duration_us: float = 20_000.0,
                  keys_per_tenant: int = 400, n_clients: int = 4,
                  rate_scale: float = 1.0, seed: int = 0) -> Scenario:
    """Three tenants with disjoint key spaces and different mixes: a
    read-mostly tenant, a write-heavy tenant, and a churn tenant doing
    insert/delete cycles."""
    return Scenario(
        name="multi-tenant", family="multi_tenant",
        schedule=ConstantRate(0.15 * rate_scale)
        + RampRate(lo=0.0, hi=0.06 * rate_scale,
                   t0_us=0.0, t1_us=duration_us),
        tenants=(
            TenantSpec("readmost", keys_per_tenant, weight=3.0,
                       mix=(0.92, 0.08, 0.00, 0.00)),
            TenantSpec("writer", keys_per_tenant, weight=2.0,
                       mix=(0.30, 0.65, 0.05, 0.00)),
            TenantSpec("churn", max(32, keys_per_tenant // 4), weight=1.0,
                       mix=(0.40, 0.20, 0.25, 0.15), value_size=48),
        ),
        duration_us=duration_us, n_clients=n_clients, seed=seed,
        description="3 tenants (read-mostly / write-heavy / "
                    "insert-delete churn) on a slowly ramping base load")


def _flash_crowd_gray(duration_us: float = 20_000.0,
                      keys_per_tenant: int = 600, n_clients: int = 4,
                      rate_scale: float = 1.0, seed: int = 0) -> Scenario:
    """Compound event: the flash crowd arrives while MN 0 is gray
    (slow-but-alive) and the fabric drops/duplicates a little."""
    return Scenario(
        name="flash-crowd-gray", family="compound",
        schedule=FlashCrowdRate(base=0.05 * rate_scale,
                                surge=0.18 * rate_scale,
                                at_us=duration_us * 0.35,
                                duration_us=duration_us * 0.30),
        tenants=(TenantSpec("crowd", keys_per_tenant,
                            mix=(0.60, 0.33, 0.05, 0.02)),),
        faults=(
            FaultEvent("gray", start_frac=0.25, end_frac=0.75,
                       mn_id=0, factor=4.0),
            FaultEvent("loss", start_frac=0.05, end_frac=0.95,
                       drop_p=0.005, dup_p=0.005),
        ),
        duration_us=duration_us, n_clients=n_clients, seed=seed,
        description="flash crowd landing inside a gray-MN window, on a "
                    "mildly lossy fabric")


SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "hot-key-storm": _storm,
    "flash-crowd": _flash_crowd,
    "diurnal": _diurnal,
    "multi-tenant": _multi_tenant,
    "flash-crowd-gray": _flash_crowd_gray,
}


# The canonical CI/test trim: small enough that a full fault-campaign +
# linearizability verdict per family runs in seconds, spread enough that
# no single key's history overflows the bitmask linearizability checker.
SMOKE_TRIM = {"duration_us": 3_000.0, "keys_per_tenant": 150,
              "n_clients": 3, "rate_scale": 0.6}


def get_scenario(name: str, **overrides) -> Scenario:
    """Resolve a scenario name to a built instance.

    ``overrides`` are factory knobs: ``duration_us``,
    ``keys_per_tenant``, ``n_clients``, ``rate_scale``, ``seed`` —
    the trimmed smoke variants in CI pass small values here; replayed
    verdicts pass the recorded seed.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown scenario {name!r} (one of: {known})")
    return factory(**overrides)
