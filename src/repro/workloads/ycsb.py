"""YCSB workload generation (Cooper et al., SoCC'10), as used in §6.3.

The paper: "we generate 100,000 keys with the Zipfian distribution
(θ = 0.99). We use 1024-byte KV pairs."  Workloads:

* **A** — 50% SEARCH / 50% UPDATE (write-intensive)
* **B** — 95% SEARCH /  5% UPDATE (read-intensive)
* **C** — 100% SEARCH (read-only)
* **D** — 95% SEARCH of *recent* keys / 5% INSERT (read-latest)

plus the custom SEARCH:UPDATE mixes of Fig. 15.

The Zipfian generator is the standard YCSB rejection-free construction
(Gray et al.'s "Quickly generating billion-record synthetic databases"
algorithm) with the zeta constants precomputed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "ZipfianGenerator",
    "ScrambledZipfian",
    "LatestGenerator",
    "YcsbConfig",
    "YcsbWorkload",
    "WORKLOAD_MIXES",
    "make_value",
    "key_bytes",
]

ZIPFIAN_CONSTANT = 0.99

# op mixes: (search, update, insert) fractions
WORKLOAD_MIXES = {
    "A": (0.50, 0.50, 0.00),
    "B": (0.95, 0.05, 0.00),
    "C": (1.00, 0.00, 0.00),
    "D": (0.95, 0.00, 0.05),
}


class ZipfianGenerator:
    """Zipf-distributed integers in ``[0, n)`` with parameter theta."""

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 seed: Optional[int] = None):
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = ((1.0 - math.pow(2.0 / n, 1.0 - theta))
                     / (1.0 - self._zeta2 / self._zetan))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        return int(self.n * math.pow(self._eta * u - self._eta + 1.0,
                                     self._alpha))

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()


class ScrambledZipfian:
    """Zipfian ranks scattered over the key space (YCSB's scrambled mode),
    so hot keys are not clustered in the same hash-index region."""

    FNV_OFFSET = 0xCBF29CE484222325
    FNV_PRIME = 0x100000001B3

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT,
                 seed: Optional[int] = None):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    @classmethod
    def _fnv1a64(cls, value: int) -> int:
        h = cls.FNV_OFFSET
        for _ in range(8):
            h ^= value & 0xFF
            h = (h * cls.FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h

    def next(self) -> int:
        return self._fnv1a64(self._zipf.next()) % self.n


class LatestGenerator:
    """YCSB-D's read-latest distribution: recent inserts are hottest."""

    def __init__(self, initial_n: int, theta: float = ZIPFIAN_CONSTANT,
                 seed: Optional[int] = None):
        self._max = initial_n - 1
        self._zipf = ZipfianGenerator(initial_n, theta, seed)

    def observe_insert(self, key_index: int) -> None:
        self._max = max(self._max, key_index)

    def next(self) -> int:
        offset = self._zipf.next()
        return max(0, self._max - (offset % (self._max + 1)))


_KEY_BYTES_CACHE: dict = {}


def key_bytes(index: int) -> bytes:
    """YCSB-style key: 'user' + zero-padded index (24 bytes total).

    Memoised: the zipfian choosers revisit hot preloaded indices
    constantly, and formatting+encoding per op is measurable at scale.
    The cache is bounded by the preloaded key range in practice (fresh
    inserts go through the per-client namespaced format instead).
    """
    cached = _KEY_BYTES_CACHE.get(index)
    if cached is None:
        cached = f"user{index:020d}".encode()
        _KEY_BYTES_CACHE[index] = cached
    return cached


def make_value(value_size: int, salt: int = 0) -> bytes:
    """A deterministic, non-compressible-looking value of the given size."""
    if value_size == 0:
        return b""
    pattern = (salt * 0x9E3779B97F4A7C15 + 0x243F6A8885A308D3) & ((1 << 64) - 1)
    raw = pattern.to_bytes(8, "big") * (value_size // 8 + 1)
    return raw[:value_size]


@dataclass(frozen=True)
class YcsbConfig:
    """Parameters of one YCSB run (§6.3 defaults)."""

    workload: str = "A"
    n_keys: int = 100_000
    kv_size: int = 1024            # total key+value bytes (paper default)
    theta: float = ZIPFIAN_CONSTANT
    scrambled: bool = True
    # custom (search, update, insert) mix overriding `workload` (Fig. 15)
    mix: Optional[Tuple[float, float, float]] = None

    def __post_init__(self):
        if self.mix is None and self.workload not in WORKLOAD_MIXES:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.mix is not None and abs(sum(self.mix) - 1.0) > 1e-9:
            raise ValueError("mix fractions must sum to 1")
        if self.kv_size < 64:
            raise ValueError("kv_size too small for key framing")

    @property
    def fractions(self) -> Tuple[float, float, float]:
        return self.mix if self.mix is not None else WORKLOAD_MIXES[
            self.workload]

    @property
    def value_size(self) -> int:
        return self.kv_size - len(key_bytes(0))


class YcsbWorkload:
    """A per-client stream of (op, key, value) YCSB operations."""

    def __init__(self, config: YcsbConfig, seed: int = 0):
        self.config = config
        self._tag = seed & 0xFFFF  # namespaces this client's fresh inserts
        self._rng = random.Random(seed ^ 0x5DEECE66D)
        if config.workload == "D" and config.mix is None:
            self._latest = LatestGenerator(config.n_keys, config.theta,
                                           seed=seed)
            self._chooser = None
        else:
            self._latest = None
            cls = ScrambledZipfian if config.scrambled else ZipfianGenerator
            self._chooser = cls(config.n_keys, config.theta, seed=seed)
        self._next_insert = config.n_keys
        self._op_serial = 0
        # Per-op hot constants: the config properties re-derive these on
        # every access (value_size even formats a key), so copy once.
        self._fractions = config.fractions
        self._value_size = config.value_size
        self._n_keys = config.n_keys

    def load_keys(self) -> List[bytes]:
        """The keys preloaded before the measured run."""
        return [key_bytes(i) for i in range(self.config.n_keys)]

    def load_value(self, index: int) -> bytes:
        return make_value(self.config.value_size, salt=index)

    def next_op(self) -> Tuple[str, bytes, Optional[bytes]]:
        """Returns ``(op, key, value)`` with op in search/update/insert."""
        search_f, update_f, _insert_f = self._fractions
        r = self._rng.random()
        self._op_serial += 1
        if r < search_f:
            return "search", self._key(self._choose()), None
        if r < search_f + update_f:
            index = self._choose()
            value = make_value(self._value_size,
                               salt=index ^ self._op_serial)
            return "update", key_bytes(index), value
        index = self._next_insert
        self._next_insert += 1
        if self._latest is not None:
            self._latest.observe_insert(index)
        return "insert", self._key(index), self.load_value(index)

    def _key(self, index: int) -> bytes:
        """Preloaded keys are global; fresh inserts (YCSB-D) are
        namespaced per client stream so concurrent clients never collide."""
        if index < self._n_keys:
            return key_bytes(index)
        return f"user{self._tag:05d}n{index:015d}".encode()

    def _choose(self) -> int:
        if self._latest is not None:
            return self._latest.next()
        return self._chooser.next()
