"""Workload generators: YCSB (§6.3) and microbenchmarks (§6.2)."""

from .micro import MicroConfig, MicroWorkload
from .ycsb import (
    LatestGenerator,
    ScrambledZipfian,
    WORKLOAD_MIXES,
    YcsbConfig,
    YcsbWorkload,
    ZipfianGenerator,
    key_bytes,
    make_value,
)

__all__ = [
    "MicroConfig",
    "MicroWorkload",
    "LatestGenerator",
    "ScrambledZipfian",
    "WORKLOAD_MIXES",
    "YcsbConfig",
    "YcsbWorkload",
    "ZipfianGenerator",
    "key_bytes",
    "make_value",
]
