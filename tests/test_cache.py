"""Tests for the adaptive index cache (§4.6)."""

import pytest

from repro.core.cache import AdaptiveIndexCache
from repro.core.race import SlotRef


def ref(i=0):
    return SlotRef(subtable=0, slot_index=i, placement=((0, 0), (1, 0)))


class TestBasics:
    def test_miss_returns_none(self):
        cache = AdaptiveIndexCache()
        assert cache.lookup(b"k") is None
        assert cache.stats.misses == 1

    def test_store_then_hit(self):
        cache = AdaptiveIndexCache()
        cache.store(b"k", ref(), 42)
        entry = cache.lookup(b"k")
        assert entry is not None
        assert entry.slot_word == 42
        assert cache.stats.hits == 1

    def test_disabled_cache_never_hits(self):
        cache = AdaptiveIndexCache(enabled=False)
        cache.store(b"k", ref(), 42)
        assert cache.lookup(b"k") is None
        assert len(cache) == 0

    def test_store_refreshes_word(self):
        cache = AdaptiveIndexCache()
        cache.store(b"k", ref(), 42)
        cache.store(b"k", ref(), 43)
        assert cache.peek(b"k").slot_word == 43
        assert len(cache) == 1

    def test_drop(self):
        cache = AdaptiveIndexCache()
        cache.store(b"k", ref(), 42)
        cache.drop(b"k")
        assert b"k" not in cache

    def test_drop_missing_is_noop(self):
        AdaptiveIndexCache().drop(b"nope")

    def test_clear(self):
        cache = AdaptiveIndexCache()
        cache.store(b"a", ref(), 1)
        cache.store(b"b", ref(), 2)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveIndexCache(capacity=0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveIndexCache(threshold=-0.1)


class TestLru:
    def test_eviction_order(self):
        cache = AdaptiveIndexCache(capacity=2)
        cache.store(b"a", ref(), 1)
        cache.store(b"b", ref(), 2)
        cache.lookup(b"a")           # a is now most recent
        cache.store(b"c", ref(), 3)  # evicts b
        assert b"a" in cache
        assert b"b" not in cache
        assert b"c" in cache
        assert cache.stats.evictions == 1

    def test_capacity_respected(self):
        cache = AdaptiveIndexCache(capacity=4)
        for i in range(10):
            cache.store(f"k{i}".encode(), ref(), i)
        assert len(cache) == 4


class TestAdaptiveBypass:
    def test_write_intensive_key_bypassed(self):
        cache = AdaptiveIndexCache(threshold=0.5)
        cache.store(b"hot", ref(), 1)
        # 2 accesses, 2 invalidations -> ratio 1.0 > 0.5
        cache.lookup(b"hot")
        cache.record_invalid(b"hot")
        cache.lookup(b"hot")
        cache.record_invalid(b"hot")
        assert cache.lookup(b"hot") is None
        assert cache.stats.bypasses >= 1

    def test_read_intensive_key_not_bypassed(self):
        cache = AdaptiveIndexCache(threshold=0.5)
        cache.store(b"cold", ref(), 1)
        for _ in range(10):
            assert cache.lookup(b"cold") is not None

    def test_ratio_decays_with_reads(self):
        """A write-intensive key that turns read-intensive is re-admitted
        because accesses keep counting while invalidations stop (§4.6)."""
        cache = AdaptiveIndexCache(threshold=0.5)
        cache.store(b"k", ref(), 1)
        cache.lookup(b"k")
        cache.record_invalid(b"k")
        cache.lookup(b"k")
        cache.record_invalid(b"k")
        assert cache.lookup(b"k") is None  # bypassed now (ratio ~1)
        # Reads keep bumping access_count even while bypassed...
        for _ in range(6):
            cache.lookup(b"k")
        # ...so the ratio fell below the threshold again.
        assert cache.lookup(b"k") is not None

    def test_zero_threshold_bypasses_after_first_invalid(self):
        cache = AdaptiveIndexCache(threshold=0.0)
        cache.store(b"k", ref(), 1)
        assert cache.lookup(b"k") is not None
        cache.record_invalid(b"k")
        assert cache.lookup(b"k") is None

    def test_huge_threshold_never_bypasses(self):
        cache = AdaptiveIndexCache(threshold=1e9)
        cache.store(b"k", ref(), 1)
        for _ in range(5):
            cache.lookup(b"k")
            cache.record_invalid(b"k")
        assert cache.lookup(b"k") is not None

    def test_record_invalid_unknown_key_noop(self):
        cache = AdaptiveIndexCache()
        cache.record_invalid(b"ghost")
        assert cache.stats.invalidations == 0

    def test_invalid_ratio_property(self):
        cache = AdaptiveIndexCache()
        cache.store(b"k", ref(), 1)
        entry = cache.peek(b"k")
        assert entry.invalid_ratio == 0.0
        cache.lookup(b"k")
        cache.record_invalid(b"k")
        assert entry.invalid_ratio == 1.0
