"""Tests for the SNAPSHOT replication protocol (Algorithms 1, 2).

These exercise the protocol directly on raw replicated slots (no KV layer)
with real concurrency in the simulator, including the paper's central
claims: exactly one winner per round, convergence of all replicas, bounded
RTTs, and linearizability of concurrent histories.
"""

import pytest

from repro.core.linearizability import History, check_linearizable
from repro.core.race import SlotRef
from repro.core.snapshot import (
    Outcome,
    RuleDecision,
    evaluate_rules,
    sequential_write,
    snapshot_read,
    snapshot_write,
)
from repro.rdma import FAIL, Fabric, FabricConfig, MemoryNode
from repro.sim import Environment


def make_slot(r=3):
    """A fabric with r MNs, each holding one replica of a single slot."""
    env = Environment()
    fabric = Fabric(env, FabricConfig())
    for mn in range(r):
        fabric.add_node(MemoryNode(env, mn, capacity=64))
    ref = SlotRef(subtable=0, slot_index=0,
                  placement=tuple((mn, 0) for mn in range(r)))
    return env, fabric, ref


def slot_values(fabric, ref):
    return [fabric.node(mn).read_word(addr) for mn, addr in ref.locations()]


class TestEvaluateRules:
    def test_fail_detected(self):
        assert evaluate_rules([FAIL, 5], 5) is RuleDecision.FAIL

    def test_rule1_all_mine(self):
        assert evaluate_rules([7, 7, 7], 7) is RuleDecision.RULE1

    def test_all_same_not_mine_loses(self):
        assert evaluate_rules([7, 7, 7], 9) is RuleDecision.LOSE

    def test_rule2_majority_mine(self):
        assert evaluate_rules([7, 7, 3], 7) is RuleDecision.RULE2

    def test_majority_not_mine_loses(self):
        assert evaluate_rules([7, 7, 3], 3) is RuleDecision.LOSE

    def test_absent_value_loses(self):
        assert evaluate_rules([7, 3], 9) is RuleDecision.LOSE

    def test_tie_requires_check(self):
        assert evaluate_rules([7, 3], 3) is RuleDecision.NEED_CHECK

    def test_rule3_min_wins_after_check(self):
        assert evaluate_rules([7, 3], 3, check_value=0,
                              v_old=0) is RuleDecision.RULE3

    def test_rule3_non_min_loses_after_check(self):
        assert evaluate_rules([7, 3], 7, check_value=0,
                              v_old=0) is RuleDecision.LOSE

    def test_finish_when_primary_moved(self):
        assert evaluate_rules([7, 3], 3, check_value=42,
                              v_old=0) is RuleDecision.FINISH

    def test_check_read_failure(self):
        assert evaluate_rules([7, 3], 3, check_value=FAIL,
                              v_old=0) is RuleDecision.FAIL

    def test_empty_v_list_rejected(self):
        with pytest.raises(ValueError):
            evaluate_rules([], 1)


class TestSingleWriter:
    @pytest.mark.parametrize("r", [2, 3, 5])
    def test_uncontended_write_wins_rule1(self, r):
        env, fabric, ref = make_slot(r)

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.WIN_RULE1
        assert slot_values(fabric, ref) == [42] * r

    def test_write_requires_distinct_value(self):
        env, fabric, ref = make_slot(2)

        def writer():
            return (yield from snapshot_write(fabric, ref, 5, 5))

        with pytest.raises(ValueError):
            env.run(until=env.process(writer()))

    def test_rule1_rtt_bound(self):
        """Rule 1 costs 2 RTTs here (backup CAS + primary CAS); the paper's
        3 includes the caller's initial primary read."""
        env, fabric, ref = make_slot(3)

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.rtts == 2

    def test_on_win_called_before_primary_cas(self):
        env, fabric, ref = make_slot(2)
        observed = []

        def hook(v_old):
            observed.append((v_old, slot_values(fabric, ref)))
            yield env.timeout(0.1)

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42,
                                              on_win=hook))

        env.run(until=env.process(writer()))
        assert len(observed) == 1
        v_old, values = observed[0]
        assert v_old == 0
        assert values[0] == 0       # primary not yet modified
        assert values[1] == 42      # backup already modified

    def test_r1_degenerate_write(self):
        env, fabric, ref = make_slot(1)

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.WIN_RULE1
        assert slot_values(fabric, ref) == [42]

    def test_r1_conflict_loses(self):
        env, fabric, ref = make_slot(1)
        fabric.node(0).write_word(0, 99)  # someone else already committed

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.LOSE
        assert result.committed == 99


class TestConcurrentWriters:
    @pytest.mark.parametrize("r,n_writers", [
        (2, 2), (2, 4), (3, 2), (3, 3), (3, 8), (4, 5), (5, 16),
    ])
    def test_exactly_one_winner_and_convergence(self, r, n_writers):
        env, fabric, ref = make_slot(r)
        results = {}

        def writer(wid):
            # stagger slightly so CAS interleavings vary
            yield env.timeout(wid * 0.1)
            result = yield from snapshot_write(fabric, ref, 0, 100 + wid)
            results[wid] = result

        for wid in range(n_writers):
            env.process(writer(wid))
        env.run()
        winners = [wid for wid, res in results.items() if res.outcome.won]
        assert len(winners) == 1
        winner_value = 100 + winners[0]
        assert slot_values(fabric, ref) == [winner_value] * r
        for wid, res in results.items():
            assert res.outcome.completed
            if not res.outcome.won:
                assert res.outcome in (Outcome.LOSE, Outcome.FINISH)
                if res.outcome is Outcome.LOSE:
                    assert res.committed == winner_value

    def test_simultaneous_writers_no_stagger(self):
        """All writers post at exactly t=0 — the worst-case tie."""
        env, fabric, ref = make_slot(3)
        results = {}

        def writer(wid):
            result = yield from snapshot_write(fabric, ref, 0, 100 + wid)
            results[wid] = result
            return None
            yield  # pragma: no cover

        for wid in range(6):
            env.process(writer(wid))
        env.run()
        winners = [wid for wid, r in results.items() if r.outcome.won]
        assert len(winners) == 1
        assert len(set(slot_values(fabric, ref))) == 1

    def test_on_win_hook_fires_exactly_once(self):
        env, fabric, ref = make_slot(3)
        calls = []

        def hook_for(wid):
            def hook(v_old):
                calls.append(wid)
                yield env.timeout(0.1)
            return hook

        def writer(wid):
            yield env.timeout(wid * 0.05)
            yield from snapshot_write(fabric, ref, 0, 100 + wid,
                                      on_win=hook_for(wid))

        for wid in range(5):
            env.process(writer(wid))
        env.run()
        assert len(calls) == 1

    def test_successive_rounds(self):
        """Conflict rounds chain: each round starts from the last commit."""
        env, fabric, ref = make_slot(3)
        committed = []

        def writer(round_no, wid):
            v_old = committed[round_no - 1] if round_no else 0
            result = yield from snapshot_write(fabric, ref, v_old,
                                               1000 * (round_no + 1) + wid)
            return result

        for round_no in range(4):
            procs = [env.process(writer(round_no, wid)) for wid in range(3)]
            env.run(until=env.all_of(procs))
            values = set(slot_values(fabric, ref))
            assert len(values) == 1
            committed.append(values.pop())
        assert len(set(committed)) == 4

    def test_max_wait_rounds_escalates(self):
        """A loser whose winner never commits escalates to the master."""
        env, fabric, ref = make_slot(2)
        # Simulate an in-flight round: the backup already holds a foreign
        # value but the 'winner' never CASes the primary.
        fabric.node(1).write_word(0, 77)

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42,
                                              max_wait_rounds=5))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER


class TestFailures:
    def test_backup_crash_needs_master(self):
        env, fabric, ref = make_slot(3)
        fabric.node(2).crash()

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER

    def test_primary_crash_needs_master(self):
        env, fabric, ref = make_slot(2)
        fabric.node(0).crash()

        def writer():
            return (yield from snapshot_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER


class TestRead:
    def test_reads_primary(self):
        env, fabric, ref = make_slot(2)
        fabric.node(0).write_word(0, 5)

        def reader():
            return (yield from snapshot_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value == 5
        assert not result.from_backups
        assert result.rtts == 1

    def test_primary_crash_consistent_backups(self):
        env, fabric, ref = make_slot(3)
        for mn in range(3):
            fabric.node(mn).write_word(0, 9)
        fabric.node(0).crash()

        def reader():
            return (yield from snapshot_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value == 9
        assert result.from_backups

    def test_primary_crash_inconsistent_backups_defers(self):
        env, fabric, ref = make_slot(3)
        fabric.node(1).write_word(0, 9)
        fabric.node(2).write_word(0, 11)
        fabric.node(0).crash()

        def reader():
            return (yield from snapshot_read(fabric, ref))

        result = env.run(until=env.process(reader()))
        assert result.value is None


class TestSequentialWrite:
    def test_single_writer_succeeds(self):
        env, fabric, ref = make_slot(3)

        def writer():
            return (yield from sequential_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome.won
        assert slot_values(fabric, ref) == [42] * 3

    @pytest.mark.parametrize("r", [1, 2, 3, 4, 5])
    def test_latency_grows_linearly_with_r(self, r):
        env, fabric, ref = make_slot(r)

        def writer():
            return (yield from sequential_write(fabric, ref, 0, 42))

        start = env.now
        result = env.run(until=env.process(writer()))
        assert result.rtts == r
        # one CAS RTT per replica
        assert env.now - start >= r * 2 * fabric.config.one_way_delay_us

    def test_conflict_single_winner(self):
        env, fabric, ref = make_slot(3)
        results = {}

        def writer(wid):
            yield env.timeout(wid * 0.01)
            results[wid] = yield from sequential_write(fabric, ref, 0,
                                                       100 + wid)

        for wid in range(4):
            env.process(writer(wid))
        env.run()
        winners = [wid for wid, r_ in results.items() if r_.outcome.won]
        assert len(winners) == 1
        assert slot_values(fabric, ref) == [100 + winners[0]] * 3

    def test_crashed_replica_needs_master(self):
        env, fabric, ref = make_slot(2)
        fabric.node(1).crash()

        def writer():
            return (yield from sequential_write(fabric, ref, 0, 42))

        result = env.run(until=env.process(writer()))
        assert result.outcome is Outcome.NEED_MASTER


class TestLinearizability:
    @pytest.mark.parametrize("r,n_writers,n_readers", [
        (2, 3, 4), (3, 4, 4), (3, 6, 8),
    ])
    def test_concurrent_history_linearizes(self, r, n_writers, n_readers):
        env, fabric, ref = make_slot(r)
        history = History(initial_value=0)

        def writer(wid):
            yield env.timeout(wid * 0.3)
            invoked = env.now
            result = yield from snapshot_write(fabric, ref, 0, 100 + wid)
            assert result.outcome.completed
            history.record("w", 100 + wid, invoked, env.now)

        def reader(rid):
            yield env.timeout(rid * 0.45)
            invoked = env.now
            result = yield from snapshot_read(fabric, ref)
            history.record("r", result.value, invoked, env.now)

        for wid in range(n_writers):
            env.process(writer(wid))
        for rid in range(n_readers):
            env.process(reader(rid))
        env.run()
        assert len(history) == n_writers + n_readers
        assert check_linearizable(history)

    def test_multi_round_history_linearizes(self):
        env, fabric, ref = make_slot(3)
        history = History(initial_value=0)
        committed = [0]

        def writer(value):
            invoked = env.now
            result = yield from snapshot_write(fabric, ref, committed[-1],
                                               value)
            history.record("w", value, invoked, env.now)
            return result

        def reader():
            invoked = env.now
            result = yield from snapshot_read(fabric, ref)
            history.record("r", result.value, invoked, env.now)

        for round_no in range(3):
            procs = [env.process(writer(10 * (round_no + 1) + wid))
                     for wid in range(3)]
            procs.append(env.process(reader()))
            env.run(until=env.all_of(procs))
            committed.append(fabric.node(0).read_word(0))
        assert check_linearizable(history)


class TestRuleUniquenessProperty:
    """Executable Lemmas 2 & 3 (Appendix A): for ANY outcome of the CAS
    broadcast — i.e. any assignment of winning writers to backup slots —
    the three rules decide at most one winner, and exactly one once the
    Rule-3 check read confirms the primary is unmodified."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def decide(assignment, writers, v_old=0):
        """Evaluate Algorithm 2 from every writer's perspective."""
        v_list = list(assignment)  # final backup contents (same for all)
        outcomes = {}
        for wid in writers:
            v_new = 100 + wid
            decision = evaluate_rules(v_list, v_new)
            if decision is RuleDecision.NEED_CHECK:
                decision = evaluate_rules(v_list, v_new,
                                          check_value=v_old, v_old=v_old)
            outcomes[wid] = decision
        return outcomes

    @given(st.data())
    @settings(max_examples=300)
    def test_exactly_one_winner(self, data):
        st = self.st
        n_writers = data.draw(st.integers(2, 6), label="writers")
        n_backups = data.draw(st.integers(1, 5), label="backups")
        writers = list(range(n_writers))
        # each backup slot was CASed by exactly one writer (atomicity)
        assignment = [100 + data.draw(st.sampled_from(writers),
                                      label=f"slot{i}")
                      for i in range(n_backups)]
        outcomes = self.decide(assignment, writers)
        winners = [w for w, d in outcomes.items()
                   if d in (RuleDecision.RULE1, RuleDecision.RULE2,
                            RuleDecision.RULE3)]
        assert len(winners) == 1, (assignment, outcomes)
        # and everyone else loses (no FINISH/FAIL in failure-free rounds)
        for wid, decision in outcomes.items():
            if wid != winners[0]:
                assert decision is RuleDecision.LOSE

    @given(st.data())
    @settings(max_examples=150)
    def test_winner_holds_a_plurality_or_minimum(self, data):
        """The decided winner is either a strict-majority holder or the
        minimum-value proposer (Rule 3)."""
        st = self.st
        writers = list(range(data.draw(st.integers(2, 5))))
        n_backups = data.draw(st.integers(1, 4))
        assignment = [100 + data.draw(st.sampled_from(writers))
                      for _ in range(n_backups)]
        outcomes = self.decide(assignment, writers)
        (winner, decision), = [(w, d) for w, d in outcomes.items()
                               if d is not RuleDecision.LOSE]
        value = 100 + winner
        if decision in (RuleDecision.RULE1, RuleDecision.RULE2):
            assert assignment.count(value) * 2 > len(assignment)
        else:
            assert value == min(assignment)
