"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main
from repro.harness import ALL_EXPERIMENTS


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_EXPERIMENTS:
            assert name in out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "it works" in out
        assert "verbs used" in out


class TestRun:
    def test_unknown_experiment_rejected(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "table1", "--scale", "galactic"])

    def test_run_writes_output_file(self, tmp_path, capsys):
        assert main(["run", "fig03", "--scale", "tiny",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "fig03" in out
        written = pathlib.Path(tmp_path, "fig03.txt")
        assert written.exists()
        assert "snapshot_mops" in written.read_text()

    def test_run_table1_tiny(self, capsys):
        assert main(["run", "table1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Recover connection & MR" in out
        assert "Total" in out


class TestProfile:
    def test_profile_writes_artifacts(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_profile.json"
        flame = tmp_path / "profile.folded"
        assert main(["profile", "--scale", "tiny", "--clients", "4",
                     "--out", str(out), "--flame", str(flame)]) == 0
        text = capsys.readouterr().out
        assert "overall:" in text and "makespan:" in text
        payload = json.loads(out.read_text())
        assert payload["system"] == "fusee"
        assert payload["profile"]["overall"]["count"] > 0
        assert payload["critical_path"]["makespan_us"] > 0
        lines = flame.read_text().splitlines()
        assert lines and all(len(l.split(";")) == 3 for l in lines)

    def test_profile_clover_bed(self, capsys):
        assert main(["profile", "--system", "clover", "--scale", "tiny",
                     "--clients", "4", "--out", ""]) == 0
        text = capsys.readouterr().out
        assert "clover" in text
        assert "metadata.cpu" in text

    def test_ycsb_profile_flag_prints_breakdown(self, capsys):
        assert main(["ycsb", "--keys", "100", "--clients", "2",
                     "--duration-us", "500", "--profile"]) == 0
        text = capsys.readouterr().out
        assert "overall:" in text
        assert "makespan:" in text
