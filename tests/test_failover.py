"""Memory-node crash handling (§5.2, Algorithm 3 / Algorithm 4)."""

import pytest

from repro.core import FuseeCluster
from tests.conftest import small_config, run


@pytest.fixture
def cluster():
    return FuseeCluster(small_config(n_memory_nodes=3,
                                     replication_factor=2))


def settle(cluster, extra_us=500.0):
    """Give the detector + repair machinery time to finish."""
    cluster.env.run(until=cluster.env.now + cluster.config.master.lease_us
                    + cluster.config.master.detector_interval_us + extra_us)


class TestDetection:
    def test_master_detects_crash(self, cluster):
        cluster.crash_memory_node(1)
        settle(cluster)
        assert 1 in cluster.master.handled_mn_failures

    def test_no_false_positives(self, cluster):
        settle(cluster)
        assert cluster.master.handled_mn_failures == []

    def test_epoch_bumped_after_repair(self, cluster):
        epoch = cluster.master.epoch
        cluster.crash_memory_node(0)
        settle(cluster)
        assert cluster.master.epoch == epoch + 1

    def test_placements_exclude_crashed_mn(self, cluster):
        cluster.crash_memory_node(1)
        settle(cluster)
        for subtable in range(cluster.race.config.n_subtables):
            mns = [mn for mn, _ in cluster.race.placement(subtable)]
            assert 1 not in mns
            assert len(mns) >= 1


class TestDataAvailability:
    def seed(self, cluster, client, n=60):
        for i in range(n):
            assert run(cluster, client.insert(f"key-{i}".encode(),
                                              f"val-{i}".encode())).ok

    @pytest.mark.parametrize("mn", [0, 1, 2])
    def test_search_survives_any_single_mn_crash(self, cluster, mn):
        client = cluster.new_client()
        self.seed(cluster, client)
        cluster.crash_memory_node(mn)
        settle(cluster)
        reader = cluster.new_client()
        for i in range(60):
            result = run(cluster, reader.search(f"key-{i}".encode()))
            assert result.ok, f"key-{i} lost after MN{mn} crash"
            assert result.value == f"val-{i}".encode()

    def test_search_with_warm_cache_survives(self, cluster):
        client = cluster.new_client()
        self.seed(cluster, client, n=30)
        for i in range(30):
            run(cluster, client.search(f"key-{i}".encode()))
        cluster.crash_memory_node(2)
        settle(cluster)
        for i in range(30):
            result = run(cluster, client.search(f"key-{i}".encode()))
            assert result.ok and result.value == f"val-{i}".encode()

    def test_writes_continue_after_failover(self, cluster):
        client = cluster.new_client()
        self.seed(cluster, client, n=20)
        cluster.crash_memory_node(1)
        settle(cluster)
        for i in range(20):
            assert run(cluster, client.update(f"key-{i}".encode(),
                                              b"updated")).ok
        for i in range(20):
            assert run(cluster, client.search(f"key-{i}".encode())).value \
                == b"updated"

    def test_inserts_continue_after_failover(self, cluster):
        client = cluster.new_client()
        cluster.crash_memory_node(2)
        settle(cluster)
        for i in range(20):
            assert run(cluster, client.insert(f"new-{i}".encode(), b"v")).ok
            assert run(cluster, client.search(f"new-{i}".encode())).ok

    def test_deletes_continue_after_failover(self, cluster):
        client = cluster.new_client()
        self.seed(cluster, client, n=10)
        cluster.crash_memory_node(0)
        settle(cluster)
        for i in range(10):
            assert run(cluster, client.delete(f"key-{i}".encode())).ok
            assert not run(cluster, client.search(f"key-{i}".encode())).ok


class TestWritesDuringCrash:
    def test_write_in_flight_during_crash_completes(self, cluster):
        """Clients writing while an MN dies either finish or escalate to
        the master, but never corrupt the index."""
        client = cluster.new_client()
        for i in range(20):
            run(cluster, client.insert(f"key-{i}".encode(), b"v0"))
        env = cluster.env
        outcomes = []

        def writer(i):
            yield env.timeout(i * 1.0)
            result = yield from client.update(f"key-{i % 20}".encode(),
                                              f"v-{i}".encode())
            outcomes.append(result)

        procs = [env.process(writer(i)) for i in range(30)]

        def crasher():
            yield env.timeout(10.0)
            cluster.crash_memory_node(1)

        env.process(crasher())
        env.run(until=env.all_of(procs))
        settle(cluster)
        assert all(result.ok for result in outcomes)
        reader = cluster.new_client()
        for i in range(20):
            assert run(cluster, reader.search(f"key-{i}".encode())).ok

    def test_index_replicas_consistent_after_failover(self, cluster):
        client = cluster.new_client()
        for i in range(40):
            run(cluster, client.insert(f"key-{i}".encode(), b"v"))
        cluster.crash_memory_node(1)
        settle(cluster)
        for i in range(40):
            run(cluster, client.update(f"key-{i}".encode(), b"w"))
        race = cluster.race
        for subtable in range(race.config.n_subtables):
            images = []
            for mn, base in race.placement(subtable):
                node = cluster.fabric.node(mn)
                assert not node.crashed
                images.append(bytes(
                    node.memory[base:base + race.config.subtable_bytes]))
            assert all(img == images[0] for img in images)


class TestReplicationFactorBound:
    def test_survives_r_minus_1_crashes(self):
        """r=3 tolerates 2 MN crashes (§5.1)."""
        cluster = FuseeCluster(small_config(n_memory_nodes=4,
                                            replication_factor=3))
        client = cluster.new_client()
        for i in range(30):
            run(cluster, client.insert(f"key-{i}".encode(),
                                       f"val-{i}".encode()))
        cluster.crash_memory_node(0)
        settle(cluster)
        cluster.crash_memory_node(1)
        settle(cluster)
        reader = cluster.new_client()
        for i in range(30):
            result = run(cluster, reader.search(f"key-{i}".encode()))
            assert result.ok and result.value == f"val-{i}".encode()
