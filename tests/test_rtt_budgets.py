"""RTT-budget regression suite (§4 of the paper).

FUSEE's core performance claim is a *round-trip budget* per operation:
a cached SEARCH completes in one READ RTT, each SNAPSHOT-replication
write phase is one doorbell batch (one RTT) regardless of the replica
count, and chain replication (FUSEE-CR) pays one extra RTT per extra
replica.  These tests pin those budgets with the tracer so an
accidentally serialised batch or an extra round trip fails loudly
instead of showing up as a quiet throughput regression.

Budgets asserted here (embedded op log, warm address cache unless noted):

=====================  ==========  =========================================
operation              RTTs        phases (signaled doorbell batches)
=====================  ==========  =========================================
SEARCH, cache hit      1           cached slot+KV read
SEARCH, no cache       2           bucket read, KV match read
UPDATE, r_idx = 1      2           locate (KV write batched in), primary CAS
UPDATE, r_idx >= 2     4           locate, backup CAS broadcast, log commit,
                                   primary CAS — flat in the replica count
UPDATE, separate log   +1          the log-entry write gets its own batch
FUSEE-CR, r_idx >= 2   2 + r_idx   backup CASes serialise: +1 RTT/replica
SWARM, r_idx = 1       2           locate, CAS broadcast (primary only)
SWARM, r_idx >= 2      3           locate, CAS broadcast to *all* replicas,
                                   log commit — flat in the replica count
INSERT                 UPDATE + 2  alloc batch precedes the KV write, and
                                   the winner re-reads its candidate
                                   buckets before returning (RACE's
                                   duplicate check: two same-key inserters
                                   can win different empty slots, so an
                                   empty-slot CAS win alone cannot rule
                                   out a duplicate)
=====================  ==========  =========================================
"""

from dataclasses import replace

import pytest

from repro import ClusterConfig, FuseeCluster, Tracer
from repro.core.addressing import RegionConfig
from repro.core.race import RaceConfig


def traced_cluster(n_memory_nodes=3, replication_factor=2,
                   index_replication=1, fabric_overrides=None,
                   cluster_overrides=None, **client_overrides):
    config = ClusterConfig(
        n_memory_nodes=n_memory_nodes,
        replication_factor=replication_factor,
        index_replication=index_replication,
        regions_per_mn=2,
        max_clients=32,
        region=RegionConfig(region_size=1 << 18, block_size=1 << 13,
                            min_object_size=64),
        race=RaceConfig(n_subtables=4, n_groups=16, slots_per_bucket=7))
    if cluster_overrides:
        config = replace(config, **cluster_overrides)
    if fabric_overrides:
        config = replace(config,
                         fabric=replace(config.fabric, **fabric_overrides))
    if client_overrides:
        config = replace(config,
                         client=replace(config.client, **client_overrides))
    tracer = Tracer()
    cluster = FuseeCluster(config, tracer=tracer)
    return cluster, cluster.new_client(), tracer


def warm_update_span(cluster, client, tracer):
    """Insert + two updates; the second update runs fully warm."""
    assert cluster.run_op(client.insert(b"key", b"val")).ok
    assert cluster.run_op(client.update(b"key", b"v2")).ok
    assert cluster.run_op(client.update(b"key", b"v3")).ok
    return tracer.last_span("update")


class TestSearchBudget:
    def test_cached_search_is_one_read_rtt(self):
        cluster, client, tracer = traced_cluster()
        cluster.run_op(client.insert(b"key", b"val"))
        cluster.run_op(client.search(b"key"))  # populates the cache
        result = cluster.run_op(client.search(b"key"))
        assert result.ok
        span = tracer.last_span("search")
        assert span.rtts == 1
        assert span.phases() == ["search.cached_read"]
        # ... and that one round trip is all READs (no atomics on the
        # search path).
        assert set(span.verb_counts()) == {"read"}

    def test_uncached_search_is_two_rtts(self):
        cluster, client, tracer = traced_cluster(cache_enabled=False)
        cluster.run_op(client.insert(b"key", b"val"))
        result = cluster.run_op(client.search(b"key"))
        assert result.ok
        span = tracer.last_span("search")
        assert span.rtts == 2
        assert span.phases() == ["search.bucket_read", "kv.match_read"]


class TestUpdateBudget:
    def test_unreplicated_update_is_two_rtts(self):
        cluster, client, tracer = traced_cluster(index_replication=1)
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == 2
        assert span.phases() == ["write.locate_cached", "repl.primary_cas"]

    def test_replicated_update_is_four_rtts(self):
        cluster, client, tracer = traced_cluster(index_replication=2)
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == 4
        assert span.phases() == ["write.locate_cached", "repl.backup_cas",
                                 "log.commit", "repl.primary_cas"]

    def test_snapshot_budget_is_flat_in_replica_count(self):
        """The backup CAS broadcast is one doorbell batch however many
        backups there are — the paper's argument for SNAPSHOT over CR."""
        cluster, client, tracer = traced_cluster(replication_factor=3,
                                                 index_replication=3)
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == 4
        # the broadcast batch carries one CAS per backup replica
        broadcast = next(b for b in span.batches
                         if b["phase"] == "repl.backup_cas")
        assert len(broadcast["verbs"]) == 2
        assert all(v["kind"] == "cas" for v in broadcast["verbs"])

    def test_separate_log_write_costs_one_extra_rtt(self):
        cluster, client, tracer = traced_cluster(index_replication=1,
                                                 embedded_log=False)
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == 3
        assert span.phases() == ["write.locate_cached", "log.separate_write",
                                 "repl.primary_cas"]


class TestChainReplicationBudget:
    """FUSEE-CR serialises the per-replica CASes (Fig. 19's latency gap)."""

    @pytest.mark.parametrize("replicas,expected_rtts", [
        (1, 2),   # locate + primary CAS
        (2, 4),   # locate + backup CAS + log commit + primary CAS
        (3, 5),   # ... + one more RTT for the extra backup
    ])
    def test_sequential_update_pays_per_replica(self, replicas,
                                                expected_rtts):
        cluster, client, tracer = traced_cluster(
            replication_factor=max(replicas, 1),
            index_replication=replicas,
            replication_mode="sequential")
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == expected_rtts
        assert span.phases().count("repl.seq_backup_cas") == \
            max(0, replicas - 1)

    def test_snapshot_beats_chain_at_three_replicas(self):
        snap_cluster, snap_client, snap_tracer = traced_cluster(
            replication_factor=3, index_replication=3)
        seq_cluster, seq_client, seq_tracer = traced_cluster(
            replication_factor=3, index_replication=3,
            replication_mode="sequential")
        snap = warm_update_span(snap_cluster, snap_client, snap_tracer)
        seq = warm_update_span(seq_cluster, seq_client, seq_tracer)
        assert snap.rtts < seq.rtts


class TestSwarmBudget:
    """SWARM commits inside one CAS broadcast to all replicas: a warm
    replicated UPDATE is 3 RTTs (locate, broadcast, post-commit log
    write), one fewer than SNAPSHOT's 4, and flat in the replica count
    like SNAPSHOT."""

    def test_unreplicated_swarm_update_is_two_rtts(self):
        cluster, client, tracer = traced_cluster(index_replication=1,
                                                 replication_mode="swarm")
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == 2
        assert span.phases() == ["write.locate_cached",
                                 "repl.swarm_broadcast"]

    @pytest.mark.parametrize("replicas", [2, 3])
    def test_replicated_swarm_update_is_three_rtts(self, replicas):
        cluster, client, tracer = traced_cluster(
            replication_factor=replicas, index_replication=replicas,
            replication_mode="swarm")
        span = warm_update_span(cluster, client, tracer)
        assert span.rtts == 3  # flat in the replica count
        assert span.phases() == ["write.locate_cached",
                                 "repl.swarm_broadcast", "log.commit"]

    def test_broadcast_batch_covers_every_replica(self):
        """One doorbell batch carries a CAS per replica — primary
        included, unlike SNAPSHOT's backups-only broadcast."""
        cluster, client, tracer = traced_cluster(replication_factor=3,
                                                 index_replication=3,
                                                 replication_mode="swarm")
        span = warm_update_span(cluster, client, tracer)
        broadcast = next(b for b in span.batches
                         if b["phase"] == "repl.swarm_broadcast")
        assert len(broadcast["verbs"]) == 3
        assert all(v["kind"] == "cas" for v in broadcast["verbs"])

    def test_swarm_beats_snapshot_budget(self):
        swarm_cluster, swarm_client, swarm_tracer = traced_cluster(
            replication_factor=3, index_replication=3,
            replication_mode="swarm")
        snap_cluster, snap_client, snap_tracer = traced_cluster(
            replication_factor=3, index_replication=3)
        swarm = warm_update_span(swarm_cluster, swarm_client, swarm_tracer)
        snap = warm_update_span(snap_cluster, snap_client, snap_tracer)
        assert swarm.rtts == snap.rtts - 1

    def test_swarm_insert_delete_follow_update(self):
        cluster, client, tracer = traced_cluster(index_replication=2,
                                                 replication_mode="swarm")
        update = warm_update_span(cluster, client, tracer)
        insert = tracer.last_span("insert")
        assert insert.rtts == update.rtts + 2
        assert insert.phases()[0] == "alloc"
        assert "insert.dedup_check" in insert.phases()
        assert cluster.run_op(client.delete(b"key")).ok
        assert tracer.last_span("delete").rtts == update.rtts

    def test_swarm_cached_search_still_one_rtt(self):
        """The read path budget is unchanged: swarm validation rides the
        same single doorbell batch (backup word + primary word)."""
        cluster, client, tracer = traced_cluster(index_replication=2,
                                                 replication_mode="swarm")
        assert cluster.run_op(client.insert(b"key", b"val")).ok
        assert cluster.run_op(client.search(b"key")).ok
        assert cluster.run_op(client.search(b"key")).ok
        span = tracer.last_span("search")
        assert span.rtts == 1
        assert span.phases() == ["search.cached_read"]


class TestInsertDeleteBudget:
    def test_insert_is_update_plus_alloc_plus_dedup(self):
        """INSERT = UPDATE + the alloc batch + the post-install duplicate
        re-read (RACE's insert check — see the module docstring table)."""
        cluster, client, tracer = traced_cluster(index_replication=2)
        update = warm_update_span(cluster, client, tracer)
        insert = tracer.last_span("insert")
        assert insert.rtts == update.rtts + 2
        assert insert.phases()[0] == "alloc"
        assert insert.phases()[-1] == "insert.dedup_check"

    def test_clean_dedup_sweep_is_one_bucket_read(self):
        """The duplicate check on an uncontended insert is exactly one
        extra batch — no KV match reads (no foreign fingerprint hits) and
        no master arbitration."""
        cluster, client, tracer = traced_cluster(index_replication=2)
        assert cluster.run_op(client.insert(b"key", b"val")).ok
        phases = tracer.last_span("insert").phases()
        assert phases.count("insert.dedup_check") == 1
        assert "insert.dedup_match_read" not in phases
        assert "insert.dedup_clear" not in phases

    def test_delete_matches_update_budget(self):
        cluster, client, tracer = traced_cluster(index_replication=2)
        update = warm_update_span(cluster, client, tracer)
        assert cluster.run_op(client.delete(b"key")).ok
        delete = tracer.last_span("delete")
        assert delete.rtts == update.rtts

    def test_cleanup_batches_are_off_the_critical_path(self):
        """Old-object invalidation is fire-and-forget (§4.4): it must be
        recorded as unsignaled work, never as an operation RTT."""
        cluster, client, tracer = traced_cluster(index_replication=1)
        span = warm_update_span(cluster, client, tracer)
        assert span.unsignaled >= 1
        unsignaled = [b for b in span.batches if b.get("unsignaled")]
        assert all(b["phase"].startswith("cleanup.") for b in unsignaled)


class TestBudgetsUnderHotPathKnobs:
    """Read-spreading and doorbell coalescing reshape NIC serialisation
    waits only — the protocol's RTT-per-op budgets must be untouched at
    any knob setting (the tentpole's 'only waits moved' guarantee)."""

    KNOBS = [
        {"read_spread": "round_robin"},
        {"read_spread": "least_loaded"},
        {"fabric_overrides": {"max_coalesce_width": 8}},
        {"fabric_overrides": {"max_coalesce_width": 8,
                              "coalesce_adaptive": False}},
        {"read_spread": "least_loaded",
         "fabric_overrides": {"max_coalesce_width": 8,
                              "coalesce_adaptive": False}},
    ]

    @pytest.mark.parametrize("knobs", KNOBS)
    def test_search_budgets_unchanged(self, knobs):
        cluster, client, tracer = traced_cluster(**knobs)
        assert cluster.run_op(client.insert(b"key", b"val")).ok
        assert cluster.run_op(client.search(b"key")).ok
        assert cluster.run_op(client.search(b"key")).ok
        span = tracer.last_span("search")
        assert span.rtts == 1
        assert span.phases() == ["search.cached_read"]

    @pytest.mark.parametrize("knobs", KNOBS)
    def test_uncached_search_budget_unchanged(self, knobs):
        cluster, client, tracer = traced_cluster(cache_enabled=False,
                                                 **knobs)
        assert cluster.run_op(client.insert(b"key", b"val")).ok
        assert cluster.run_op(client.search(b"key")).ok
        span = tracer.last_span("search")
        assert span.rtts == 2
        assert span.phases() == ["search.bucket_read", "kv.match_read"]

    @pytest.mark.parametrize("knobs", KNOBS)
    def test_update_insert_delete_budgets_unchanged(self, knobs):
        cluster, client, tracer = traced_cluster(index_replication=2,
                                                 **knobs)
        update = warm_update_span(cluster, client, tracer)
        assert update.rtts == 4
        assert update.phases() == ["write.locate_cached",
                                   "repl.backup_cas", "log.commit",
                                   "repl.primary_cas"]
        insert = tracer.last_span("insert")
        assert insert.rtts == update.rtts + 2
        assert cluster.run_op(client.delete(b"key")).ok
        assert tracer.last_span("delete").rtts == update.rtts

    def test_spread_reads_still_one_rtt_each(self):
        """Reading a backup replica costs the same single READ RTT."""
        cluster, client, tracer = traced_cluster(read_spread="round_robin")
        assert cluster.run_op(client.insert(b"key", b"val")).ok
        for _ in range(4):  # rotation visits both replicas
            assert cluster.run_op(client.search(b"key")).ok
        searches = tracer.spans_of("search")[-3:]
        assert all(s.rtts == 1 for s in searches)
        assert len(cluster.fabric.stats.kv_replica_reads) == 2


class TestBudgetsUnderMultiQueue:
    """Multi-queue NICs and RPC sharding move *which* port a verb
    serialises on, never how many round trips an operation takes.  The
    budgets must be unchanged in count under every multi-queue knob and
    byte-identical to the seed model at ``nic_ports=1``."""

    MQ_KNOBS = [
        {"cluster_overrides": {"nic_ports": 2}},
        {"cluster_overrides": {"nic_ports": 4}},
        {"cluster_overrides": {"nic_ports": 4, "rpc_shards": 2}},
        {"cluster_overrides": {"nic_ports": 4},
         "fabric_overrides": {"port_affinity": "rss"}},
        {"cluster_overrides": {"nic_ports": 8, "rpc_shards": 4},
         "fabric_overrides": {"port_affinity": "rss",
                              "max_coalesce_width": 8}},
    ]

    @pytest.mark.parametrize("knobs", MQ_KNOBS)
    def test_search_budgets_unchanged(self, knobs):
        cluster, client, tracer = traced_cluster(**knobs)
        assert cluster.run_op(client.insert(b"key", b"val")).ok
        assert cluster.run_op(client.search(b"key")).ok
        assert cluster.run_op(client.search(b"key")).ok
        span = tracer.last_span("search")
        assert span.rtts == 1
        assert span.phases() == ["search.cached_read"]

    @pytest.mark.parametrize("knobs", MQ_KNOBS)
    def test_update_insert_delete_budgets_unchanged(self, knobs):
        cluster, client, tracer = traced_cluster(index_replication=2,
                                                 **knobs)
        update = warm_update_span(cluster, client, tracer)
        assert update.rtts == 4
        assert update.phases() == ["write.locate_cached",
                                   "repl.backup_cas", "log.commit",
                                   "repl.primary_cas"]
        insert = tracer.last_span("insert")
        assert insert.rtts == update.rtts + 2
        assert cluster.run_op(client.delete(b"key")).ok
        assert tracer.last_span("delete").rtts == update.rtts

    def test_single_port_trace_is_byte_identical(self):
        """``nic_ports=1`` (the default) is not just equivalent — the
        whole trace, timings included, matches the pre-multi-queue
        model byte for byte."""
        from repro.obs import jsonl_lines

        def run(overrides):
            cluster, client, tracer = traced_cluster(
                index_replication=2, cluster_overrides=overrides)
            warm_update_span(cluster, client, tracer)
            assert cluster.run_op(client.search(b"key")).ok
            assert cluster.run_op(client.delete(b"key")).ok
            return jsonl_lines(tracer)

        assert run(None) == run({"nic_ports": 1, "rpc_shards": 1})

    def test_multiqueue_timings_match_at_one_client(self):
        """A single unloaded client never queues, so even wall-clock
        timings are identical at any port count (only contention
        changes, and there is none)."""
        from repro.obs import jsonl_lines

        def run(overrides):
            cluster, client, tracer = traced_cluster(
                cluster_overrides=overrides)
            warm_update_span(cluster, client, tracer)
            assert cluster.run_op(client.search(b"key")).ok
            return jsonl_lines(tracer)

        assert run(None) == run({"nic_ports": 4, "rpc_shards": 2})


class TestBudgetsUnderLoad:
    def test_warm_ycsb_search_stays_within_budget(self):
        """No operation mix may push a cached search past 2 RTTs (1 for
        hits, 2 after an update invalidated the cached address)."""
        cluster, client, tracer = traced_cluster()
        keys = [f"k{i}".encode() for i in range(32)]
        for key in keys:
            assert cluster.run_op(client.insert(key, b"v")).ok
        for key in keys:
            assert cluster.run_op(client.search(key)).ok
        for key in keys:
            assert cluster.run_op(client.search(key)).ok
        searches = tracer.spans_of("search")[-32:]
        assert all(s.rtts == 1 for s in searches)
